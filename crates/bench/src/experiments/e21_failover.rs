//! E21 — control-plane failover cost: a 3-replica controller group
//! (single-decree consensus, DESIGN.md §12) loses its leader mid-way
//! through a key-range migration. Measured across a seed sweep: the
//! failover gap (leader crash to the successor's committed
//! `LeaderElected` decree), write availability through the outage, how
//! long the interrupted migration takes to converge under the new
//! leader — and the same crash against the classic singleton
//! controller, whose migration simply stalls until the controller node
//! itself recovers. The steady-state consensus message overhead is
//! reported from the no-crash runs.

use crate::scenarios::udp_write;
use crate::table::{ExperimentResult, Table};
use swishmem::prelude::*;
use swishmem::{
    ConfigEventKind, Deployment, NfApp, NfDecision, ReconfigEvent, RegisterSpec, SharedState,
    TriggerOp,
};
use swishmem_wire::NodeId as WireNodeId;

struct WriteNf;
impl NfApp for WriteNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.write(0, u32::from(pkt.flow.dst_port), u64::from(pkt.payload_len));
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

const KEYS: u32 = 48;
const RECOVER_AFTER: SimDuration = SimDuration::millis(25);

fn build(seed: u64, replicas: u8) -> Deployment {
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(seed)
        .ctrl_replicas(replicas)
        .register(RegisterSpec::partitioned(0, "p", KEYS))
        .build(|_| Box::new(WriteNf));
    dep.settle();
    dep
}

struct Outcome {
    injected: u64,
    completed: u64,
    failed: u64,
    /// Crash-to-successor-election gap (replicated crash runs only).
    failover_gap: Option<SimDuration>,
    /// Crash-to-migration-commit delay, when the migration committed.
    commit_delay: Option<SimDuration>,
    consensus_msgs: u64,
    leader_changes: u64,
    run_time: SimDuration,
}

/// One run: trigger a move of range `[0, 16)` to switch 1 at +8 ms,
/// offered write load for 30 ms, optional leader/controller crash at
/// `crash_at` (relative to t0) with recovery `RECOVER_AFTER` later.
fn run_once(seed: u64, replicas: u8, crash_at: Option<SimDuration>) -> Outcome {
    let mut dep = build(seed, replicas);
    let t0 = dep.now();
    let target = dep.switch_ids()[1];
    dep.schedule_trigger(t0 + SimDuration::millis(8), TriggerOp::Move, 0, 0, target);

    let mut injected = 0u64;
    let mut t = SimDuration::micros(0);
    while t < SimDuration::millis(30) {
        let key = (injected % u64::from(KEYS)) as u16;
        dep.inject(
            t0 + t,
            (injected % 3) as usize,
            0,
            udp_write(key, 100 + (injected % 400) as u16),
        );
        injected += 1;
        t = t + SimDuration::micros(100);
    }

    let t_crash = crash_at.map(|d| t0 + d);
    if let Some(tc) = t_crash {
        dep.schedule_ctrl_fail(tc, 0);
        dep.schedule_ctrl_recover(tc + RECOVER_AFTER, 0);
    }

    let horizon = SimDuration::millis(80);
    dep.run_for(horizon);

    let failover_gap = t_crash.and_then(|tc| {
        dep.controller()
            .elections()
            .iter()
            .find(|e| e.time >= tc && !matches!(e.kind, ConfigEventKind::LeaderElected(n) if n == WireNodeId::CONTROLLER))
            .map(|e| e.time.since(tc))
    });
    let reference = t_crash.unwrap_or(t0 + SimDuration::millis(8));
    let commit_delay = dep
        .reconfig_events()
        .iter()
        .find(|e| {
            e.time > reference
                && matches!(&e.event,
                    ReconfigEvent::Commit { start: 0, owners, .. } if owners.contains(&target))
        })
        .map(|e| e.time.since(reference));
    let m = dep.controller().consensus_metrics();
    Outcome {
        injected,
        completed: dep.sum_metric(|x| x.cp.jobs_completed),
        failed: dep.sum_metric(|x| x.cp.jobs_failed + x.cp.jobs_shed),
        failover_gap,
        commit_delay,
        consensus_msgs: m.msgs_sent,
        leader_changes: m.leader_changes,
        run_time: horizon,
    }
}

/// Begin/Done times of the migration in an undisturbed replicated run,
/// used to place the crash mid-transfer (everything before the crash
/// replays the probe bit-for-bit).
fn probe_marks(seed: u64) -> Option<(SimDuration, SimDuration)> {
    let mut dep = build(seed, 3);
    let t0 = dep.now();
    let target = dep.switch_ids()[1];
    dep.schedule_trigger(t0 + SimDuration::millis(8), TriggerOp::Move, 0, 0, target);
    dep.run_for(SimDuration::millis(50));
    let log = dep.reconfig_events();
    let begin = log
        .iter()
        .find(|e| matches!(e.event, ReconfigEvent::Begin { start: 0, .. }))?;
    let done = log
        .iter()
        .find(|e| matches!(e.event, ReconfigEvent::Done { start: 0, .. }))?;
    Some((begin.time.since(t0), done.time.since(t0)))
}

fn ms(d: SimDuration) -> f64 {
    d.as_nanos() as f64 / 1e6
}

/// Run E21.
pub fn run(quick: bool) -> ExperimentResult {
    let seeds: Vec<u64> = if quick {
        (501..505).collect()
    } else {
        (501..513).collect()
    };

    let mut gaps: Vec<f64> = Vec::new();
    let mut rep_commit: Vec<f64> = Vec::new();
    let mut single_commit: Vec<f64> = Vec::new();
    let mut rep_total = (0u64, 0u64, 0u64); // injected, completed, failed
    let mut single_total = (0u64, 0u64, 0u64);
    let mut steady_msgs = 0u64;
    let mut steady_time = SimDuration::ZERO;
    let mut leader_changes = 0u64;
    let mut rep_converged = 0usize;
    let mut single_converged = 0usize;

    for &seed in &seeds {
        let Some((t_begin, t_done)) = probe_marks(seed) else {
            continue;
        };
        let mid = SimDuration::nanos((t_begin.as_nanos() + t_done.as_nanos()) / 2);

        // Steady state (no crash): consensus overhead of the group.
        let steady = run_once(seed, 3, None);
        steady_msgs += steady.consensus_msgs;
        steady_time = steady_time + steady.run_time;

        // Replicated group, leader dies mid-transfer.
        let rep = run_once(seed, 3, Some(mid));
        if let Some(g) = rep.failover_gap {
            gaps.push(ms(g));
        }
        if let Some(c) = rep.commit_delay {
            rep_commit.push(ms(c));
            rep_converged += 1;
        }
        rep_total.0 += rep.injected;
        rep_total.1 += rep.completed;
        rep_total.2 += rep.failed;
        leader_changes += rep.leader_changes;

        // Singleton controller, same crash point: no failover exists,
        // the migration waits out the controller's downtime.
        let single = run_once(seed, 1, Some(mid));
        if let Some(c) = single.commit_delay {
            single_commit.push(ms(c));
            single_converged += 1;
        }
        single_total.0 += single.injected;
        single_total.1 += single.completed;
        single_total.2 += single.failed;
    }

    let stats = |xs: &[f64]| -> (f64, f64, f64) {
        if xs.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(0.0f64, f64::max);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        (min, mean, max)
    };
    let (gmin, gmean, gmax) = stats(&gaps);
    let (_, rc_mean, rc_max) = stats(&rep_commit);
    let (_, sc_mean, sc_max) = stats(&single_commit);

    let mut gap_table = Table::new(
        "Leader failover, crash mid-migration (3 replicas, majority quorum)",
        &["metric", "min", "mean", "max"],
    );
    gap_table.row(vec![
        "failover gap (crash -> committed LeaderElected), ms".into(),
        format!("{gmin:.1}"),
        format!("{gmean:.1}"),
        format!("{gmax:.1}"),
    ]);
    gap_table.row(vec![
        "migration commit after crash, ms".into(),
        "-".into(),
        format!("{rc_mean:.1}"),
        format!("{rc_max:.1}"),
    ]);
    gap_table.row(vec![
        "singleton: migration commit after crash, ms".into(),
        "-".into(),
        format!("{sc_mean:.1}"),
        format!("{sc_max:.1}"),
    ]);

    let mut avail = Table::new(
        "Write availability through the controller outage",
        &["deployment", "injected", "completed", "failed/shed"],
    );
    avail.row(vec![
        "3 replicas, leader crash".into(),
        rep_total.0.to_string(),
        rep_total.1.to_string(),
        rep_total.2.to_string(),
    ]);
    avail.row(vec![
        "singleton, controller crash".into(),
        single_total.0.to_string(),
        single_total.1.to_string(),
        single_total.2.to_string(),
    ]);

    let msgs_per_ms = if steady_time.as_nanos() > 0 {
        steady_msgs as f64 * 1e6 / steady_time.as_nanos() as f64
    } else {
        0.0
    };
    let mut overhead = Table::new("Consensus overhead (no-crash runs)", &["metric", "value"]);
    overhead.row(vec![
        "consensus messages / ms (group total)".into(),
        format!("{msgs_per_ms:.2}"),
    ]);
    overhead.row(vec![
        "committed leader changes across crash runs".into(),
        leader_changes.to_string(),
    ]);

    let findings = vec![
        format!(
            "leader failover completed in {gmean:.1} ms mean ({gmax:.1} ms worst) across \
             {} seeds with the crash landing mid-transfer; the interrupted migration \
             committed {rc_mean:.1} ms after the crash in {rep_converged}/{} runs",
            seeds.len(),
            seeds.len(),
        ),
        format!(
            "write availability held: {}/{} foreground writes completed with the leader \
             down ({} failed/shed) — the data plane never depends on a live controller",
            rep_total.1, rep_total.0, rep_total.2,
        ),
        format!(
            "the singleton baseline has no failover: its migration resumed only after the \
             controller itself recovered ({sc_mean:.1} ms mean commit delay vs {rc_mean:.1} ms \
             replicated, converging in {single_converged}/{} runs), while the replica group \
             paid a steady-state overhead of {msgs_per_ms:.2} consensus messages/ms",
            seeds.len(),
        ),
    ];
    ExperimentResult {
        id: "E21".into(),
        title: "Replicated control plane: leader failover cost".into(),
        paper_anchor: "§6.3 (fault tolerance; no single point of failure)".into(),
        expectation: "bounded failover gap, zero write unavailability, migration converges \
                      under the successor"
            .into(),
        tables: vec![gap_table, avail, overhead],
        findings,
    }
}

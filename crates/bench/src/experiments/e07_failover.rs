//! E7 — §6.3 failover: when an SRO chain switch fails, "writes cannot be
//! processed" until the controller regains connectivity by
//! reconfiguration; EWO "is inherently robust to switch and link
//! failures ... no explicit failover protocol is needed".
//!
//! SRO: a steady write stream crosses a tail failure; the write-block
//! window is the largest gap between consecutive completed-write releases
//! around the failure, swept over the failure-detection timeout.
//! EWO: the same failure under a counter workload; we verify no counted
//! increment from surviving switches is lost and the counter keeps
//! serving.

use crate::scenarios::{count_pkt, probe_deployment, udp_write, CounterNf};
use crate::table::{ns, ExperimentResult, Table};
use swishmem::prelude::*;
use swishmem::{ConfigEventKind, RegisterSpec, SwishConfig};
use swishmem_wire::PacketBody;

fn sro_block_window(failure_timeout: SimDuration, quick: bool) -> (u64, u64) {
    let mut cfg = SwishConfig::default();
    cfg.failure_timeout = failure_timeout;
    cfg.heartbeat_interval = SimDuration::nanos(failure_timeout.as_nanos() / 3);
    let mut dep = probe_deployment(3, RegisterSpec::sro(0, "t", 4096), cfg);
    dep.settle();
    let dur = SimDuration::millis(if quick { 60 } else { 150 });
    let gap = SimDuration::micros(100); // 10k writes/s
    let t0 = dep.now();
    let t_fail = t0 + SimDuration::millis(20);
    dep.schedule_fail(t_fail, 2); // kill the tail
    let n = dur.as_nanos() / gap.as_nanos();
    for i in 0..n {
        dep.inject(
            t0 + SimDuration::nanos(i * gap.as_nanos()),
            0,
            0,
            udp_write((i % 4000) as u16, 100),
        );
    }
    dep.run_for(dur + SimDuration::millis(100));
    // Completed writes release P' to host 0: find the largest release gap
    // in a window around the failure.
    let log = dep.recording(0).borrow();
    let mut releases: Vec<u64> = log
        .iter()
        .filter(|(_, p)| matches!(p.body, PacketBody::Data(_)))
        .map(|(t, _)| t.nanos())
        .filter(|&t| {
            t > t_fail.nanos().saturating_sub(5_000_000) && t < t_fail.nanos() + 100_000_000
        })
        .collect();
    releases.sort_unstable();
    let mut max_gap = 0u64;
    for w in releases.windows(2) {
        max_gap = max_gap.max(w[1] - w[0]);
    }
    // Controller reaction time from its own log.
    let events = dep.controller_events();
    let detect = events
        .iter()
        .find(|e| matches!(e.kind, ConfigEventKind::Failed(_)))
        .map(|e| e.time.nanos().saturating_sub(t_fail.nanos()))
        .unwrap_or(0);
    (max_gap, detect)
}

fn ewo_failover(quick: bool) -> (u64, u64, u64) {
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .register(RegisterSpec::ewo_counter(0, "cnt", 16))
        .build(|_| Box::new(CounterNf));
    dep.settle();
    let dur = SimDuration::millis(if quick { 40 } else { 100 });
    let gap = SimDuration::micros(20);
    let t0 = dep.now();
    let t_fail = t0 + SimDuration::millis(10);
    dep.schedule_fail(t_fail, 2);
    let n = dur.as_nanos() / gap.as_nanos();
    let mut survivors_sent = 0u64;
    for i in 0..n {
        let t = t0 + SimDuration::nanos(i * gap.as_nanos());
        let sw = (i % 3) as usize;
        // After the failure instant, route the failed switch's share to a
        // survivor (ECMP re-hash, §3.2).
        let sw = if sw == 2 && t >= t_fail { 0 } else { sw };
        if sw != 2 || t < t_fail {
            dep.inject(t, sw, 0, count_pkt(1, i as u32));
            if sw != 2 {
                survivors_sent += 1;
            }
        }
    }
    dep.run_for(dur + SimDuration::millis(100));
    let final0 = dep.peek(0, 0, 1);
    let final1 = dep.peek(1, 0, 1);
    (survivors_sent, final0, final1)
}

/// Run E7.
pub fn run(quick: bool) -> ExperimentResult {
    let timeouts = if quick {
        vec![SimDuration::millis(10), SimDuration::millis(30)]
    } else {
        vec![
            SimDuration::millis(5),
            SimDuration::millis(10),
            SimDuration::millis(20),
            SimDuration::millis(40),
        ]
    };
    let mut t = Table::new(
        "SRO write-block window after tail failure vs detection timeout",
        &[
            "failure timeout",
            "detection delay",
            "max write-release gap (block window)",
        ],
    );
    let mut windows = Vec::new();
    for &to in &timeouts {
        let (gap, detect) = sro_block_window(to, quick);
        t.row(vec![to.to_string(), ns(detect), ns(gap)]);
        windows.push((to, gap));
    }

    let (survivor_incr, f0, f1) = ewo_failover(quick);
    let mut t2 = Table::new(
        "EWO under the same failure (counter increments from survivors)",
        &[
            "survivor increments",
            "final value @sw0",
            "final value @sw1",
            "lost survivor updates",
        ],
    );
    let lost = survivor_incr.saturating_sub(f0.min(f1));
    t2.row(vec![
        survivor_incr.to_string(),
        f0.to_string(),
        f1.to_string(),
        lost.to_string(),
    ]);

    let tracks = windows.iter().all(|(to, gap)| *gap >= to.as_nanos() / 2);
    let findings = vec![
        format!(
            "the SRO block window tracks the failure-detection timeout (writes resume right after reconfiguration): {}",
            if tracks { "confirmed" } else { "NOT confirmed" }
        ),
        format!(
            "EWO needed no failover protocol: survivors lost {} of {} increments (final counts may exceed survivor-only increments because the failed switch's pre-failure updates were already replicated)",
            lost, survivor_incr
        ),
    ];
    ExperimentResult {
        id: "E7".into(),
        title: "Failover: SRO write-block window vs EWO's protocol-free failover".into(),
        paper_anchor: "§6.3 (handling failures)".into(),
        expectation: "SRO blocks for ~detection+reconfig; EWO loses nothing and never blocks"
            .into(),
        tables: vec![t, t2],
        findings,
    }
}

//! E9 — §4.2 DDoS detection on EWO state: an attack whose traffic is
//! spread across many ingress switches is invisible to per-switch
//! sketches but detected by the EWO-replicated sketch almost as fast as
//! by a single switch seeing all traffic.
//!
//! Three configurations over the same attack mix:
//! (a) single switch, all traffic (the prior-work baseline, §3.2);
//! (b) 4 switches, unshared local sketches (`LocalDdos`);
//! (c) 4 switches, EWO-replicated sketch (`DdosDetector`).

use crate::table::{f, ns, ExperimentResult, Table};
use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::RegisterSpec;
use swishmem_nf::workload::{
    generate_attack, AttackConfig, EcmpRouter, FlowGen, FlowGenConfig, RoutingMode,
};
use swishmem_nf::{DdosConfig, DdosDetector, DdosStatsHandle, LocalDdos};

const DEPTH: u16 = 3;
const WIDTH: u32 = 2048;

fn ddos_cfg() -> DdosConfig {
    DdosConfig {
        row_regs: (0..DEPTH).collect(),
        width: WIDTH,
        total_reg: DEPTH,
        share_millis: 250, // alarm at 25% share
        min_total: 200,
        min_est: 300, // volumetric floor: a 4-way slice stays below it
        egress_host: NodeId(HOST_BASE),
    }
}

struct Out {
    attack_pkts: u64,
    mitigated: u64,
    detect_delay_ns: Option<u64>,
}

fn measure(n: usize, shared: bool, quick: bool) -> Out {
    let stats: Vec<DdosStatsHandle> = (0..n).map(|_| DdosStatsHandle::default()).collect();
    let s2 = stats.clone();
    let mut b = DeploymentBuilder::new(n).hosts(1).seed(31);
    for r in 0..DEPTH {
        b = b.register(RegisterSpec::ewo_counter(r, &format!("cm{r}"), WIDTH));
    }
    b = b.register(RegisterSpec::ewo_counter(DEPTH, "total", 4));
    let mut dep = b.build(move |id| -> Box<dyn swishmem::NfApp> {
        if shared {
            Box::new(DdosDetector::new(ddos_cfg(), s2[id.index()].clone()))
        } else {
            Box::new(LocalDdos::new(ddos_cfg(), s2[id.index()].clone()))
        }
    });
    dep.settle();
    let router = EcmpRouter::new(n, RoutingMode::EcmpStable);
    let horizon = SimDuration::millis(if quick { 30 } else { 80 });
    // Background: benign flows at ~40k pps.
    let bg = FlowGen::new(
        FlowGenConfig {
            flow_rate: 40_000.0,
            mean_packets: 1.0,
            duration: horizon,
            tcp: false,
            servers: 500,
            server_alpha: 0.3,
            ..FlowGenConfig::default()
        },
        32,
    )
    .generate(&router);
    // Attack: starts 1/4 into the run, ~30k pps to one victim.
    let attack_start = SimTime(horizon.as_nanos() / 4);
    let atk = generate_attack(
        &AttackConfig {
            victim: Ipv4Addr::new(20, 0, 0, 77),
            attackers: 512,
            rate_pps: 30_000.0,
            start: attack_start,
            duration: SimDuration::nanos(horizon.as_nanos() * 3 / 4),
            payload: 64,
        },
        &router,
        33,
    );
    let t0 = dep.now();
    let mut attack_pkts = 0u64;
    for p in bg.iter().chain(atk.iter()) {
        dep.inject(t0 + SimDuration::nanos(p.time.nanos()), p.ingress, 0, p.pkt);
        if p.pkt.flow.dst == Ipv4Addr::new(20, 0, 0, 77) {
            attack_pkts += 1;
        }
    }
    dep.run_for(horizon + SimDuration::millis(50));
    let mitigated: u64 = stats.iter().map(|s| s.borrow().mitigated).sum();
    let detect = stats
        .iter()
        .filter_map(|s| s.borrow().first_alarm_ns)
        .min()
        .map(|ns| ns.saturating_sub(t0.nanos() + attack_start.nanos()));
    Out {
        attack_pkts,
        mitigated,
        detect_delay_ns: detect,
    }
}

/// Run E9.
pub fn run(quick: bool) -> ExperimentResult {
    let single = measure(1, true, quick);
    let local4 = measure(4, false, quick);
    let shared4 = measure(4, true, quick);

    let mut t = Table::new(
        "DDoS detection under a 4-way-spread attack (25% share threshold)",
        &[
            "configuration",
            "attack pkts",
            "mitigated",
            "mitigated %",
            "detection delay",
        ],
    );
    for (name, o) in [
        ("1 switch, all traffic (oracle)", &single),
        ("4 switches, unshared sketches", &local4),
        ("4 switches, EWO-shared sketch", &shared4),
    ] {
        t.row(vec![
            name.into(),
            o.attack_pkts.to_string(),
            o.mitigated.to_string(),
            f(100.0 * o.mitigated as f64 / o.attack_pkts.max(1) as f64),
            o.detect_delay_ns.map(ns).unwrap_or_else(|| "never".into()),
        ]);
    }
    let shared_ok = shared4.mitigated * 2 > single.mitigated;
    let local_worse = local4.mitigated * 2 < shared4.mitigated.max(1);
    let findings = vec![
        format!(
            "EWO-shared detection mitigates {:.0}% vs single-switch oracle {:.0}% — within the same regime: {}",
            100.0 * shared4.mitigated as f64 / shared4.attack_pkts.max(1) as f64,
            100.0 * single.mitigated as f64 / single.attack_pkts.max(1) as f64,
            if shared_ok { "confirmed" } else { "NOT confirmed" }
        ),
        format!(
            "unshared per-switch sketches mitigate only {} packets (each switch sees 25% of the attack): {}",
            local4.mitigated,
            if local_worse { "miss the attack as predicted" } else { "unexpectedly effective" }
        ),
    ];
    ExperimentResult {
        id: "E9".into(),
        title: "Distributed DDoS detection on EWO sketches".into(),
        paper_anchor: "§4.2 (DDoS detection), §3.2 (traffic across multiple paths)".into(),
        expectation: "shared ≈ single-switch oracle; unshared misses the spread attack".into(),
        tables: vec![t],
        findings,
    }
}

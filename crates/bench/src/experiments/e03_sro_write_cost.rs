//! E3 — §6.1: "[SRO's] write throughput is limited by the need to send
//! packets through the control plane."
//!
//! Sweeps chain length and offered write rate; reports write latency
//! (mean/p99) and completed-write throughput. The control-plane service
//! rate (1 / 10 µs = 100k items/s by default) is the predicted ceiling,
//! independent of chain length; latency grows with chain length (one hop
//! per link plus the CP punt at the writer).

use crate::scenarios::{probe_deployment, udp_write};
use crate::table::{f, ns, ExperimentResult, Table};
use swishmem::prelude::*;
use swishmem::{RegisterSpec, SwishConfig};

struct Point {
    chain: usize,
    offered_kps: f64,
    completed_kps: f64,
    mean_ns: u64,
    p99_ns: u64,
}

fn measure(chain: usize, offered_per_sec: f64, quick: bool) -> Point {
    let mut dep = probe_deployment(
        chain,
        RegisterSpec::sro(0, "t", 16384),
        SwishConfig::default(),
    );
    dep.settle();
    let dur = SimDuration::millis(if quick { 20 } else { 50 });
    let gap_ns = (1e9 / offered_per_sec) as u64;
    let t0 = dep.now();
    let n_writes = dur.as_nanos() / gap_ns.max(1);
    for i in 0..n_writes {
        // Distinct keys so per-key sequencing never serializes them, and
        // writes always enter at switch 0 (the head's CP is the writer).
        let key = (i % 16000) as u16;
        dep.inject(
            t0 + SimDuration::nanos(i * gap_ns),
            0,
            0,
            udp_write(key, 100),
        );
    }
    dep.run_for(dur + SimDuration::millis(100));
    let m = dep.metrics(0);
    let completed = m.cp.jobs_completed;
    let span = dur.as_secs_f64();
    Point {
        chain,
        offered_kps: offered_per_sec / 1e3,
        completed_kps: completed as f64 / span / 1e3,
        mean_ns: m.cp.write_latency.mean_ns() as u64,
        p99_ns: m.cp.write_latency.percentile_ns(0.99),
    }
}

/// Run E3.
pub fn run(quick: bool) -> ExperimentResult {
    let chains: Vec<usize> = if quick {
        vec![2, 4]
    } else {
        vec![1, 2, 3, 5, 8]
    };
    let light_rate = 5_000.0;

    let mut lat = Table::new(
        "SRO write latency vs chain length (light load, 5k writes/s)",
        &["chain length", "mean latency", "p99 latency"],
    );
    let mut lat_points = Vec::new();
    for &c in &chains {
        let p = measure(c, light_rate, quick);
        lat.row(vec![c.to_string(), ns(p.mean_ns), ns(p.p99_ns)]);
        lat_points.push(p);
    }

    let rates: Vec<f64> = if quick {
        vec![20_000.0, 120_000.0]
    } else {
        vec![20_000.0, 60_000.0, 120_000.0, 200_000.0]
    };
    let mut thr = Table::new(
        "SRO write throughput vs offered rate (chain of 3)",
        &[
            "offered kwrites/s",
            "completed kwrites/s",
            "mean latency",
            "p99 latency",
        ],
    );
    let mut ceiling = 0.0f64;
    for &r in &rates {
        let p = measure(3, r, quick);
        thr.row(vec![
            f(p.offered_kps),
            f(p.completed_kps),
            ns(p.mean_ns),
            ns(p.p99_ns),
        ]);
        ceiling = ceiling.max(p.completed_kps);
    }

    let grow = lat_points.len() >= 2
        && lat_points.last().unwrap().mean_ns > lat_points.first().unwrap().mean_ns;
    let findings = vec![
        format!(
            "write latency grows with chain length ({} at len {} → {} at len {}): {}",
            ns(lat_points.first().unwrap().mean_ns),
            lat_points.first().unwrap().chain,
            ns(lat_points.last().unwrap().mean_ns),
            lat_points.last().unwrap().chain,
            if grow { "confirmed" } else { "NOT confirmed" }
        ),
        format!(
            "completed-write ceiling ≈ {:.0}k/s, set by the writer's control-plane service rate (100k items/s default), orders of magnitude below data-plane packet rates — the paper's core SRO limitation",
            ceiling
        ),
    ];
    ExperimentResult {
        id: "E3".into(),
        title: "SRO write cost: latency vs chain length, CP-bounded throughput".into(),
        paper_anchor: "§6.1 (write throughput limited by the control plane)".into(),
        expectation: "latency linear in chain length; throughput capped by CP service rate".into(),
        tables: vec![lat, thr],
        findings,
    }
}

//! E14 — §3.3, the case for data-plane replication: "replication
//! protocols that run in the control plane cannot operate at this rate,
//! so a control-plane solution would cause significant gaps between
//! replicas."
//!
//! The same write-per-packet counter workload runs twice:
//! * **data-plane replication** — the normal EWO path (eager mirror from
//!   the pipeline);
//! * **control-plane replication** — every update crosses the switch CPU
//!   (modeled by routing the write through an SRO register, whose
//!   replication is CP-mediated by design).
//!
//! The replica gap is the backlog of updates not yet visible at a peer,
//! sampled during the run. As the offered rate passes the CP's service
//! ceiling (~100k items/s), the CP path's gap diverges while the
//! data-plane path stays flat.

use crate::scenarios::{count_pkt, CounterNf};
use crate::table::{f, ExperimentResult, Table};
use swishmem::prelude::*;
use swishmem::{NfApp, NfDecision, RegisterSpec, SharedState, SwishConfig};

/// Counter NF over an SRO register: every packet performs `add` on a
/// chain-replicated register, forcing the write through the control
/// plane — the control-plane replication baseline.
struct CpCounterNf;
impl NfApp for CpCounterNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.add(0, u32::from(pkt.flow.dst_port), 1);
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

struct Out {
    mean_gap_updates: f64,
    max_gap_updates: f64,
    completed_frac: f64,
}

fn measure(data_plane: bool, rate: f64, quick: bool) -> Out {
    let spec = if data_plane {
        RegisterSpec::ewo_counter(0, "cnt", 64)
    } else {
        RegisterSpec::sro(0, "cnt", 64)
    };
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(61)
        .swish_config(SwishConfig::default())
        .register(spec)
        .build(move |_| -> Box<dyn NfApp> {
            if data_plane {
                Box::new(CounterNf)
            } else {
                Box::new(CpCounterNf)
            }
        });
    dep.settle();
    let dur = SimDuration::millis(if quick { 25 } else { 60 });
    let gap_ns = (1e9 / rate) as u64;
    let t0 = dep.now();
    let n = dur.as_nanos() / gap_ns;
    let mut gaps = Vec::new();
    let mut injected = 0u64;
    let mut next_sample = SimDuration::millis(4);
    for i in 0..n {
        // Rotate keys so per-key chain sequencing isn't the bottleneck.
        dep.inject(
            t0 + SimDuration::nanos(i * gap_ns),
            0,
            0,
            count_pkt((i % 64) as u16, i as u32),
        );
        injected += 1;
        if SimDuration::nanos(i * gap_ns) >= next_sample {
            dep.run_until(t0 + SimDuration::nanos(i * gap_ns));
            let remote: u64 = (0..64).map(|k| dep.peek(2, 0, k)).sum();
            gaps.push(injected.saturating_sub(remote) as f64);
            next_sample = next_sample + SimDuration::millis(2);
        }
    }
    dep.run_for(SimDuration::millis(30));
    let remote_final: u64 = (0..64).map(|k| dep.peek(2, 0, k)).sum();
    Out {
        mean_gap_updates: crate::scenarios::mean(&gaps),
        max_gap_updates: gaps.iter().cloned().fold(0.0, f64::max),
        completed_frac: remote_final as f64 / injected.max(1) as f64,
    }
}

/// Run E14.
pub fn run(quick: bool) -> ExperimentResult {
    let rates: Vec<f64> = if quick {
        vec![50_000.0, 400_000.0]
    } else {
        vec![20_000.0, 50_000.0, 150_000.0, 400_000.0]
    };
    let mut t = Table::new(
        "Replica gap at a peer switch (updates not yet visible), write-per-packet workload",
        &[
            "offered kupd/s",
            "path",
            "mean gap",
            "max gap",
            "replicated by end (%)",
        ],
    );
    let mut dp_max = 0.0f64;
    let mut cp_max = 0.0f64;
    for &r in &rates {
        let d = measure(true, r, quick);
        t.row(vec![
            f(r / 1e3),
            "data plane (EWO)".into(),
            f(d.mean_gap_updates),
            f(d.max_gap_updates),
            f(100.0 * d.completed_frac),
        ]);
        dp_max = dp_max.max(d.mean_gap_updates);
        let c = measure(false, r, quick);
        t.row(vec![
            f(r / 1e3),
            "control plane (chain)".into(),
            f(c.mean_gap_updates),
            f(c.max_gap_updates),
            f(100.0 * c.completed_frac),
        ]);
        cp_max = cp_max.max(c.mean_gap_updates);
    }
    let findings = vec![
        format!(
            "above the CP service ceiling the control-plane path's replica gap grows unboundedly (mean up to {:.0} updates) while the data-plane path stays at {:.0} — {}× apart; §3.3's 'significant gaps between replicas' reproduced",
            cp_max,
            dp_max,
            (cp_max / dp_max.max(1.0)) as u64
        ),
        "the data-plane path replicates ~100% of updates at every offered rate".into(),
    ];
    ExperimentResult {
        id: "E14".into(),
        title: "Data-plane vs control-plane replication under per-packet writes".into(),
        paper_anchor: "§3.3 (the case for data-plane replication)".into(),
        expectation: "CP path diverges past ~100k upd/s; data-plane path flat".into(),
        tables: vec![t],
        findings,
    }
}

//! E1 — regenerate **Table 1**: NFs classified by their access pattern to
//! shared data and their consistency requirements.
//!
//! Each of the six NFs runs on a representative synthetic workload; we
//! measure shared-register reads and writes per data packet and classify
//! write frequency as "new connection" (writes ≈ flows) or "every packet"
//! (writes ≈ packets). The consistency column is the class the NF
//! declares (its correctness under that class is validated by E4–E9).

use crate::table::{f, ExperimentResult, Table};
use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::RegisterSpec;
use swishmem_nf::workload::{EcmpRouter, FlowGen, FlowGenConfig, RoutingMode};
use swishmem_nf::*;

struct NfRun {
    app: &'static str,
    state: &'static str,
    packets: u64,
    flows: u64,
    reads: u64,
    writes: u64,
    consistency: &'static str,
}

fn classify_writes(r: &NfRun) -> String {
    let per_pkt = r.writes as f64 / r.packets.max(1) as f64;
    if per_pkt > 0.5 {
        "Every packet".to_string()
    } else if r.flows > 0 && (r.writes as f64 / r.flows as f64) > 0.5 {
        "New connection".to_string()
    } else {
        "Low".to_string()
    }
}

fn classify_reads(r: &NfRun) -> String {
    if r.reads as f64 / r.packets.max(1) as f64 > 0.5 {
        "Every packet".to_string()
    } else {
        "Every window".to_string()
    }
}

fn workload(
    n_switches: usize,
    quick: bool,
    tcp: bool,
    seed: u64,
) -> Vec<workload::ScheduledPacket> {
    let router = EcmpRouter::new(n_switches, RoutingMode::EcmpStable);
    // TCP workloads drive the SRO-backed NFs, whose writes cross the
    // control plane: keep the *connection* rate under the CP service
    // ceiling (Table 1 describes the NFs' access patterns at sustainable
    // rates, not in congestive collapse — E3 covers that regime). EWO
    // NFs (UDP workloads) have no such ceiling.
    let cfg = FlowGenConfig {
        flow_rate: if tcp { 6_000.0 } else { 30_000.0 },
        mean_packets: 10.0,
        packet_gap: SimDuration::micros(200),
        duration: SimDuration::millis(if quick { 20 } else { 60 }),
        tcp,
        start: SimTime::ZERO,
        ..FlowGenConfig::default()
    };
    FlowGen::new(cfg, seed).generate(&router)
}

fn drive(dep: &mut Deployment, sched: &[workload::ScheduledPacket]) -> u64 {
    dep.settle();
    let base = dep.now();
    for p in sched {
        dep.inject(
            base + SimDuration::nanos(p.time.nanos()),
            p.ingress,
            0,
            p.pkt,
        );
    }
    dep.run_for(SimDuration::millis(100));
    sched.len() as u64
}

fn count_flows(sched: &[workload::ScheduledPacket]) -> u64 {
    let mut flows = std::collections::HashSet::new();
    for p in sched {
        flows.insert(p.pkt.flow);
    }
    flows.len() as u64
}

fn sums(dep: &Deployment, n: usize) -> (u64, u64) {
    let reads: u64 = (0..n).map(|i| dep.metrics(i).dp.nf_reads).sum();
    let writes: u64 = (0..n).map(|i| dep.metrics(i).dp.nf_writes).sum();
    (reads, writes)
}

fn run_nat(quick: bool) -> NfRun {
    let n = 3;
    let stats = NatStatsHandle::default();
    let s2 = stats.clone();
    let cfg = NatConfig {
        fwd_reg: 0,
        rev_reg: 1,
        keys: 8192,
        nat_ip: Ipv4Addr::new(203, 0, 113, 1),
        inside_octet: 10,
        ports_per_switch: 10_000,
        port_base: 2_000,
        outside_host: NodeId(HOST_BASE),
        inside_host: NodeId(HOST_BASE + 1),
    };
    let mut dep = DeploymentBuilder::new(n)
        .hosts(2)
        .register(RegisterSpec::sro(0, "nat_fwd", 8192))
        .register(RegisterSpec::sro(1, "nat_rev", 8192))
        .build(move |_| Box::new(Nat::new(cfg.clone(), s2.clone())));
    let sched = workload(n, quick, true, 11);
    let packets = drive(&mut dep, &sched);
    let (reads, writes) = sums(&dep, n);
    NfRun {
        app: "NAT",
        state: "Translation table",
        packets,
        flows: count_flows(&sched),
        reads,
        writes,
        consistency: "Strong",
    }
}

fn run_firewall(quick: bool) -> NfRun {
    let n = 3;
    let stats = FirewallStatsHandle::default();
    let s2 = stats.clone();
    let cfg = FirewallConfig {
        conn_reg: 0,
        keys: 8192,
        inside_octet: 10,
        outside_host: NodeId(HOST_BASE),
        inside_host: NodeId(HOST_BASE + 1),
    };
    let mut dep = DeploymentBuilder::new(n)
        .hosts(2)
        .register(RegisterSpec::sro(0, "fw_conn", 8192))
        .build(move |_| Box::new(Firewall::new(cfg.clone(), s2.clone())));
    let sched = workload(n, quick, true, 12);
    let packets = drive(&mut dep, &sched);
    let (reads, writes) = sums(&dep, n);
    NfRun {
        app: "Firewall",
        state: "Connection states table",
        packets,
        flows: count_flows(&sched),
        reads,
        writes,
        consistency: "Strong",
    }
}

fn run_ips(quick: bool) -> NfRun {
    let n = 3;
    let stats = IpsStatsHandle::default();
    let s2 = stats.clone();
    let cfg = IpsConfig {
        sig_reg: 0,
        match_reg: 1,
        keys: 4096,
        prevention_threshold: u64::MAX, // measuring access pattern only
        admin_port: 9999,
        egress_host: NodeId(HOST_BASE),
    };
    let mut dep = DeploymentBuilder::new(n)
        .hosts(1)
        .register(RegisterSpec::ero(0, "ips_sigs", 4096))
        .register(RegisterSpec::ewo_counter(1, "ips_matches", 16))
        .build(move |_| Box::new(Ips::new(cfg.clone(), s2.clone())));
    // A handful of signature installs (low write rate), then traffic.
    dep.settle();
    let t = dep.now();
    for i in 0..5u16 {
        let admin = DataPacket::udp(
            FlowKey::udp(
                Ipv4Addr::new(9, 9, 9, 9),
                9999,
                Ipv4Addr::new(10, 0, 0, 1),
                7000 + i,
            ),
            0,
            100 + i,
        );
        dep.inject(t + SimDuration::micros(u64::from(i) * 100), 0, 0, admin);
    }
    let sched = workload(n, quick, false, 13);
    let packets = drive(&mut dep, &sched) + 5;
    let (reads, writes) = sums(&dep, n);
    NfRun {
        app: "IPS",
        state: "Signatures",
        packets,
        flows: 0, // signature installs are operator events, not flows
        reads,
        writes,
        consistency: "Weak",
    }
}

fn run_lb(quick: bool) -> NfRun {
    let n = 3;
    let stats = LbStatsHandle::default();
    let s2 = stats.clone();
    let vip = Ipv4Addr::new(20, 0, 0, 0); // flowgen servers live in 20.0.x.y
    let cfg = LbConfig {
        conn_reg: 0,
        keys: 16384,
        vip,
        backends: vec![
            (Ipv4Addr::new(10, 1, 0, 1), NodeId(HOST_BASE)),
            (Ipv4Addr::new(10, 1, 0, 2), NodeId(HOST_BASE + 1)),
        ],
    };
    let mut dep = DeploymentBuilder::new(n)
        .hosts(2)
        .register(RegisterSpec::sro(0, "lb_conn", 16384))
        .build(move |_| Box::new(LoadBalancer::new(cfg.clone(), s2.clone())));
    // Rank-0 Zipf server is 20.0.0.0 == the VIP, so a healthy share of
    // flows exercises the mapped path; the rest pass through.
    let sched = workload(n, quick, true, 14);
    let vip_packets = sched.iter().filter(|p| p.pkt.flow.dst == vip).count() as u64;
    let vip_flows: u64 = {
        let mut s = std::collections::HashSet::new();
        for p in sched.iter().filter(|p| p.pkt.flow.dst == vip) {
            s.insert(p.pkt.flow);
        }
        s.len() as u64
    };
    drive(&mut dep, &sched);
    let (reads, writes) = sums(&dep, n);
    NfRun {
        app: "L4 load-balancer",
        state: "Connection-to-DIP mapping",
        packets: vip_packets,
        flows: vip_flows,
        reads,
        writes,
        consistency: "Strong",
    }
}

fn run_ddos(quick: bool) -> NfRun {
    let n = 3;
    const DEPTH: u16 = 3;
    let stats = DdosStatsHandle::default();
    let s2 = stats.clone();
    let cfg = DdosConfig {
        row_regs: (0..DEPTH).collect(),
        width: 2048,
        total_reg: DEPTH,
        share_millis: 1001, // never trips: measuring access pattern
        min_total: u64::MAX,
        min_est: u64::MAX,
        egress_host: NodeId(HOST_BASE),
    };
    let mut b = DeploymentBuilder::new(n).hosts(1);
    for r in 0..DEPTH {
        b = b.register(RegisterSpec::ewo_counter(r, &format!("cm{r}"), 2048));
    }
    b = b.register(RegisterSpec::ewo_counter(DEPTH, "total", 4));
    let mut dep = b.build(move |_| Box::new(DdosDetector::new(cfg.clone(), s2.clone())));
    let sched = workload(n, quick, false, 15);
    let packets = drive(&mut dep, &sched);
    let (reads, writes) = sums(&dep, n);
    NfRun {
        app: "DDoS detection",
        state: "Sketch",
        packets,
        flows: count_flows(&sched),
        reads,
        writes,
        consistency: "Weak",
    }
}

fn run_ratelimit(quick: bool) -> NfRun {
    let n = 3;
    let stats = RateLimitStatsHandle::default();
    let s2 = stats.clone();
    let cfg = RateLimitConfig {
        meter_reg: 0,
        keys: 4096,
        bytes_per_window: u64::MAX, // measuring access pattern only
        egress_host: NodeId(HOST_BASE),
    };
    let mut dep = DeploymentBuilder::new(n)
        .hosts(1)
        .register(RegisterSpec::ewo_windowed(
            0,
            "meters",
            4096,
            SimDuration::millis(10),
        ))
        .build(move |_| Box::new(RateLimiter::new(cfg.clone(), s2.clone())));
    let sched = workload(n, quick, false, 16);
    let packets = drive(&mut dep, &sched);
    let (reads, writes) = sums(&dep, n);
    NfRun {
        app: "Rate limiter",
        state: "Per-user meter",
        packets,
        flows: count_flows(&sched),
        reads,
        writes,
        consistency: "Weak",
    }
}

/// Run E1.
pub fn run(quick: bool) -> ExperimentResult {
    let runs = vec![
        run_nat(quick),
        run_firewall(quick),
        run_ips(quick),
        run_lb(quick),
        run_ddos(quick),
        run_ratelimit(quick),
    ];
    let mut t = Table::new(
        "Measured access patterns (shared-register ops per data packet)",
        &[
            "Application",
            "State",
            "pkts",
            "flows",
            "writes/pkt",
            "reads/pkt",
            "Write freq (classified)",
            "Read freq",
            "Consistency",
        ],
    );
    let expected: Vec<(&str, &str)> = vec![
        ("NAT", "New connection"),
        ("Firewall", "New connection"),
        ("IPS", "Low"),
        ("L4 load-balancer", "New connection"),
        ("DDoS detection", "Every packet"),
        ("Rate limiter", "Every packet"),
    ];
    let mut findings = Vec::new();
    let mut matched = 0;
    for r in &runs {
        let wf = classify_writes(r);
        let rf = classify_reads(r);
        t.row(vec![
            r.app.into(),
            r.state.into(),
            r.packets.to_string(),
            r.flows.to_string(),
            f(r.writes as f64 / r.packets.max(1) as f64),
            f(r.reads as f64 / r.packets.max(1) as f64),
            wf.clone(),
            rf,
            r.consistency.into(),
        ]);
        let want = expected
            .iter()
            .find(|(a, _)| *a == r.app)
            .map(|(_, w)| *w)
            .unwrap();
        if wf == want {
            matched += 1;
        } else {
            findings.push(format!(
                "{}: classified '{}', paper says '{}'",
                r.app, wf, want
            ));
        }
    }
    findings.insert(
        0,
        format!("{matched}/6 write-frequency classifications match Table 1"),
    );
    ExperimentResult {
        id: "E1".into(),
        title: "NF access patterns and consistency classes".into(),
        paper_anchor: "Table 1 (§4)".into(),
        expectation: "read-intensive NFs write ~once per connection; write-intensive NFs write every packet; all read every packet".into(),
        tables: vec![t],
        findings,
    }
}

//! E12 — §6.3 recovery: "we add a new switch to the end of the chain ...
//! The control plane on one of the switches takes a snapshot of its
//! shared state, and then uses it to resend the write requests for each
//! value through the normal data plane protocol ... Once the new switch
//! has acknowledged all writes, it has the latest complete state, and can
//! replace the tail in processing reads."
//!
//! Catch-up time (recovery → promotion) vs populated state size, plus
//! verification that the sequence guard never regresses a value.

use crate::scenarios::{probe_deployment, udp_write};
use crate::table::{ns, ExperimentResult, Table};
use swishmem::prelude::*;
use swishmem::{ConfigEventKind, RegisterSpec, SwishConfig};

struct Out {
    catchup_ns: u64,
    chunks: u64,
    applied: u64,
    stale_rejected: u64,
    correct: bool,
}

fn measure(populated_keys: u32, quick: bool) -> Out {
    let mut cfg = SwishConfig::default();
    // Pace chunks fast enough that big snapshots finish in sim-budget.
    cfg.snapshot_chunk = 64;
    cfg.snapshot_interval = SimDuration::micros(10);
    let mut dep = probe_deployment(3, RegisterSpec::sro(0, "t", populated_keys.max(64)), cfg);
    dep.settle();
    // Populate `populated_keys` distinct keys with value = key+1, batched
    // to stay under the CP rate.
    let t0 = dep.now();
    // Stay under the control-plane job ceiling (~50k writes/s) so the
    // populate phase completes without a retry backlog.
    let gap = 30_000u64; // ~33k writes/s
    for k in 0..populated_keys {
        dep.inject(
            t0 + SimDuration::nanos(u64::from(k) * gap),
            0,
            0,
            udp_write((k % 60_000) as u16, ((k + 1) % 1400) as u16),
        );
    }
    dep.run_for(SimDuration::nanos(u64::from(populated_keys) * gap) + SimDuration::millis(100));

    // Fail switch 2, wait for detection, recover.
    let t_fail = dep.now();
    dep.schedule_fail(t_fail, 2);
    dep.run_for(SimDuration::millis(50));
    let t_rec = dep.now();
    dep.schedule_recover(t_rec, 2);
    // During catch-up, overwrite one key with a NEW value — the guard
    // must keep it over the older snapshot entry.
    dep.run_for(SimDuration::micros(200));
    let tw = dep.now();
    dep.inject(tw, 0, 0, udp_write(5, 1399));
    dep.run_for(SimDuration::millis(if quick { 400 } else { 1000 }));

    let events = dep.controller_events();
    let learner_at = events
        .iter()
        .find(|e| e.kind == ConfigEventKind::LearnerAdded(NodeId(2)))
        .map(|e| e.time.nanos());
    let promoted_at = events
        .iter()
        .find(|e| e.kind == ConfigEventKind::Promoted(NodeId(2)))
        .map(|e| e.time.nanos());
    let catchup = match (learner_at, promoted_at) {
        (Some(a), Some(b)) => b.saturating_sub(a),
        _ => 0,
    };
    let m2 = dep.metrics(2);
    // Source of the snapshot is the head (switch 0).
    let chunks = dep.metrics(0).cp.snapshot_chunks_sent;
    // Verify: recovered state matches, and the concurrent write survived.
    let mut correct = dep.peek(2, 0, 5) == 1399;
    let sample = populated_keys.min(50);
    for k in 0..sample {
        if k == 5 {
            continue;
        }
        let want = u64::from((k + 1) % 1400);
        if dep.peek(2, 0, k % 60_000) != want {
            correct = false;
        }
    }
    Out {
        catchup_ns: catchup,
        chunks,
        applied: m2.dp.snapshot_applied,
        stale_rejected: m2.dp.snapshot_stale,
        correct,
    }
}

/// Run E12.
pub fn run(quick: bool) -> ExperimentResult {
    let sizes: Vec<u32> = if quick {
        vec![500, 4000]
    } else {
        vec![500, 2000, 8000, 20000]
    };
    let mut t = Table::new(
        "New-replica catch-up vs populated state size (64-entry chunks @10 µs)",
        &[
            "populated keys",
            "catch-up time",
            "snapshot chunks",
            "entries applied",
            "stale rejected",
            "state correct",
        ],
    );
    let mut points = Vec::new();
    for &s in &sizes {
        let o = measure(s, quick);
        t.row(vec![
            s.to_string(),
            ns(o.catchup_ns),
            o.chunks.to_string(),
            o.applied.to_string(),
            o.stale_rejected.to_string(),
            o.correct.to_string(),
        ]);
        points.push((s, o.catchup_ns));
    }
    let linearish = points.len() >= 2 && {
        let (s0, c0) = points[0];
        let (s1, c1) = points[points.len() - 1];
        c1 > c0 && (c1 as f64 / c0.max(1) as f64) > 0.3 * (s1 as f64 / s0 as f64)
    };
    let findings = vec![
        format!(
            "catch-up time grows with state size (snapshot streaming dominates): {}",
            if linearish { "confirmed, roughly linear" } else { "shape NOT confirmed" }
        ),
        "the snapshot-time sequence guard kept a concurrently-written newer value in every run (`state correct`)".into(),
    ];
    ExperimentResult {
        id: "E12".into(),
        title: "Recovery: snapshot-driven catch-up of a new chain member".into(),
        paper_anchor: "§6.3 (recovery; sequence-guarded replay)".into(),
        expectation: "catch-up linear in state; newer values never overwritten".into(),
        tables: vec![t],
        findings,
    }
}

//! E6 — §6.2 merging: "LWW provides eventual consistency, but until it
//! converges there may be inconsistent behavior"; CRDT counters give
//! *strong eventual consistency* and *monotonicity*, "which avoids
//! counter-intuitive scenarios such as a counter decreasing".
//!
//! All switches concurrently increment the same key. The G-counter must
//! end exactly at N; an LWW cell updated by read-modify-write loses
//! concurrent increments. We also sample a replica's view over time and
//! count *decreases* (monotonicity violations), which LWW exhibits and
//! the G-counter never does.

use crate::scenarios::count_pkt;
use crate::table::{f, ExperimentResult, Table};
use swishmem::prelude::*;
use swishmem::{NfApp, NfDecision, RegisterSpec, SharedState, SwishConfig};

/// Increments register 0 key 1 by one per packet (works for both LWW —
/// where `add` becomes read-modify-write — and G-counter registers).
struct IncNf;
impl NfApp for IncNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.add(0, 1, 1);
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

struct Out {
    expected: u64,
    final_value: u64,
    monotonicity_violations: u64,
}

fn measure(lww: bool, n_incr: u64, quick: bool) -> Out {
    let spec = if lww {
        RegisterSpec::ewo_lww(0, "v", 8)
    } else {
        RegisterSpec::ewo_counter(0, "v", 8)
    };
    let n = 4;
    let mut dep = DeploymentBuilder::new(n)
        .hosts(1)
        .seed(13)
        .swish_config(SwishConfig::default())
        .register(spec)
        .build(|_| Box::new(IncNf));
    dep.settle();
    let t0 = dep.now();
    // Tight concurrent increments from all switches (2 µs apart per
    // switch, interleaved) — concurrency is what LWW loses.
    for i in 0..n_incr {
        let sw = (i % n as u64) as usize;
        dep.inject(
            t0 + SimDuration::nanos(i * 500),
            sw,
            0,
            count_pkt(1, i as u32),
        );
    }
    // Sample switch 3's view during the run for monotonicity.
    let mut last = 0u64;
    let mut violations = 0u64;
    let steps = if quick { 50 } else { 200 };
    for _ in 0..steps {
        dep.run_for(SimDuration::micros(100));
        let v = dep.peek(3, 0, 1);
        if v < last {
            violations += 1;
        }
        last = v;
    }
    dep.run_for(SimDuration::millis(50));
    Out {
        expected: n_incr,
        final_value: dep.peek(0, 0, 1),
        monotonicity_violations: violations,
    }
}

/// Run E6.
pub fn run(quick: bool) -> ExperimentResult {
    let sizes: Vec<u64> = if quick {
        vec![200, 1000]
    } else {
        vec![200, 1000, 5000]
    };
    let mut t = Table::new(
        "Counter accuracy under concurrent increments from 4 switches",
        &[
            "merge policy",
            "increments",
            "final value",
            "lost updates",
            "loss %",
            "monotonicity violations",
        ],
    );
    let mut crdt_exact = true;
    let mut lww_lossy = false;
    let mut lww_max_loss = 0.0f64;
    for &n in &sizes {
        for lww in [false, true] {
            let o = measure(lww, n, quick);
            let lost = o.expected.saturating_sub(o.final_value);
            let loss_pct = 100.0 * lost as f64 / o.expected as f64;
            if lww {
                lww_lossy |= lost > 0;
                lww_max_loss = lww_max_loss.max(loss_pct);
            } else {
                crdt_exact &= o.final_value == o.expected && o.monotonicity_violations == 0;
            }
            t.row(vec![
                if lww {
                    "LWW (read-modify-write)"
                } else {
                    "G-counter CRDT"
                }
                .into(),
                n.to_string(),
                o.final_value.to_string(),
                lost.to_string(),
                f(loss_pct),
                o.monotonicity_violations.to_string(),
            ]);
        }
    }
    let findings = vec![
        format!(
            "G-counter is exact with zero monotonicity violations in every run: {}",
            if crdt_exact {
                "confirmed"
            } else {
                "NOT confirmed"
            }
        ),
        format!(
            "LWW loses concurrent increments (up to {:.1}% here): {}",
            lww_max_loss,
            if lww_lossy {
                "confirmed"
            } else {
                "NOT observed at this concurrency"
            }
        ),
    ];
    ExperimentResult {
        id: "E6".into(),
        title: "LWW vs G-counter CRDT under concurrent updates".into(),
        paper_anchor: "§6.2 (merging; CRDT counters, monotonicity)".into(),
        expectation: "CRDT exact and monotone; LWW loses concurrent increments".into(),
        tables: vec![t],
        findings,
    }
}

//! E23 — control-plane flight recorder overhead and fidelity: the
//! journal fast path must be free when no collector is attached, and an
//! attached journal must reconstruct control-plane timings exactly. Two
//! identical ping-pong simulations are timed wall-clock (mirroring E18's
//! methodology): both do the same protocol work per packet, but only one
//! encodes and emits a `CtrlEvent` into the **detached** journal slot —
//! the controller's instrumentation density on its hottest paths. The
//! gate is <2% events/s regression (DESIGN.md §14). A second table
//! replays E22's leader-crash scenario with the journal attached and
//! checks that the journal-reconstructed failover gap agrees with the
//! controller's own election log to within 1 µs.

use crate::scenarios::udp_write;
use crate::table::{ExperimentResult, Table};
use std::net::Ipv4Addr;
use std::time::Instant;
use swishmem::prelude::*;
use swishmem::{CtrlEvent, Deployment, Journal, NfApp, NfDecision, RegisterSpec, SharedState};
use swishmem_simnet::{Ctx, Node, NodeObj, Simulator};
use swishmem_wire::{Packet, PacketBody};

/// Bounces packets back and forth `ttl` times, doing the unconditional
/// per-packet bookkeeping but never touching the journal API.
struct PlainEcho {
    ttl: u32,
    seq: u64,
}
impl Node for PlainEcho {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if let PacketBody::Data(d) = pkt.body {
            self.seq += 1;
            std::hint::black_box(self.seq);
            if d.flow_seq < self.ttl {
                let mut d2 = d;
                d2.flow_seq += 1;
                ctx.send(pkt.src, PacketBody::Data(d2));
            }
        }
    }
}

/// Same ping-pong plus the recorder hook under test: one typed journal
/// event per packet (encode + emit). With no collector attached the
/// emission hits the detached early-out.
struct JournaledEcho {
    ttl: u32,
    seq: u64,
}
impl Node for JournaledEcho {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if let PacketBody::Data(d) = pkt.body {
            self.seq += 1;
            CtrlEvent::Applied {
                slot: self.seq,
                tag: 3,
            }
            .emit(ctx);
            if d.flow_seq < self.ttl {
                let mut d2 = d;
                d2.flow_seq += 1;
                ctx.send(pkt.src, PacketBody::Data(d2));
            }
        }
    }
}

fn pkt() -> Packet {
    Packet::data(
        NodeId(0),
        NodeId(1),
        DataPacket::udp(
            FlowKey::udp(Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 0, 0, 2), 2),
            0,
            64,
        ),
    )
}

fn build(events: u64, journaled: bool) -> Simulator {
    let mut sim = Simulator::new(1);
    let mk = |_: u16| -> Box<dyn NodeObj> {
        if journaled {
            Box::new(JournaledEcho {
                ttl: events as u32,
                seq: 0,
            })
        } else {
            Box::new(PlainEcho {
                ttl: events as u32,
                seq: 0,
            })
        }
    };
    sim.add_node(NodeId(0), mk(0));
    sim.add_node(NodeId(1), mk(1));
    sim.topology_mut()
        .connect(NodeId(0), NodeId(1), LinkParams::datacenter());
    sim.inject(SimTime::ZERO, pkt());
    sim
}

fn time_once(events: u64, journaled: bool) -> f64 {
    let mut sim = build(events, journaled);
    let t = Instant::now();
    sim.run_until_quiescent(SimTime(u64::MAX / 2));
    let dt = t.elapsed().as_secs_f64();
    assert!(sim.stats().delivered_total().packets >= events);
    dt
}

/// Best-of-`reps` events/s for both configurations, reps interleaved so
/// clock drift and scheduler noise hit both sides alike (the E18
/// estimator). Returns `(plain, journaled)` events/s.
pub fn measure_pair(events: u64, reps: usize) -> (f64, f64) {
    time_once(events.min(10_000), false);
    time_once(events.min(10_000), true);
    let (mut best_p, mut best_j) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        best_p = best_p.min(time_once(events, false));
        best_j = best_j.min(time_once(events, true));
    }
    (events as f64 / best_p, events as f64 / best_j)
}

// ---------------------------------------------------------------------
// Fidelity: journal-reconstructed failover gap vs the election log
// ---------------------------------------------------------------------

struct WriteNf;
impl NfApp for WriteNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.write(0, u32::from(pkt.flow.dst_port), u64::from(pkt.payload_len));
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

const KEYS: u32 = 48;

fn inject_writes(dep: &mut Deployment, t0: SimTime, n: u64, window: SimDuration) {
    let step = window.as_nanos() / n.max(1);
    for i in 0..n {
        let key = (i % u64::from(KEYS)) as u16;
        dep.inject(
            t0 + SimDuration::nanos(i * step),
            (i % 3) as usize,
            0,
            udp_write(key, 100 + (i % 400) as u16),
        );
    }
}

/// E22's leader-crash scenario with the journal attached: returns
/// `(measured_gap_ns, journal_gap_ns)` — crash-to-election as the
/// controller's election log saw it vs as the journal reconstructs it.
pub fn crash_gaps(seed: u64) -> Option<(u64, u64)> {
    let cfg = SwishConfig {
        ctrl_replicas: 3,
        adaptive_detector: true,
        ..Default::default()
    };
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(seed)
        .swish_config(cfg)
        .register(RegisterSpec::partitioned(0, "p", KEYS))
        .build(|_| Box::new(WriteNf));
    let journal = dep.attach_journal(1 << 16);
    dep.settle();
    dep.run_for(SimDuration::millis(30)); // detector warm-up
    let t_crash = dep.now();
    dep.schedule_ctrl_fail(t_crash, 0);
    inject_writes(&mut dep, t_crash, 24, SimDuration::millis(20));
    dep.run_for(SimDuration::millis(60));
    let measured = dep
        .controller()
        .elections()
        .iter()
        .find(|e| e.time >= t_crash)
        .map(|e| e.time.since(t_crash).0)?;
    let decoded = Journal::decode(journal.borrow().records());
    let reconstructed = decoded
        .failovers()
        .iter()
        .find(|f| f.elected_at >= t_crash)
        .map(|f| f.elected_at.since(t_crash).0)?;
    Some((measured, reconstructed))
}

/// Run E23.
pub fn run(quick: bool) -> ExperimentResult {
    let events: u64 = if quick { 20_000 } else { 100_000 };
    let reps: usize = if quick { 5 } else { 9 };
    let (plain, journaled) = measure_pair(events, reps);
    let overhead_pct = (plain / journaled - 1.0) * 100.0;

    let mut t = Table::new(
        "Engine throughput with the flight recorder compiled in (no collector attached)",
        &["config", "events", "events/s (best)", "relative"],
    );
    t.row(vec![
        "plain echo (no journal emission)".into(),
        events.to_string(),
        format!("{:.2}M", plain / 1e6),
        "1.000x".into(),
    ]);
    t.row(vec![
        "journaled echo (1 event/pkt, detached)".into(),
        events.to_string(),
        format!("{:.2}M", journaled / 1e6),
        format!("{:.3}x", journaled / plain),
    ]);

    let seeds: Vec<u64> = if quick {
        (801..805).collect()
    } else {
        (801..809).collect()
    };
    let mut acc = Table::new(
        "Failover gap: controller election log vs journal reconstruction",
        &["seed", "measured ns", "journal ns", "|diff| ns"],
    );
    let mut worst_diff: u64 = 0;
    let mut reconstructed = 0usize;
    for &seed in &seeds {
        match crash_gaps(seed) {
            Some((m, j)) => {
                let diff = m.abs_diff(j);
                worst_diff = worst_diff.max(diff);
                reconstructed += 1;
                acc.row(vec![
                    seed.to_string(),
                    m.to_string(),
                    j.to_string(),
                    diff.to_string(),
                ]);
            }
            None => {
                acc.row(vec![
                    seed.to_string(),
                    "-".into(),
                    "-".into(),
                    "no failover".into(),
                ]);
            }
        }
    }

    let overhead_verdict = if overhead_pct < 2.0 { "PASS" } else { "FAIL" };
    let fidelity_verdict = if reconstructed == seeds.len() && worst_diff <= 1_000 {
        "PASS"
    } else {
        "FAIL"
    };
    let findings = vec![
        format!(
            "detached journaling costs {overhead_pct:+.2}% events/s on the ping-pong engine \
             workload (gate: <2% — {overhead_verdict}); emission with no collector attached \
             is an encode plus a branch on an Option"
        ),
        format!(
            "the journal reconstructed the crash-to-election gap on {reconstructed}/{} seeds \
             with worst disagreement {worst_diff} ns against the controller's election log \
             (gate: <=1 µs — {fidelity_verdict}); both stamp the same decree-apply instant, \
             so the expected disagreement is zero",
            seeds.len()
        ),
    ];
    ExperimentResult {
        id: "E23".into(),
        title: "Flight recorder: detached overhead and reconstruction fidelity".into(),
        paper_anchor: "DESIGN.md §14 (control-plane flight recorder)".into(),
        expectation: "<2% events/s regression with journaling compiled in but detached; \
                      journal failover gap within 1 µs of the election log"
            .into(),
        tables: vec![t, acc],
        findings,
    }
}

//! E4 — §6.1 read paths: SRO reads are local unless a pending bit is set
//! (then the packet is forwarded to the tail, costing latency but never
//! returning uncommitted/stale data); ERO reads are always local
//! ("guarantees bounded read latency") at the price of staleness.
//!
//! Probe design: each write to a key is paired with a read of the same
//! key at a controlled offset after the write's injection. With 30 µs
//! inter-switch links, the write commits along the chain during roughly
//! [45 µs, 135 µs] after injection (CP punt + per-hop latency), so the
//! offset sweep walks the read through the pending window. For each
//! offset we report: fraction of SRO reads forwarded to the tail, SRO
//! read latency, and the fraction of ERO reads returning the *old* value
//! even though they were issued after the overlapping SRO probe had
//! already committed at the tail (observable staleness).

use crate::scenarios::{percentile, read_arrivals, tcp_read, udp_write};
use crate::table::{f, ns, ExperimentResult, Table};
use swishmem::prelude::*;
use swishmem::{RegisterClass, RegisterSpec, SwishConfig};

struct Out {
    forwarded_frac: f64,
    stale_frac: f64,
    mean_ns: f64,
    p99_ns: f64,
}

fn measure(class: RegisterClass, offset: SimDuration, quick: bool) -> Out {
    let spec = match class {
        RegisterClass::Sro => RegisterSpec::sro(0, "t", 1024),
        RegisterClass::Ero => RegisterSpec::ero(0, "t", 1024),
        RegisterClass::Ewo => unreachable!(),
    };
    let link = LinkParams::datacenter().with_latency(SimDuration::micros(30));
    let mut dep = DeploymentBuilder::new(3)
        .hosts(2)
        .seed(71)
        .link(link)
        .swish_config(SwishConfig::default())
        .register(spec)
        .build(|_| Box::new(crate::scenarios::ProbeNf));
    dep.settle();
    // Seed keys with value 1.
    let probes = if quick { 200u64 } else { 600 };
    let t0 = dep.now();
    for k in 0..probes {
        dep.inject(
            t0 + SimDuration::micros(k * 30),
            0,
            0,
            udp_write((k % 1000) as u16, 1),
        );
    }
    dep.run_for(SimDuration::micros(probes * 30) + SimDuration::millis(30));

    // Paired probes, 1 ms apart so they never interfere with each other.
    let t0 = dep.now();
    let mut issue = Vec::new();
    for i in 0..probes {
        let key = (i % 1000) as u16;
        let tw = t0 + SimDuration::millis(i);
        dep.inject(tw, 0, 0, udp_write(key, 2));
        let tr = tw + offset;
        let tag = (i % 60000) as u16;
        dep.inject(tr, 0, 0, tcp_read(key, tag));
        issue.push((tag, tr));
    }
    dep.run_for(SimDuration::millis(probes + 50));

    let arrivals = read_arrivals(dep.recording(1));
    let mut lat = Vec::new();
    let mut stale = 0u64;
    for (t_arr, tag, val) in &arrivals {
        if let Some((_, t_iss)) = issue.iter().find(|(g, _)| g == tag) {
            lat.push(t_arr.since(*t_iss).as_nanos() as f64);
        }
        if *val == 1 {
            stale += 1;
        }
    }
    let forwarded: u64 = (0..3).map(|i| dep.metrics(i).dp.reads_forwarded).sum();
    Out {
        forwarded_frac: forwarded as f64 / arrivals.len().max(1) as f64,
        stale_frac: stale as f64 / arrivals.len().max(1) as f64,
        mean_ns: crate::scenarios::mean(&lat),
        p99_ns: percentile(&lat, 0.99),
    }
}

/// Run E4.
pub fn run(quick: bool) -> ExperimentResult {
    let offsets = if quick {
        vec![
            SimDuration::micros(20),
            SimDuration::micros(70),
            SimDuration::micros(300),
        ]
    } else {
        vec![
            SimDuration::micros(20),
            SimDuration::micros(50),
            SimDuration::micros(70),
            SimDuration::micros(100),
            SimDuration::micros(130),
            SimDuration::micros(300),
        ]
    };
    let mut t = Table::new(
        "Read of a just-written key at the head switch, by offset after the write (30 µs links)",
        &[
            "read offset",
            "SRO % forwarded to tail",
            "SRO read mean",
            "SRO read p99",
            "ERO % forwarded",
            "ERO % stale",
            "ERO read mean",
        ],
    );
    let mut max_fwd = 0.0f64;
    let mut max_stale = 0.0f64;
    let mut sro_p99_peak = 0u64;
    let mut sro_mean_base = f64::MAX;
    for &off in &offsets {
        let s = measure(RegisterClass::Sro, off, quick);
        let e = measure(RegisterClass::Ero, off, quick);
        t.row(vec![
            off.to_string(),
            f(100.0 * s.forwarded_frac),
            ns(s.mean_ns as u64),
            ns(s.p99_ns as u64),
            f(100.0 * e.forwarded_frac),
            f(100.0 * e.stale_frac),
            ns(e.mean_ns as u64),
        ]);
        max_fwd = max_fwd.max(s.forwarded_frac);
        max_stale = max_stale.max(e.stale_frac);
        sro_p99_peak = sro_p99_peak.max(s.p99_ns as u64);
        sro_mean_base = sro_mean_base.min(s.mean_ns);
    }
    let findings = vec![
        format!(
            "inside the commit window SRO forwards up to {:.0}% of reads to the tail, inflating p99 read latency to {} (vs {} local): the paper's read-redirect cost",
            100.0 * max_fwd,
            ns(sro_p99_peak),
            ns(sro_mean_base as u64)
        ),
        format!(
            "ERO never forwards and stays at local latency, but returns the old value in up to {:.0}% of in-window reads — bounded latency traded for staleness, exactly §6.1's ERO deal",
            100.0 * max_stale
        ),
        "outside the window (300 µs offset) both classes are identical: local reads, fresh values".into(),
    ];
    ExperimentResult {
        id: "E4".into(),
        title: "SRO vs ERO read paths across the write-commit window".into(),
        paper_anchor: "§6.1 (reads; CRAQ-style tail forwarding; ERO bounded read latency)".into(),
        expectation: "SRO forwards reads (latency spike) inside the window; ERO flat but stale"
            .into(),
        tables: vec![t],
        findings,
    }
}

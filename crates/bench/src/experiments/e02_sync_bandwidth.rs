//! E2 — the §6.2 sync-bandwidth estimate: "even if the switches
//! synchronize 10 MB (about the full memory size) every 1 ms, the total
//! bandwidth consumed by the synchronization would constitute ~1% of the
//! total switch bandwidth [5 Tbps]".
//!
//! We populate an EWO register array of varying size, run periodic sync
//! for a measurement window, and report measured sync traffic per switch
//! against the paper's 5 Tbps reference point, sweeping state size ×
//! sync period.

use crate::table::{f, ExperimentResult, Table};
use swishmem::prelude::*;
use swishmem::{RegisterSpec, SwishConfig};
use swishmem_simnet::TrafficClass;

/// The paper's switch bandwidth reference.
const SWITCH_BPS: f64 = 5e12;

fn measure(state_keys: u32, period: SimDuration, window: SimDuration) -> (f64, f64) {
    let mut cfg = SwishConfig::default();
    cfg.sync_period = period;
    cfg.eager_updates = false; // isolate the periodic sync cost
    cfg.sync_chunk = usize::MAX >> 1; // whole-array sync per tick (paper model)
    let n = 3;
    let mut dep = DeploymentBuilder::new(n)
        .hosts(1)
        .swish_config(cfg)
        .memory(64 << 20) // allow large arrays for the sweep
        .register(RegisterSpec::ewo_counter(0, "state", state_keys))
        .build(|_| Box::new(crate::scenarios::CounterNf));
    dep.settle();
    // Populate the array by driving real traffic through every switch, so
    // periodic sync packets carry live state (the paper's full-sync
    // model walks the whole register array).
    let t0 = dep.now();
    // Populate EVERY key (keys are u16 ports, so the sweep caps at 32768)
    // — otherwise large-array rows would ship only the populated prefix
    // and the size scaling would be fictitious.
    let batch = state_keys;
    for k in 0..batch {
        for sw in 0..n {
            dep.inject(
                t0 + SimDuration::nanos(u64::from(k) * 300 + sw as u64 * 20),
                sw,
                0,
                crate::scenarios::count_pkt((k % 65535) as u16, k),
            );
        }
    }
    dep.run_for(SimDuration::nanos(u64::from(batch) * 300) + SimDuration::millis(5));
    // Measurement window.
    dep.sim.stats_mut().reset();
    dep.run_for(window);
    let sync = dep.sim.stats().delivered(TrafficClass::EwoSync);
    let secs = window.as_secs_f64();
    let per_switch_bps = (sync.bytes as f64 * 8.0) / secs / n as f64;
    let pct_of_switch = 100.0 * per_switch_bps / SWITCH_BPS;
    (per_switch_bps, pct_of_switch)
}

/// Run E2.
pub fn run(quick: bool) -> ExperimentResult {
    let periods = if quick {
        vec![SimDuration::millis(1), SimDuration::millis(4)]
    } else {
        vec![
            SimDuration::micros(500),
            SimDuration::millis(1),
            SimDuration::millis(2),
            SimDuration::millis(4),
        ]
    };
    let sizes: Vec<u32> = if quick {
        vec![1024, 8192]
    } else {
        vec![1024, 8192, 32768]
    };
    let window = SimDuration::millis(if quick { 20 } else { 50 });

    let mut t = Table::new(
        "Periodic-sync bandwidth per switch (3 replicas, full-array sync)",
        &[
            "state keys",
            "state bytes/switch",
            "period",
            "sync Gbps/switch",
            "% of 5 Tbps",
        ],
    );
    let mut measured_ratio = Vec::new();
    for &keys in &sizes {
        for &p in &periods {
            let (bps, pct) = measure(keys, p, window);
            // State bytes: n slots × 16 B per key at each switch.
            let state_bytes = keys as u64 * 3 * 16;
            t.row(vec![
                keys.to_string(),
                state_bytes.to_string(),
                p.to_string(),
                f(bps / 1e9),
                f(pct),
            ]);
            // bits actually shipped per second vs state_bits/period ideal
            let ideal = (state_bytes as f64 * 8.0) / p.as_secs_f64();
            if ideal > 0.0 {
                measured_ratio.push(bps / ideal);
            }
        }
    }
    // Extrapolate the paper's exact point: 10 MB / 1 ms.
    let overhead = crate::scenarios::mean(&measured_ratio);
    let paper_point = (10e6 * 8.0 / 1e-3) * overhead / SWITCH_BPS * 100.0;
    let findings = vec![
        format!(
            "measured sync traffic ≈ {:.2}× the raw state/period product (protocol framing overhead)",
            overhead
        ),
        format!(
            "extrapolated to the paper's 10 MB / 1 ms point: {:.2}% of a 5 Tbps switch — the paper's own arithmetic gives 1.6% (80 Gbps / 5 Tbps), rounded in the text to ~1%; framing adds the rest",
            paper_point
        ),
        "sync bandwidth scales linearly with state size and inversely with period".into(),
    ];
    ExperimentResult {
        id: "E2".into(),
        title: "EWO periodic-sync bandwidth overhead".into(),
        paper_anchor: "§6.2 (10 MB/1 ms ≈ 1% of 5 Tbps)".into(),
        expectation: "linear in state size, inverse in period; ~1% at the paper's point".into(),
        tables: vec![t],
        findings,
    }
}

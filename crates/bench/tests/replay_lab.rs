//! Smoke tests for the E24 replay-lab gates: the determinism and
//! ring-parity checks at CI scale. The full-size gates (1M flows, five
//! scenario packs, the 0.90x parity floor) live in the experiment
//! itself; these keep the invariants on every `scripts/verify.sh` run
//! with gates generous enough for noisy shared runners (the
//! `trace_overhead.rs` convention).

use swishmem_bench::experiments::e24_replay_lab;
use swishmem_bench::shardnet::{
    run_leaf_spine_injected, trace_to_leaf_spine, LeafSpineSpec, ShardRunConfig,
};
use swishmem_replay::{from_swtrace_bytes, synth_trace_bytes, SynthConfig};

/// The core replay-lab contract at smoke scale: the same trace through
/// the leaf-spine fabric yields one digest sequentially (twice) and at
/// 2 shards. No timing involved, so this gate is exact.
#[test]
fn replay_digest_is_shard_invariant() {
    let spec = LeafSpineSpec {
        leaves: 8,
        spines: 2,
    };
    let cfg = SynthConfig {
        flows: 3_000,
        ingress: u32::from(spec.leaves),
        ..SynthConfig::default()
    };
    let bytes = synth_trace_bytes(&cfg, 5);
    let (_, records) = from_swtrace_bytes(&bytes).expect("synthesized trace must parse");
    let injections = trace_to_leaf_spine(&spec, &records);
    assert!(injections.len() >= 3_000);
    let digests: Vec<u64> = [1usize, 1, 2]
        .iter()
        .map(|&shards| {
            run_leaf_spine_injected(&ShardRunConfig::scaling(spec, shards, 0), &injections).digest
        })
        .collect();
    assert_eq!(digests[0], digests[1], "sequential replay must repeat");
    assert_eq!(
        digests[0], digests[2],
        "2-shard replay must match sequential"
    );
}

/// Ring-buffer ingest must keep pace with generator-driven injection.
/// The experiment gates at 0.90x; the CI smoke allows 0.75x to tolerate
/// scheduler noise on shared runners.
#[test]
fn ring_ingest_keeps_pace_with_generator_driven() {
    let (direct, ring) = e24_replay_lab::measure_ring_parity(6_000, 3);
    let ratio = ring / direct.max(1.0);
    assert!(
        ratio >= 0.75,
        "ring ingest fell to {ratio:.2}x of generator-driven \
         (direct {:.2}M ev/s, ring {:.2}M ev/s)",
        direct / 1e6,
        ring / 1e6,
    );
}

//! Smoke tests for the E18/E23 gates: span telemetry and flight-recorder
//! journaling compiled in but disabled must not meaningfully slow the
//! event engine. The CI gates here are deliberately generous (25%) to
//! tolerate noisy shared runners; the experiments themselves report
//! against the real <2% targets.

use swishmem_bench::experiments::{e18_trace_overhead, e23_ctrl_recorder};

#[test]
fn detached_tracing_overhead_is_small() {
    const EVENTS: u64 = 20_000;
    // Interleaved best-of-5 each — min wall-clock of a deterministic
    // workload is robust to scheduler noise.
    let (plain, traced) = e18_trace_overhead::measure_pair(EVENTS, 5);
    let ratio = plain / traced;
    assert!(
        ratio < 1.25,
        "detached span tracing slowed the engine {:.1}% (plain {:.2}M ev/s, traced {:.2}M ev/s)",
        (ratio - 1.0) * 100.0,
        plain / 1e6,
        traced / 1e6,
    );
}

#[test]
fn detached_journal_overhead_is_small() {
    const EVENTS: u64 = 20_000;
    let (plain, journaled) = e23_ctrl_recorder::measure_pair(EVENTS, 5);
    let ratio = plain / journaled;
    assert!(
        ratio < 1.25,
        "detached journaling slowed the engine {:.1}% (plain {:.2}M ev/s, journaled {:.2}M ev/s)",
        (ratio - 1.0) * 100.0,
        plain / 1e6,
        journaled / 1e6,
    );
}

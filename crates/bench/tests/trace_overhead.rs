//! Smoke test for the E18 gate: span telemetry compiled in but disabled
//! must not meaningfully slow the event engine. The CI gate here is
//! deliberately generous (25%) to tolerate noisy shared runners; the
//! experiment itself reports against the real <2% target.

use swishmem_bench::experiments::e18_trace_overhead::measure_pair;

#[test]
fn detached_tracing_overhead_is_small() {
    const EVENTS: u64 = 20_000;
    // Interleaved best-of-5 each — min wall-clock of a deterministic
    // workload is robust to scheduler noise.
    let (plain, traced) = measure_pair(EVENTS, 5);
    let ratio = plain / traced;
    assert!(
        ratio < 1.25,
        "detached span tracing slowed the engine {:.1}% (plain {:.2}M ev/s, traced {:.2}M ev/s)",
        (ratio - 1.0) * 100.0,
        plain / 1e6,
        traced / 1e6,
    );
}

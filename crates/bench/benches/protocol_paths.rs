//! Macro-benchmarks over whole protocol paths: simulator wall-clock cost
//! of one SRO write (full chain round), one EWO write (apply + eager
//! mirror + merges), an SRO local read and a tail-forwarded read — the
//! per-operation costs behind experiments E3/E4.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use swishmem::prelude::*;
use swishmem::{RegisterSpec, SwishConfig};
use swishmem_bench::scenarios::{count_pkt, probe_deployment, tcp_read, udp_write, CounterNf};

fn sro_dep() -> Deployment {
    let mut dep = probe_deployment(3, RegisterSpec::sro(0, "t", 4096), SwishConfig::default());
    dep.settle();
    dep
}

fn bench(c: &mut Criterion) {
    c.bench_function("proto/sro_write_end_to_end", |b| {
        b.iter_batched(
            sro_dep,
            |mut dep| {
                let t = dep.now();
                dep.inject(t, 0, 0, udp_write(7, 99));
                dep.run_for(SimDuration::millis(5));
                assert_eq!(dep.peek(2, 0, 7), 99);
            },
            BatchSize::SmallInput,
        );
    });

    c.bench_function("proto/sro_read_local", |b| {
        b.iter_batched(
            || {
                let mut dep = sro_dep();
                let t = dep.now();
                dep.inject(t, 0, 0, udp_write(7, 99));
                dep.run_for(SimDuration::millis(5));
                dep
            },
            |mut dep| {
                let t = dep.now();
                dep.inject(t, 0, 0, tcp_read(7, 1));
                dep.run_for(SimDuration::millis(1));
                assert_eq!(dep.recording(1).borrow().len(), 1);
            },
            BatchSize::SmallInput,
        );
    });

    c.bench_function("proto/ewo_write_with_mirror", |b| {
        b.iter_batched(
            || {
                let mut dep = DeploymentBuilder::new(3)
                    .hosts(1)
                    .register(RegisterSpec::ewo_counter(0, "c", 256))
                    .build(|_| Box::new(CounterNf));
                dep.settle();
                dep
            },
            |mut dep| {
                let t = dep.now();
                dep.inject(t, 0, 0, count_pkt(1, 0));
                dep.run_for(SimDuration::millis(1));
                assert_eq!(dep.peek(2, 0, 1), 1);
            },
            BatchSize::SmallInput,
        );
    });

    c.bench_function("proto/deployment_build_3sw", |b| {
        b.iter(|| {
            DeploymentBuilder::new(3)
                .hosts(1)
                .register(RegisterSpec::sro(0, "t", 4096))
                .build(|_| Box::new(CounterNf))
        });
    });

    // Sustained throughput: simulated writes per wall second.
    let mut g = c.benchmark_group("proto_sustained");
    g.sample_size(10);
    g.bench_function("sro_1000_writes", |b| {
        b.iter_batched(
            sro_dep,
            |mut dep| {
                let t = dep.now();
                for i in 0..1000u64 {
                    dep.inject(
                        t + SimDuration::micros(i * 25),
                        0,
                        0,
                        udp_write((i % 4000) as u16, 5),
                    );
                }
                dep.run_for(SimDuration::millis(40));
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("ewo_1000_writes", |b| {
        b.iter_batched(
            || {
                let mut dep = DeploymentBuilder::new(3)
                    .hosts(1)
                    .register(RegisterSpec::ewo_counter(0, "c", 4096))
                    .build(|_| Box::new(CounterNf));
                dep.settle();
                dep
            },
            |mut dep| {
                let t = dep.now();
                for i in 0..1000u64 {
                    dep.inject(
                        t + SimDuration::micros(i),
                        0,
                        0,
                        count_pkt((i % 4000) as u16, 0),
                    );
                }
                dep.run_for(SimDuration::millis(5));
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

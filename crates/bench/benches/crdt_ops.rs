//! Micro-benchmarks: CRDT and sketch primitive costs — the per-packet
//! arithmetic the data plane performs for EWO registers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use swishmem::crdt::{Crdt, GCounter, LwwCell, PnCounter, WindowedSlot};
use swishmem_nf::CmSketch;
use swishmem_wire::NodeId;

fn bench(c: &mut Criterion) {
    c.bench_function("crdt/gcounter_increment_read", |b| {
        let mut g = GCounter::new(8);
        b.iter(|| {
            g.increment(NodeId(3), 1);
            black_box(g.read())
        });
    });

    c.bench_function("crdt/gcounter_merge_8slots", |b| {
        let mut a = GCounter::new(8);
        let mut other = GCounter::new(8);
        for i in 0..8 {
            other.increment(NodeId(i), u64::from(i) * 7 + 1);
        }
        b.iter(|| {
            a.merge(black_box(&other));
            black_box(a.read())
        });
    });

    c.bench_function("crdt/pncounter_add_read", |b| {
        let mut p = PnCounter::new(8);
        let mut sign = 1i64;
        b.iter(|| {
            p.add(NodeId(1), sign * 3);
            sign = -sign;
            black_box(p.read())
        });
    });

    c.bench_function("crdt/lww_merge", |b| {
        let mut a = LwwCell::default();
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            a.merge(black_box(&LwwCell {
                version: v,
                value: v * 2,
            }));
            black_box(a.read())
        });
    });

    c.bench_function("crdt/windowed_add", |b| {
        let mut w = WindowedSlot::default();
        let mut e = 0u64;
        b.iter(|| {
            e += 1;
            w.add(e / 16, 100);
            black_box(w.read_at(e / 16))
        });
    });

    c.bench_function("sketch/cm_add_d4", |b| {
        let mut s = CmSketch::new(4, 2048);
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(0x9e37_79b9);
            s.add(black_box(k), 1);
        });
    });

    c.bench_function("sketch/cm_estimate_d4", |b| {
        let mut s = CmSketch::new(4, 2048);
        for k in 0..1000u64 {
            s.add(k, k + 1);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 1000;
            black_box(s.estimate(k))
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Macro-benchmarks: full-pipeline packet cost per network function —
//! how expensive one simulated packet is for each Table 1 application
//! (parser + NF logic + SwiShmem layer + effects).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::RegisterSpec;
use swishmem_nf::*;

const BATCH: u64 = 500;

fn firewall_dep() -> Deployment {
    let cfg = FirewallConfig {
        conn_reg: 0,
        keys: 8192,
        inside_octet: 10,
        outside_host: NodeId(HOST_BASE),
        inside_host: NodeId(HOST_BASE + 1),
    };
    let mut dep = DeploymentBuilder::new(3)
        .hosts(2)
        .register(RegisterSpec::sro(0, "fw", 8192))
        .build(move |_| Box::new(Firewall::new(cfg.clone(), FirewallStatsHandle::default())));
    dep.settle();
    dep
}

fn ddos_dep() -> Deployment {
    let cfg = DdosConfig {
        row_regs: vec![0, 1, 2],
        width: 2048,
        total_reg: 3,
        share_millis: 1001,
        min_total: u64::MAX,
        min_est: u64::MAX,
        egress_host: NodeId(HOST_BASE),
    };
    let mut b = DeploymentBuilder::new(3).hosts(1);
    for r in 0..3u16 {
        b = b.register(RegisterSpec::ewo_counter(r, &format!("cm{r}"), 2048));
    }
    b = b.register(RegisterSpec::ewo_counter(3, "tot", 4));
    let mut dep =
        b.build(move |_| Box::new(DdosDetector::new(cfg.clone(), DdosStatsHandle::default())));
    dep.settle();
    dep
}

fn ratelimit_dep() -> Deployment {
    let cfg = RateLimitConfig {
        meter_reg: 0,
        keys: 4096,
        bytes_per_window: u64::MAX,
        egress_host: NodeId(HOST_BASE),
    };
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .register(RegisterSpec::ewo_windowed(
            0,
            "m",
            4096,
            SimDuration::millis(10),
        ))
        .build(move |_| {
            Box::new(RateLimiter::new(
                cfg.clone(),
                RateLimitStatsHandle::default(),
            ))
        });
    dep.settle();
    dep
}

fn run_batch(dep: &mut Deployment, mk: impl Fn(u64) -> DataPacket) {
    let t = dep.now();
    for i in 0..BATCH {
        dep.inject(t + SimDuration::micros(i * 2), (i % 3) as usize, 0, mk(i));
    }
    dep.run_for(SimDuration::millis(30));
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("nf_pipeline");
    g.throughput(Throughput::Elements(BATCH));
    g.sample_size(10);

    g.bench_function("firewall_500pkts_established", |b| {
        b.iter_batched(
            || {
                let mut dep = firewall_dep();
                // Open one connection so the steady state is read-only.
                let t = dep.now();
                let syn = DataPacket::tcp(
                    FlowKey::tcp(
                        Ipv4Addr::new(10, 0, 0, 1),
                        4000,
                        Ipv4Addr::new(8, 8, 8, 8),
                        80,
                    ),
                    swishmem_wire::l4::TcpFlags::syn(),
                    0,
                    0,
                );
                dep.inject(t, 0, 0, syn);
                dep.run_for(SimDuration::millis(10));
                dep
            },
            |mut dep| {
                run_batch(&mut dep, |i| {
                    DataPacket::tcp(
                        FlowKey::tcp(
                            Ipv4Addr::new(10, 0, 0, 1),
                            4000,
                            Ipv4Addr::new(8, 8, 8, 8),
                            80,
                        ),
                        swishmem_wire::l4::TcpFlags::data(),
                        i as u32 + 1,
                        200,
                    )
                });
            },
            BatchSize::SmallInput,
        );
    });

    g.bench_function("ddos_500pkts_sketch_update", |b| {
        b.iter_batched(
            ddos_dep,
            |mut dep| {
                run_batch(&mut dep, |i| {
                    DataPacket::udp(
                        FlowKey::udp(
                            Ipv4Addr::new(1, 1, 1, 1),
                            (1000 + i) as u16,
                            Ipv4Addr::new(20, 0, 0, (i % 200) as u8),
                            80,
                        ),
                        0,
                        64,
                    )
                });
            },
            BatchSize::SmallInput,
        );
    });

    g.bench_function("ratelimit_500pkts_metering", |b| {
        b.iter_batched(
            ratelimit_dep,
            |mut dep| {
                run_batch(&mut dep, |i| {
                    DataPacket::udp(
                        FlowKey::udp(
                            Ipv4Addr::new(10, 0, (i % 50) as u8, 1),
                            1000,
                            Ipv4Addr::new(99, 9, 9, 9),
                            80,
                        ),
                        0,
                        200,
                    )
                });
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Micro-benchmarks: discrete-event engine throughput — events per second
//! the substrate can process, which bounds how much simulated traffic
//! every experiment can afford.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::net::Ipv4Addr;
use swishmem_simnet::{Ctx, LinkParams, Node, SimDuration, SimTime, Simulator};
use swishmem_wire::{DataPacket, FlowKey, NodeId, Packet, PacketBody};

/// Bounces packets back and forth `ttl` times.
struct Echo {
    ttl: u32,
}
impl Node for Echo {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if let PacketBody::Data(d) = pkt.body {
            if d.flow_seq < self.ttl {
                let mut d2 = d;
                d2.flow_seq += 1;
                ctx.send(pkt.src, PacketBody::Data(d2));
            }
        }
    }
}

fn pkt() -> Packet {
    Packet::data(
        NodeId(0),
        NodeId(1),
        DataPacket::udp(
            FlowKey::udp(Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 0, 0, 2), 2),
            0,
            64,
        ),
    )
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("simnet");
    const EVENTS: u64 = 10_000;
    g.throughput(Throughput::Elements(EVENTS));
    g.bench_function("ping_pong_10k_events", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulator::new(1);
                sim.add_node(NodeId(0), Box::new(Echo { ttl: EVENTS as u32 }));
                sim.add_node(NodeId(1), Box::new(Echo { ttl: EVENTS as u32 }));
                sim.topology_mut()
                    .connect(NodeId(0), NodeId(1), LinkParams::datacenter());
                sim.inject(SimTime::ZERO, pkt());
                sim
            },
            |mut sim| {
                sim.run_until_quiescent(SimTime(10_000_000_000));
                assert!(sim.stats().delivered_total().packets >= EVENTS);
            },
            BatchSize::SmallInput,
        );
    });

    g.bench_function("lossy_jittered_10k_events", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulator::new(7);
                sim.add_node(NodeId(0), Box::new(Echo { ttl: u32::MAX }));
                sim.add_node(NodeId(1), Box::new(Echo { ttl: u32::MAX }));
                sim.topology_mut().connect(
                    NodeId(0),
                    NodeId(1),
                    LinkParams::lossy(0.05).with_jitter(SimDuration::micros(3)),
                );
                // Loss kills the ping-pong; sustain with fresh injections.
                for i in 0..EVENTS / 4 {
                    sim.inject(SimTime(i * 1000), pkt());
                }
                sim
            },
            |mut sim| {
                sim.run_until_quiescent(SimTime(10_000_000_000));
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Micro-benchmarks: wire codec costs (encode/decode of data packets and
//! protocol messages). These bound the simulator's fidelity/throughput
//! and correspond to parser/deparser work on a real switch.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::net::Ipv4Addr;
use swishmem_wire::cursor::{Reader, Writer};
use swishmem_wire::l4::TcpFlags;
use swishmem_wire::swish::{SyncEntry, SyncUpdate, TraceId, WriteOp, WriteRequest};
use swishmem_wire::{DataPacket, FlowKey, NodeId, Packet, SwishMsg};

fn data_packet() -> Packet {
    Packet::data(
        NodeId(1),
        NodeId(2),
        DataPacket::tcp(
            FlowKey::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                4000,
                Ipv4Addr::new(10, 0, 0, 2),
                80,
            ),
            TcpFlags::syn(),
            7,
            256,
        ),
    )
}

fn sync_packet(entries: usize) -> Packet {
    Packet::swish(
        NodeId(0),
        NodeId(1),
        SwishMsg::Sync(SyncUpdate {
            reg: 3,
            origin: NodeId(0),
            trace: TraceId::new(NodeId(0), 1),
            entries: (0..entries as u32)
                .map(|k| SyncEntry {
                    key: k,
                    slot: 0,
                    version: 100 + u64::from(k),
                    value: k.into(),
                })
                .collect(),
        }),
    )
}

fn bench(c: &mut Criterion) {
    let dp = data_packet();
    c.bench_function("wire/data_packet_encode", |b| {
        b.iter(|| black_box(dp.to_bytes()));
    });
    let bytes = dp.to_bytes();
    c.bench_function("wire/data_packet_decode", |b| {
        b.iter(|| Packet::from_bytes(black_box(&bytes)).unwrap());
    });

    let wr = SwishMsg::Write(WriteRequest {
        write_id: 42,
        writer: NodeId(1),
        epoch: 9,
        reg: 2,
        key: 777,
        seq: 5,
        op: WriteOp::Set(0xdead_beef),
        trace: TraceId::new(NodeId(1), 42),
    });
    c.bench_function("wire/write_request_encode", |b| {
        b.iter(|| {
            let mut w = Writer::with_capacity(64);
            black_box(&wr).encode(&mut w);
            black_box(w.finish());
        });
    });

    for n in [16usize, 128] {
        let sp = sync_packet(n);
        c.bench_function(&format!("wire/sync_update_{n}_encode"), |b| {
            b.iter(|| black_box(sp.to_bytes()));
        });
        let sb = sp.to_bytes();
        c.bench_function(&format!("wire/sync_update_{n}_decode"), |b| {
            b.iter(|| Packet::from_bytes(black_box(&sb)).unwrap());
        });
    }

    c.bench_function("wire/flow_hash64", |b| {
        let k = FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            4000,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        );
        b.iter(|| black_box(k).hash64());
    });

    let mut w = Writer::new();
    wr.encode(&mut w);
    let raw = w.finish();
    c.bench_function("wire/write_request_decode", |b| {
        b.iter(|| {
            let mut r = Reader::new(black_box(&raw));
            SwishMsg::decode(&mut r).unwrap()
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Scenario-pack gates: all five packs pass clean, and a sabotaged feed
//! trips the replay oracle (the negative test proving the gate is live).

use swishmem_replay::scenario::{run_pack, PackConfig, PackKind, Sabotage};

const SEED: u64 = 42;

#[test]
fn all_packs_pass_clean() {
    for kind in PackKind::ALL {
        let report = run_pack(&PackConfig::new(kind, SEED, true));
        assert!(
            report.pass,
            "pack {} failed: {:?}",
            report.name, report.violations
        );
        assert!(report.records > 0, "pack {} replayed nothing", report.name);
    }
}

#[test]
fn packs_are_deterministic() {
    for kind in [PackKind::FlashCrowd, PackKind::NatChurn] {
        let a = run_pack(&PackConfig::new(kind, SEED, true));
        let b = run_pack(&PackConfig::new(kind, SEED, true));
        assert_eq!(a.pass, b.pass);
        assert_eq!(a.records, b.records);
        assert_eq!(a.measures, b.measures, "pack {} not deterministic", a.name);
    }
}

#[test]
fn sabotaged_duplicate_trips_the_replay_guard() {
    let cfg = PackConfig {
        sabotage: Some(Sabotage::DuplicateFlowRecord),
        ..PackConfig::new(PackKind::FlashCrowd, SEED, true)
    };
    let report = run_pack(&cfg);
    assert!(!report.pass, "sabotage must fail the pack");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.contains("replay-guard") && v.contains("duplicate")),
        "expected a replay-guard duplicate violation, got {:?}",
        report.violations
    );
}

#[test]
fn sabotaged_regression_trips_the_replay_guard() {
    let cfg = PackConfig {
        sabotage: Some(Sabotage::RegressFlowSeq),
        ..PackConfig::new(PackKind::ScanStorm, SEED, true)
    };
    let report = run_pack(&cfg);
    assert!(!report.pass, "sabotage must fail the pack");
    assert!(
        report.violations.iter().any(|v| v.contains("replay-guard")),
        "expected a replay-guard violation, got {:?}",
        report.violations
    );
}

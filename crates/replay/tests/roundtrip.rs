//! Trace round-trip gates (ISSUE 10 satellite): binary write→read
//! identity at one million records, text↔binary conversion equivalence,
//! and typed rejection of truncated or corrupt traces. These run as an
//! integration suite so `scripts/verify.sh` can invoke them by name.

use swishmem_replay::{
    from_swtrace_bytes, records_from_text, records_to_text, to_swtrace_bytes, FormatError,
    SynthConfig, TraceMeta, TraceReader, TraceRecord, TraceWriter,
};

const HEADER_LEN: usize = swishmem_replay::format::HEADER_LEN;
const RECORD_BYTES: usize = swishmem_replay::format::RECORD_BYTES;

/// A deterministic synthetic record stream: strictly advancing clock,
/// varied flows, every field exercised.
fn make_records(n: u64) -> Vec<TraceRecord> {
    (0..n)
        .map(|i| TraceRecord {
            time_ns: 1_000 + i * 3,
            src_ip: 0x0a00_0000 | ((i % 5_000) as u32 + 1),
            dst_ip: 0x1400_0000 | ((i % 97) as u32 + 1),
            src_port: 1024 + (i % 60_000) as u16,
            dst_port: if i % 2 == 0 { 80 } else { 9000 },
            ingress: (i % 7) as u16,
            proto: if i % 3 == 0 { 17 } else { 6 },
            tcp_flags: (i % 4) as u8 * 2,
            flow_seq: (i % 64) as u32,
            payload_len: 64 + (i % 1400) as u16,
        })
        .collect()
}

#[test]
fn million_record_write_read_identity() {
    let n: u64 = 1_000_000;
    let records = make_records(n);
    let meta = TraceMeta::new(7, 1234, "roundtrip-1m");
    let bytes = to_swtrace_bytes(&records, meta).unwrap();
    assert_eq!(bytes.len(), HEADER_LEN + n as usize * RECORD_BYTES);

    // Stream the read back (the replay path) rather than bulk-loading,
    // and compare record-for-record so a single bit flip pins the index.
    let mut reader = TraceReader::new(std::io::Cursor::new(&bytes)).unwrap();
    assert_eq!(reader.meta().record_count, n);
    assert_eq!(reader.meta().ingress_count, 7);
    assert_eq!(reader.meta().clock_base_ns, 1_000);
    assert_eq!(reader.meta().clock_end_ns, 1_000 + (n - 1) * 3);
    let mut i = 0usize;
    while let Some(rec) = reader.next_record().unwrap() {
        assert_eq!(rec, records[i], "record {i} diverged");
        i += 1;
    }
    assert_eq!(i as u64, n);
}

#[test]
fn synthesized_trace_round_trips_through_bytes() {
    // The real producer (heavy-tail synthesizer) through the real
    // consumer: bytes -> records -> bytes must be byte-identical.
    let cfg = SynthConfig {
        flows: 5_000,
        ..SynthConfig::default()
    };
    let bytes = swishmem_replay::synth_trace_bytes(&cfg, 9);
    let (meta, records) = from_swtrace_bytes(&bytes).unwrap();
    assert!(records.len() >= cfg.flows as usize);
    let again = to_swtrace_bytes(&records, meta).unwrap();
    assert_eq!(bytes, again);
}

#[test]
fn text_and_binary_conversions_are_equivalent() {
    // Text (debug import/export) and binary must describe the same
    // schedule: binary -> text -> binary is the identity, and the text
    // parser enforces the same ordering contract the binary reader does.
    let records = make_records(2_000);
    let text = records_to_text(&records);
    let back = records_from_text(&text).unwrap();
    assert_eq!(back, records);

    // And the re-imported records still serialize to a valid trace.
    let bytes = to_swtrace_bytes(&back, TraceMeta::default()).unwrap();
    let (_, reread) = from_swtrace_bytes(&bytes).unwrap();
    assert_eq!(reread, records);
}

#[test]
fn truncated_traces_rejected_with_typed_errors() {
    let records = make_records(50);
    let bytes = to_swtrace_bytes(&records, TraceMeta::default()).unwrap();

    // Ends inside the superblock.
    let e = from_swtrace_bytes(&bytes[..40]).unwrap_err();
    assert!(matches!(
        e.format_err(),
        Some(FormatError::TruncatedHeader { got: 40 })
    ));

    // Ends mid-record.
    let cut = &bytes[..HEADER_LEN + 3 * RECORD_BYTES + 1];
    let e = from_swtrace_bytes(cut).unwrap_err();
    assert!(matches!(
        e.format_err(),
        Some(FormatError::TruncatedRecord { index: 3 })
    ));

    // Ends on a record boundary but short of the declared count.
    let cut = &bytes[..HEADER_LEN + 10 * RECORD_BYTES];
    let e = from_swtrace_bytes(cut).unwrap_err();
    assert!(matches!(
        e.format_err(),
        Some(FormatError::CountMismatch {
            declared: 50,
            actual: 10
        })
    ));
}

#[test]
fn corrupt_superblocks_rejected_with_typed_errors() {
    let bytes = to_swtrace_bytes(&make_records(4), TraceMeta::new(2, 8, "corrupt")).unwrap();

    let flip = |idx: usize| {
        let mut b = bytes.clone();
        b[idx] ^= 0xff;
        b
    };

    assert!(matches!(
        from_swtrace_bytes(&flip(0)).unwrap_err().format_err(),
        Some(FormatError::BadMagic { .. })
    ));
    assert!(matches!(
        from_swtrace_bytes(&flip(4)).unwrap_err().format_err(),
        Some(FormatError::UnsupportedVersion { .. })
    ));
    assert!(matches!(
        from_swtrace_bytes(&flip(5)).unwrap_err().format_err(),
        Some(FormatError::BadHeaderLen { .. })
    ));
    assert!(matches!(
        from_swtrace_bytes(&flip(8)).unwrap_err().format_err(),
        Some(FormatError::BadRecordBytes { .. })
    ));
    // Any flip in the checksummed payload (record count, seed, clock
    // bounds...) surfaces as a checksum mismatch before it can lie.
    for idx in [16, 24, 32, 48] {
        assert!(matches!(
            from_swtrace_bytes(&flip(idx)).unwrap_err().format_err(),
            Some(FormatError::HeaderChecksum { .. })
        ));
    }
    // A flip in a reserved region also perturbs the checksum.
    assert!(from_swtrace_bytes(&flip(100)).is_err());
}

#[test]
fn corrupt_record_bodies_rejected_with_typed_errors() {
    let records = make_records(20);
    let bytes = to_swtrace_bytes(&records, TraceMeta::default()).unwrap();

    // Rewind record 10's timestamp below record 9's.
    let mut regressed = bytes.clone();
    let off = HEADER_LEN + 10 * RECORD_BYTES;
    regressed[off..off + 8].copy_from_slice(&5u64.to_le_bytes());
    let e = from_swtrace_bytes(&regressed).unwrap_err();
    assert!(matches!(
        e.format_err(),
        Some(FormatError::TimeRegression {
            index: 10,
            got: 5,
            ..
        })
    ));

    // Overwrite record 6 with a copy of record 5.
    let mut duped = bytes.clone();
    let (src, dst) = (HEADER_LEN + 5 * RECORD_BYTES, HEADER_LEN + 6 * RECORD_BYTES);
    let rec5: Vec<u8> = duped[src..src + RECORD_BYTES].to_vec();
    duped[dst..dst + RECORD_BYTES].copy_from_slice(&rec5);
    let e = from_swtrace_bytes(&duped).unwrap_err();
    assert!(matches!(
        e.format_err(),
        Some(FormatError::DuplicateRecord { index: 6 })
    ));

    // Dirty a reserved record tail.
    let mut dirty = bytes;
    dirty[HEADER_LEN + 2 * RECORD_BYTES + 31] = 1;
    let e = from_swtrace_bytes(&dirty).unwrap_err();
    assert!(matches!(e.format_err(), Some(FormatError::ReservedNonZero)));
}

#[test]
fn streaming_writer_matches_bulk_writer() {
    // TraceWriter over a cursor (the capture/synth path) and
    // to_swtrace_bytes (the in-memory path) must emit identical bytes.
    let records = make_records(500);
    let meta = TraceMeta::new(3, 77, "stream-vs-bulk");
    let bulk = to_swtrace_bytes(&records, meta).unwrap();

    let mut w = TraceWriter::new(std::io::Cursor::new(Vec::new()), meta).unwrap();
    for &r in &records {
        w.push(r).unwrap();
    }
    let (cursor, final_meta) = w.finish().unwrap();
    assert_eq!(cursor.into_inner(), bulk);
    assert_eq!(final_meta.record_count, 500);
}

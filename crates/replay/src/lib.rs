//! Workload capture + replay lab.
//!
//! The other crates *generate* workloads; this one makes workloads
//! **artifacts**: a compact binary flow-trace format ([`format`]), a
//! heavy-tail synthesizer that writes millions of flows without holding
//! them in memory ([`synth`]), a zero-allocation ring-buffer ingest path
//! ([`ring`]), a deterministic replay engine that streams a trace
//! through a [`swishmem::Deployment`] at a controlled speed-up
//! ([`replay`]), and oracle-armed scenario packs — flash crowd, diurnal
//! shift, scan storm, carpet-bomb DDoS, NAT churn ([`scenario`]).
//!
//! The invariant the whole crate is built around: **a trace plus a seed
//! is a run**. Replaying the same `.swtrace` through the same deployment
//! seed must produce an identical state digest, sequential or sharded —
//! that is what makes a captured incident a regression test.

#![warn(missing_docs)]

pub mod capture;
pub mod format;
pub mod replay;
pub mod ring;
pub mod scenario;
pub mod synth;

pub use capture::{capture_deployment_trace, captured_to_records};
pub use format::{
    from_swtrace_bytes, to_swtrace_bytes, FormatError, TraceError, TraceMeta, TraceReader,
    TraceRecord, TraceWriter,
};
pub use replay::{replay_digest, replay_records, replay_trace, ReplayConfig, ReplayStats};
pub use ring::FlowRing;
pub use scenario::{run_pack, PackConfig, PackKind, PackReport, Sabotage};
pub use synth::{synth_to_writer, synth_trace_bytes, SynthConfig};

/// Convert text-format trace lines (the debug import path from
/// `swishmem_nf::workload::tracefile`) into binary records.
pub fn records_from_text(
    text: &str,
) -> Result<Vec<TraceRecord>, swishmem_nf::workload::TraceParseError> {
    let pkts = swishmem_nf::workload::from_text(text)?;
    Ok(pkts.iter().map(TraceRecord::from_scheduled).collect())
}

/// Convert binary records into text-format trace lines (debug export).
pub fn records_to_text(records: &[TraceRecord]) -> String {
    let pkts: Vec<_> = records.iter().map(|r| r.to_scheduled()).collect();
    swishmem_nf::workload::to_text(&pkts)
}

//! CAIDA-style heavy-tail trace synthesis at millions of flows.
//!
//! The generator streams time-ordered records straight into a
//! [`TraceWriter`] without materializing the trace: flow arrivals are a
//! Poisson process, per-flow sizes are Pareto-tailed
//! (`n = ⌈u^(-1/α)⌉`, capped), server popularity is Zipf — the
//! mice-and-elephants mix measured on real backbone links. Memory is
//! bounded by the number of *concurrently active* flows (a calendar
//! heap of next-packet events), not by the trace length, so a 1M-flow
//! trace synthesizes in a few tens of megabytes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{Seek, Write};
use std::net::Ipv4Addr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swishmem_nf::workload::Zipf;
use swishmem_wire::l4::TcpFlags;

use crate::format::{TraceError, TraceMeta, TraceRecord, TraceWriter};

/// Heavy-tail synthesis parameters.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Flows to synthesize.
    pub flows: u64,
    /// Distinct client addresses (sources).
    pub clients: usize,
    /// Distinct server addresses (destinations).
    pub servers: usize,
    /// Zipf exponent for server popularity (≈1 is web-like).
    pub server_alpha: f64,
    /// Pareto tail exponent for flow sizes; smaller ⇒ heavier
    /// elephants. Must be > 0.
    pub size_alpha: f64,
    /// Per-flow packet cap (keeps the elephant tail finite).
    pub max_packets: u32,
    /// Nanoseconds between packets of one flow.
    pub pkt_gap: u64,
    /// Window (ns) over which flow arrivals are spread.
    pub duration: u64,
    /// Ingress slots to spread flows across (by flow hash).
    pub ingress: u32,
    /// TCP flows (SYN/data/FIN flags) vs. plain UDP.
    pub tcp: bool,
    /// Base timestamp of the first possible arrival.
    pub start: u64,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig {
            flows: 10_000,
            clients: 256,
            servers: 64,
            server_alpha: 1.1,
            size_alpha: 1.3,
            max_packets: 64,
            pkt_gap: 2_000,
            duration: 50_000_000,
            ingress: 4,
            tcp: true,
            start: 1_000,
        }
    }
}

/// An active flow's pending next packet in the calendar heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct FlowEvent {
    time: u64,
    /// Spawn order; makes equal-time ordering deterministic.
    order: u64,
    client: u32,
    server: u32,
    src_port: u16,
    sent: u32,
    total: u32,
}

/// Stream a synthesized trace into `writer`. Returns the record count.
///
/// The caller owns `finish()`; that keeps synthesis composable with
/// scenario-pack transforms that append extra segments.
pub fn synth_to_writer<W: Write + Seek>(
    cfg: &SynthConfig,
    seed: u64,
    writer: &mut TraceWriter<W>,
) -> Result<u64, TraceError> {
    assert!(cfg.flows > 0, "need at least one flow");
    assert!(cfg.size_alpha > 0.0, "size_alpha must be positive");
    assert!(cfg.ingress > 0, "need at least one ingress");
    let mut rng = StdRng::seed_from_u64(seed);
    let popularity = Zipf::new(cfg.servers.max(1), cfg.server_alpha);
    // Poisson arrivals: exponential inter-arrival gaps at the rate that
    // lands `flows` arrivals in `duration` on average.
    let mean_gap = cfg.duration as f64 / cfg.flows as f64;

    let mut heap: BinaryHeap<Reverse<FlowEvent>> = BinaryHeap::new();
    let mut next_arrival = cfg.start;
    let mut spawned: u64 = 0;
    let mut written: u64 = 0;

    loop {
        let spawn_next = spawned < cfg.flows
            && heap
                .peek()
                .map(|Reverse(ev)| next_arrival <= ev.time)
                .unwrap_or(true);
        if spawn_next {
            let server = popularity.sample(&mut rng) as u32;
            // Client round-robin + port per block: the (client, port)
            // pair is unique for the first clients×60000 flows, so
            // 5-tuples never collide at the scales we synthesize.
            let clients = cfg.clients.max(1) as u64;
            let client = (spawned % clients) as u32;
            let src_port = 1024 + ((spawned / clients) % 60_000) as u16;
            let total = pareto_packets(&mut rng, cfg.size_alpha, cfg.max_packets);
            heap.push(Reverse(FlowEvent {
                time: next_arrival,
                order: spawned,
                client,
                server,
                src_port,
                sent: 0,
                total,
            }));
            spawned += 1;
            let u: f64 = rng.gen::<f64>().max(1e-12);
            next_arrival += ((-u.ln()) * mean_gap).ceil().max(1.0) as u64;
            continue;
        }
        let Some(Reverse(mut ev)) = heap.pop() else {
            break;
        };
        writer.push(event_record(cfg, &ev))?;
        written += 1;
        ev.sent += 1;
        if ev.sent < ev.total {
            ev.time += cfg.pkt_gap;
            heap.push(Reverse(ev));
        }
    }
    Ok(written)
}

/// One packet of flow `ev` as a trace record.
fn event_record(cfg: &SynthConfig, ev: &FlowEvent) -> TraceRecord {
    let flags = if !cfg.tcp {
        0
    } else if ev.sent == 0 {
        TcpFlags::syn().raw()
    } else if ev.sent + 1 == ev.total {
        TcpFlags::fin().raw()
    } else {
        TcpFlags::data().raw()
    };
    let mut rec = TraceRecord {
        time_ns: ev.time,
        src_ip: client_ip(ev.client),
        dst_ip: server_ip(ev.server),
        src_port: ev.src_port,
        dst_port: if cfg.tcp { 80 } else { 9000 },
        ingress: 0,
        proto: if cfg.tcp { 6 } else { 17 },
        tcp_flags: flags,
        flow_seq: ev.sent,
        payload_len: if ev.sent == 0 { 64 } else { 512 },
    };
    rec.ingress = (rec.flow_hash() % u64::from(cfg.ingress)) as u16;
    rec
}

/// Pareto-tailed per-flow packet count: `⌊u^(-1/α)⌋` capped at `cap`
/// (floor keeps the mass at 1 — most flows are single-packet mice).
fn pareto_packets<R: Rng>(rng: &mut R, alpha: f64, cap: u32) -> u32 {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    let n = u.powf(-1.0 / alpha).floor();
    (n as u32).clamp(1, cap.max(1))
}

/// Client address `10.c.x.y` from a client index.
fn client_ip(idx: u32) -> u32 {
    u32::from(Ipv4Addr::new(10, 0, 0, 0)) + idx + 1
}

/// Server address `20.s.x.y` from a server index.
fn server_ip(idx: u32) -> u32 {
    u32::from(Ipv4Addr::new(20, 0, 0, 0)) + idx + 1
}

/// Synthesize a complete in-memory `.swtrace` byte blob (tests, packs,
/// bench scenarios; big traces should stream to a file instead).
pub fn synth_trace_bytes(cfg: &SynthConfig, seed: u64) -> Vec<u8> {
    let meta = TraceMeta {
        flow_hint: cfg.flows,
        ..TraceMeta::new(cfg.ingress, seed, "synth")
    };
    let mut w = TraceWriter::new(std::io::Cursor::new(Vec::new()), meta)
        .expect("in-memory writer cannot fail");
    synth_to_writer(cfg, seed, &mut w).expect("in-memory synthesis cannot fail");
    let (cursor, _) = w.finish().expect("in-memory finish cannot fail");
    cursor.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::from_swtrace_bytes;

    #[test]
    fn synth_is_time_ordered_and_deterministic() {
        let cfg = SynthConfig {
            flows: 500,
            ..SynthConfig::default()
        };
        let a = synth_trace_bytes(&cfg, 7);
        let b = synth_trace_bytes(&cfg, 7);
        assert_eq!(a, b, "same seed must produce identical bytes");
        let c = synth_trace_bytes(&cfg, 8);
        assert_ne!(a, c, "different seed must differ");

        let (meta, records) = from_swtrace_bytes(&a).unwrap();
        assert!(meta.record_count >= 500, "every flow has ≥1 packet");
        assert_eq!(meta.record_count, records.len() as u64);
        for w in records.windows(2) {
            assert!(w[0].time_ns <= w[1].time_ns, "must be time-sorted");
        }
        // SYN count equals flow count for a TCP trace.
        let syns = records
            .iter()
            .filter(|r| r.tcp_flags == TcpFlags::syn().raw())
            .count() as u64;
        assert_eq!(syns, 500);
    }

    #[test]
    fn heavy_tail_has_mice_and_elephants() {
        let cfg = SynthConfig {
            flows: 2_000,
            size_alpha: 1.1,
            max_packets: 256,
            ..SynthConfig::default()
        };
        let (_, records) = from_swtrace_bytes(&synth_trace_bytes(&cfg, 3)).unwrap();
        let mut sizes = std::collections::HashMap::new();
        for r in &records {
            let e = sizes
                .entry((r.src_ip, r.src_port, r.dst_ip))
                .or_insert(0u32);
            *e = (*e).max(r.flow_seq + 1);
        }
        let mice = sizes.values().filter(|&&n| n == 1).count();
        let elephants = sizes.values().filter(|&&n| n >= 50).count();
        assert!(
            mice > sizes.len() / 2,
            "most flows should be single-packet mice"
        );
        assert!(elephants > 0, "the tail should hold some elephants");
    }

    #[test]
    fn ingress_spread_uses_all_slots() {
        let cfg = SynthConfig {
            flows: 1_000,
            ingress: 4,
            ..SynthConfig::default()
        };
        let (_, records) = from_swtrace_bytes(&synth_trace_bytes(&cfg, 11)).unwrap();
        let mut seen = [false; 4];
        for r in &records {
            assert!(r.ingress < 4);
            seen[usize::from(r.ingress)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all ingress slots should carry flows"
        );
    }
}

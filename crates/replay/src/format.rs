//! The `.swtrace` binary flow-trace format: a fixed 128-byte superblock
//! followed by fixed-width 32-byte packed records, all little-endian —
//! the PSHM superblock/slot discipline (SNIPPETS.md 2–3) applied to
//! packet schedules instead of shared-memory rings.
//!
//! Compared to the text format in `swishmem_nf::workload::tracefile`
//! (kept as the debug import/export path), `.swtrace` is 5–10× denser,
//! O(1) seekable, and cheap enough to stream at millions of records: a
//! record parses with fixed-offset loads, no allocation, no UTF-8.
//!
//! ## Superblock (128 bytes)
//!
//! | offset | size | field | meaning |
//! |---:|---:|---|---|
//! | 0 | 4 | magic | `"SWTR"` |
//! | 4 | 1 | version | format version (=1) |
//! | 5 | 1 | header_len | superblock size (=128) |
//! | 6 | 2 | flags | reserved, must be 0 |
//! | 8 | 4 | record_bytes | bytes per record (=32) |
//! | 12 | 4 | ingress_count | ingress slots the trace targets (0 = unknown) |
//! | 16 | 8 | record_count | number of records that follow |
//! | 24 | 8 | seed | generator/deployment seed the trace came from |
//! | 32 | 8 | clock_base_ns | timestamp of the first record |
//! | 40 | 8 | clock_end_ns | timestamp of the last record |
//! | 48 | 8 | flow_hint | approximate distinct flows (0 = unknown) |
//! | 56 | 8 | source_hash | FNV-1a of the free-form source string |
//! | 64 | 8 | checksum | FNV-1a over the other 120 header bytes |
//! | 72 | 56 | reserved | must be 0 |
//!
//! ## Record (32 bytes)
//!
//! `time_ns u64 · src_ip u32 · dst_ip u32 · src_port u16 · dst_port u16
//! · ingress u16 · proto u8 · tcp_flags u8 · flow_seq u32 ·
//! payload_len u16 · reserved u16`
//!
//! Records must be time-sorted (non-decreasing) and free of exact
//! duplicates at equal timestamps; both the writer and the reader
//! enforce this with typed errors, so a corrupt or hand-edited trace is
//! rejected before it can perturb a deterministic replay.

use std::fmt;
use std::io::{Read, Seek, SeekFrom, Write};
use std::net::Ipv4Addr;
use swishmem_nf::workload::ScheduledPacket;
use swishmem_simnet::SimTime;
use swishmem_wire::l4::TcpFlags;
use swishmem_wire::{DataPacket, FlowKey};

/// `"SWTR"`.
pub const MAGIC: [u8; 4] = *b"SWTR";
/// Current format version.
pub const VERSION: u8 = 1;
/// Superblock size in bytes.
pub const HEADER_LEN: usize = 128;
/// Record size in bytes.
pub const RECORD_BYTES: usize = 32;

/// FNV-1a over a byte slice (the header checksum and source-hash
/// primitive; no external hash crates in the offline build).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A structural problem with a trace (typed so tests and tools can match
/// on the exact failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// The first four bytes were not `"SWTR"`.
    BadMagic {
        /// What was found instead.
        got: [u8; 4],
    },
    /// A version this reader does not understand.
    UnsupportedVersion {
        /// The declared version.
        got: u8,
    },
    /// The declared header length is not 128.
    BadHeaderLen {
        /// The declared length.
        got: u8,
    },
    /// The declared record size is not 32.
    BadRecordBytes {
        /// The declared size.
        got: u32,
    },
    /// The stream ended inside the superblock.
    TruncatedHeader {
        /// Bytes actually present.
        got: usize,
    },
    /// The stream ended inside record `index`.
    TruncatedRecord {
        /// Zero-based index of the incomplete record.
        index: u64,
    },
    /// Fewer records than the superblock declared.
    CountMismatch {
        /// `record_count` from the superblock.
        declared: u64,
        /// Records actually present.
        actual: u64,
    },
    /// The header checksum did not match its contents.
    HeaderChecksum {
        /// Checksum stored in the superblock.
        declared: u64,
        /// Checksum computed over the header bytes.
        computed: u64,
    },
    /// A reserved header or record field was non-zero.
    ReservedNonZero,
    /// Record `index` moved backwards in time.
    TimeRegression {
        /// Zero-based index of the offending record.
        index: u64,
        /// Timestamp of the previous record.
        prev: u64,
        /// The smaller timestamp that followed it.
        got: u64,
    },
    /// Record `index` is byte-identical to its predecessor (same
    /// timestamp, same flow, same sequence — a duplicated line).
    DuplicateRecord {
        /// Zero-based index of the duplicate.
        index: u64,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::BadMagic { got } => write!(f, "bad magic {got:?} (want \"SWTR\")"),
            FormatError::UnsupportedVersion { got } => write!(f, "unsupported version {got}"),
            FormatError::BadHeaderLen { got } => write!(f, "bad header length {got} (want 128)"),
            FormatError::BadRecordBytes { got } => write!(f, "bad record size {got} (want 32)"),
            FormatError::TruncatedHeader { got } => {
                write!(f, "truncated superblock ({got} of {HEADER_LEN} bytes)")
            }
            FormatError::TruncatedRecord { index } => {
                write!(f, "stream ended inside record {index}")
            }
            FormatError::CountMismatch { declared, actual } => {
                write!(f, "superblock declares {declared} records, found {actual}")
            }
            FormatError::HeaderChecksum { declared, computed } => {
                write!(
                    f,
                    "header checksum mismatch: stored {declared:#018x}, computed {computed:#018x}"
                )
            }
            FormatError::ReservedNonZero => write!(f, "reserved field non-zero"),
            FormatError::TimeRegression { index, prev, got } => {
                write!(f, "record {index} time regressed: {prev} -> {got}")
            }
            FormatError::DuplicateRecord { index } => {
                write!(f, "record {index} duplicates its predecessor")
            }
        }
    }
}

impl std::error::Error for FormatError {}

/// A trace operation failure: I/O or structure.
#[derive(Debug)]
pub enum TraceError {
    /// The underlying reader/writer failed.
    Io(std::io::Error),
    /// The trace itself is malformed.
    Format(FormatError),
}

impl TraceError {
    /// The structural error, if this is one (test/tool convenience).
    pub fn format_err(&self) -> Option<&FormatError> {
        match self {
            TraceError::Format(e) => Some(e),
            TraceError::Io(_) => None,
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o: {e}"),
            TraceError::Format(e) => write!(f, "trace format: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

impl From<FormatError> for TraceError {
    fn from(e: FormatError) -> TraceError {
        TraceError::Format(e)
    }
}

/// One packed flow-trace record (the in-memory form of the 32-byte wire
/// layout). Plain POD: copying it is a register move, and a preallocated
/// slab of them is the ring-ingest slot array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceRecord {
    /// Absolute injection time, nanoseconds.
    pub time_ns: u64,
    /// Source IPv4 address (native-endian u32 of the octets).
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Ingress switch index.
    pub ingress: u16,
    /// IP protocol (6 = TCP, 17 = UDP).
    pub proto: u8,
    /// Raw TCP flag bits ([`TcpFlags::raw`]).
    pub tcp_flags: u8,
    /// Per-flow packet sequence number.
    pub flow_seq: u32,
    /// Payload length in bytes.
    pub payload_len: u16,
}

impl TraceRecord {
    /// Serialize to the 32-byte wire layout.
    pub fn to_bytes(&self) -> [u8; RECORD_BYTES] {
        let mut b = [0u8; RECORD_BYTES];
        b[0..8].copy_from_slice(&self.time_ns.to_le_bytes());
        b[8..12].copy_from_slice(&self.src_ip.to_le_bytes());
        b[12..16].copy_from_slice(&self.dst_ip.to_le_bytes());
        b[16..18].copy_from_slice(&self.src_port.to_le_bytes());
        b[18..20].copy_from_slice(&self.dst_port.to_le_bytes());
        b[20..22].copy_from_slice(&self.ingress.to_le_bytes());
        b[22] = self.proto;
        b[23] = self.tcp_flags;
        b[24..28].copy_from_slice(&self.flow_seq.to_le_bytes());
        b[28..30].copy_from_slice(&self.payload_len.to_le_bytes());
        // b[30..32] reserved, zero.
        b
    }

    /// Parse from the 32-byte wire layout.
    pub fn from_bytes(b: &[u8; RECORD_BYTES]) -> TraceRecord {
        let u64le = |o: usize| u64::from_le_bytes(b[o..o + 8].try_into().expect("8 bytes"));
        let u32le = |o: usize| u32::from_le_bytes(b[o..o + 4].try_into().expect("4 bytes"));
        let u16le = |o: usize| u16::from_le_bytes(b[o..o + 2].try_into().expect("2 bytes"));
        TraceRecord {
            time_ns: u64le(0),
            src_ip: u32le(8),
            dst_ip: u32le(12),
            src_port: u16le(16),
            dst_port: u16le(18),
            ingress: u16le(20),
            proto: b[22],
            tcp_flags: b[23],
            flow_seq: u32le(24),
            payload_len: u16le(28),
        }
    }

    /// Convert a generator/capture [`ScheduledPacket`] into a record.
    pub fn from_scheduled(p: &ScheduledPacket) -> TraceRecord {
        TraceRecord {
            time_ns: p.time.nanos(),
            src_ip: u32::from(p.pkt.flow.src),
            dst_ip: u32::from(p.pkt.flow.dst),
            src_port: p.pkt.flow.src_port,
            dst_port: p.pkt.flow.dst_port,
            ingress: p.ingress as u16,
            proto: p.pkt.flow.proto,
            tcp_flags: p.pkt.tcp_flags.raw(),
            flow_seq: p.pkt.flow_seq,
            payload_len: p.pkt.payload_len,
        }
    }

    /// Convert back into a [`ScheduledPacket`] for injection.
    pub fn to_scheduled(&self) -> ScheduledPacket {
        ScheduledPacket {
            time: SimTime(self.time_ns),
            ingress: usize::from(self.ingress),
            pkt: self.to_packet(),
        }
    }

    /// The packet this record describes.
    pub fn to_packet(&self) -> DataPacket {
        DataPacket {
            flow: FlowKey {
                src: Ipv4Addr::from(self.src_ip),
                dst: Ipv4Addr::from(self.dst_ip),
                src_port: self.src_port,
                dst_port: self.dst_port,
                proto: self.proto,
            },
            tcp_flags: TcpFlags::from_raw(self.tcp_flags),
            flow_seq: self.flow_seq,
            payload_len: self.payload_len,
        }
    }

    /// A stable 64-bit key of the 5-tuple (flow identity, not packet
    /// identity): the ingress-spreading and dedup primitive.
    pub fn flow_hash(&self) -> u64 {
        let mut b = [0u8; 13];
        b[0..4].copy_from_slice(&self.src_ip.to_le_bytes());
        b[4..8].copy_from_slice(&self.dst_ip.to_le_bytes());
        b[8..10].copy_from_slice(&self.src_port.to_le_bytes());
        b[10..12].copy_from_slice(&self.dst_port.to_le_bytes());
        b[12] = self.proto;
        fnv1a(&b)
    }
}

/// Superblock metadata of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceMeta {
    /// Ingress slots the trace targets (0 = unknown).
    pub ingress_count: u32,
    /// Number of records.
    pub record_count: u64,
    /// Generator/deployment seed the trace came from.
    pub seed: u64,
    /// Timestamp of the first record.
    pub clock_base_ns: u64,
    /// Timestamp of the last record.
    pub clock_end_ns: u64,
    /// Approximate distinct flows (0 = unknown).
    pub flow_hint: u64,
    /// FNV-1a of the free-form source description.
    pub source_hash: u64,
}

impl TraceMeta {
    /// Metadata for a freshly captured/synthesized trace; counts and
    /// clock bounds are filled in by the writer at [`TraceWriter::finish`].
    pub fn new(ingress_count: u32, seed: u64, source: &str) -> TraceMeta {
        TraceMeta {
            ingress_count,
            seed,
            source_hash: fnv1a(source.as_bytes()),
            ..TraceMeta::default()
        }
    }

    fn encode(&self) -> [u8; HEADER_LEN] {
        let mut b = [0u8; HEADER_LEN];
        b[0..4].copy_from_slice(&MAGIC);
        b[4] = VERSION;
        b[5] = HEADER_LEN as u8;
        // b[6..8] flags: reserved.
        b[8..12].copy_from_slice(&(RECORD_BYTES as u32).to_le_bytes());
        b[12..16].copy_from_slice(&self.ingress_count.to_le_bytes());
        b[16..24].copy_from_slice(&self.record_count.to_le_bytes());
        b[24..32].copy_from_slice(&self.seed.to_le_bytes());
        b[32..40].copy_from_slice(&self.clock_base_ns.to_le_bytes());
        b[40..48].copy_from_slice(&self.clock_end_ns.to_le_bytes());
        b[48..56].copy_from_slice(&self.flow_hint.to_le_bytes());
        b[56..64].copy_from_slice(&self.source_hash.to_le_bytes());
        let sum = header_checksum(&b);
        b[64..72].copy_from_slice(&sum.to_le_bytes());
        b
    }

    fn decode(b: &[u8; HEADER_LEN]) -> Result<TraceMeta, FormatError> {
        if b[0..4] != MAGIC {
            return Err(FormatError::BadMagic {
                got: b[0..4].try_into().expect("4 bytes"),
            });
        }
        if b[4] != VERSION {
            return Err(FormatError::UnsupportedVersion { got: b[4] });
        }
        if usize::from(b[5]) != HEADER_LEN {
            return Err(FormatError::BadHeaderLen { got: b[5] });
        }
        let u64le = |o: usize| u64::from_le_bytes(b[o..o + 8].try_into().expect("8 bytes"));
        let u32le = |o: usize| u32::from_le_bytes(b[o..o + 4].try_into().expect("4 bytes"));
        let record_bytes = u32le(8);
        if record_bytes as usize != RECORD_BYTES {
            return Err(FormatError::BadRecordBytes { got: record_bytes });
        }
        let declared = u64le(64);
        let computed = header_checksum(b);
        if declared != computed {
            return Err(FormatError::HeaderChecksum { declared, computed });
        }
        if b[6..8].iter().any(|&x| x != 0) || b[72..].iter().any(|&x| x != 0) {
            return Err(FormatError::ReservedNonZero);
        }
        Ok(TraceMeta {
            ingress_count: u32le(12),
            record_count: u64le(16),
            seed: u64le(24),
            clock_base_ns: u64le(32),
            clock_end_ns: u64le(40),
            flow_hint: u64le(48),
            source_hash: u64le(56),
        })
    }
}

/// FNV-1a over the superblock with the checksum field (bytes 64..72)
/// treated as zero.
fn header_checksum(b: &[u8; HEADER_LEN]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (i, &byte) in b.iter().enumerate() {
        let x = if (64..72).contains(&i) { 0 } else { byte };
        h ^= u64::from(x);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Streaming `.swtrace` writer: header placeholder up front, fixed-width
/// records appended, final header (counts, clock bounds, checksum)
/// patched in by [`TraceWriter::finish`]. Ordering is enforced at `push`
/// so an unsortable stream fails fast instead of producing a trace every
/// reader would reject.
pub struct TraceWriter<W: Write + Seek> {
    sink: W,
    meta: TraceMeta,
    written: u64,
    flow_seen: u64,
    prev: Option<TraceRecord>,
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Start a trace; writes the (provisional) superblock immediately.
    pub fn new(mut sink: W, meta: TraceMeta) -> Result<TraceWriter<W>, TraceError> {
        sink.write_all(&meta.encode())?;
        Ok(TraceWriter {
            sink,
            meta,
            written: 0,
            flow_seen: 0,
            prev: None,
        })
    }

    /// Append one record; rejects time regressions and exact duplicates.
    pub fn push(&mut self, rec: TraceRecord) -> Result<(), TraceError> {
        if let Some(prev) = &self.prev {
            if rec.time_ns < prev.time_ns {
                return Err(FormatError::TimeRegression {
                    index: self.written,
                    prev: prev.time_ns,
                    got: rec.time_ns,
                }
                .into());
            }
            if rec == *prev {
                return Err(FormatError::DuplicateRecord {
                    index: self.written,
                }
                .into());
            }
        } else {
            self.meta.clock_base_ns = rec.time_ns;
        }
        if rec.flow_seq == 0 {
            self.flow_seen += 1;
        }
        self.meta.clock_end_ns = rec.time_ns;
        self.sink.write_all(&rec.to_bytes())?;
        self.written += 1;
        self.prev = Some(rec);
        Ok(())
    }

    /// Records pushed so far.
    pub fn len(&self) -> u64 {
        self.written
    }

    /// True before the first push.
    pub fn is_empty(&self) -> bool {
        self.written == 0
    }

    /// Patch the final superblock and return the sink and metadata.
    pub fn finish(mut self) -> Result<(W, TraceMeta), TraceError> {
        self.meta.record_count = self.written;
        if self.meta.flow_hint == 0 {
            self.meta.flow_hint = self.flow_seen;
        }
        self.sink.seek(SeekFrom::Start(0))?;
        self.sink.write_all(&self.meta.encode())?;
        self.sink.flush()?;
        Ok((self.sink, self.meta))
    }
}

/// Streaming `.swtrace` reader: validates the superblock eagerly and
/// each record's ordering as it is produced, so a replay can start
/// before the whole trace is in memory and still never see a malformed
/// stream.
pub struct TraceReader<R: Read> {
    src: R,
    meta: TraceMeta,
    read: u64,
    prev: Option<TraceRecord>,
}

impl<R: Read> TraceReader<R> {
    /// Open a trace, consuming and validating the superblock.
    pub fn new(mut src: R) -> Result<TraceReader<R>, TraceError> {
        let mut hdr = [0u8; HEADER_LEN];
        let got = read_full(&mut src, &mut hdr)?;
        if got < HEADER_LEN {
            return Err(FormatError::TruncatedHeader { got }.into());
        }
        let meta = TraceMeta::decode(&hdr)?;
        Ok(TraceReader {
            src,
            meta,
            read: 0,
            prev: None,
        })
    }

    /// The trace metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Records consumed so far.
    pub fn position(&self) -> u64 {
        self.read
    }

    /// The next record, `Ok(None)` at a clean end of trace.
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        if self.read == self.meta.record_count {
            return Ok(None);
        }
        let mut buf = [0u8; RECORD_BYTES];
        let got = read_full(&mut self.src, &mut buf)?;
        if got == 0 {
            return Err(FormatError::CountMismatch {
                declared: self.meta.record_count,
                actual: self.read,
            }
            .into());
        }
        if got < RECORD_BYTES {
            return Err(FormatError::TruncatedRecord { index: self.read }.into());
        }
        if buf[30..32] != [0, 0] {
            return Err(FormatError::ReservedNonZero.into());
        }
        let rec = TraceRecord::from_bytes(&buf);
        if let Some(prev) = &self.prev {
            if rec.time_ns < prev.time_ns {
                return Err(FormatError::TimeRegression {
                    index: self.read,
                    prev: prev.time_ns,
                    got: rec.time_ns,
                }
                .into());
            }
            if rec == *prev {
                return Err(FormatError::DuplicateRecord { index: self.read }.into());
            }
        }
        self.read += 1;
        self.prev = Some(rec);
        Ok(Some(rec))
    }

    /// Drain the remaining records into a vector (tests and small
    /// traces; replay streams via [`TraceReader::next_record`]).
    pub fn read_all(&mut self) -> Result<Vec<TraceRecord>, TraceError> {
        let mut out = Vec::with_capacity((self.meta.record_count - self.read) as usize);
        while let Some(rec) = self.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }
}

/// `Read::read` until the buffer is full or EOF; returns bytes read.
fn read_full<R: Read>(src: &mut R, buf: &mut [u8]) -> Result<usize, std::io::Error> {
    let mut got = 0;
    while got < buf.len() {
        let n = src.read(&mut buf[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    Ok(got)
}

/// Serialize a record slice to complete `.swtrace` bytes (convenience
/// over [`TraceWriter`] for in-memory traces).
pub fn to_swtrace_bytes(records: &[TraceRecord], meta: TraceMeta) -> Result<Vec<u8>, TraceError> {
    let mut w = TraceWriter::new(
        std::io::Cursor::new(Vec::with_capacity(
            HEADER_LEN + records.len() * RECORD_BYTES,
        )),
        meta,
    )?;
    for &r in records {
        w.push(r)?;
    }
    let (cursor, _) = w.finish()?;
    Ok(cursor.into_inner())
}

/// Parse complete `.swtrace` bytes into records (convenience over
/// [`TraceReader`]).
pub fn from_swtrace_bytes(bytes: &[u8]) -> Result<(TraceMeta, Vec<TraceRecord>), TraceError> {
    let mut r = TraceReader::new(std::io::Cursor::new(bytes))?;
    let meta = *r.meta();
    let records = r.read_all()?;
    Ok((meta, records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, seq: u32) -> TraceRecord {
        TraceRecord {
            time_ns: t,
            src_ip: u32::from(Ipv4Addr::new(10, 0, 0, 1)),
            dst_ip: u32::from(Ipv4Addr::new(20, 0, 0, 2)),
            src_port: 4000,
            dst_port: 80,
            ingress: 1,
            proto: 6,
            tcp_flags: TcpFlags::syn().raw(),
            flow_seq: seq,
            payload_len: 100,
        }
    }

    #[test]
    fn record_bytes_round_trip() {
        let r = rec(123_456, 7);
        assert_eq!(TraceRecord::from_bytes(&r.to_bytes()), r);
    }

    #[test]
    fn write_read_round_trip_with_meta() {
        let records: Vec<TraceRecord> = (0..100).map(|i| rec(i * 10, i as u32)).collect();
        let meta = TraceMeta::new(4, 42, "unit-test");
        let bytes = to_swtrace_bytes(&records, meta).unwrap();
        assert_eq!(bytes.len(), HEADER_LEN + 100 * RECORD_BYTES);
        let (m, back) = from_swtrace_bytes(&bytes).unwrap();
        assert_eq!(back, records);
        assert_eq!(m.record_count, 100);
        assert_eq!(m.ingress_count, 4);
        assert_eq!(m.seed, 42);
        assert_eq!(m.clock_base_ns, 0);
        assert_eq!(m.clock_end_ns, 990);
        assert_eq!(m.source_hash, fnv1a(b"unit-test"));
    }

    #[test]
    fn writer_rejects_regression_and_duplicate() {
        let mut w =
            TraceWriter::new(std::io::Cursor::new(Vec::new()), TraceMeta::default()).unwrap();
        w.push(rec(100, 0)).unwrap();
        let e = w.push(rec(50, 1)).unwrap_err();
        assert!(matches!(
            e.format_err(),
            Some(FormatError::TimeRegression {
                prev: 100,
                got: 50,
                ..
            })
        ));
        let e = w.push(rec(100, 0)).unwrap_err();
        assert!(matches!(
            e.format_err(),
            Some(FormatError::DuplicateRecord { index: 1 })
        ));
        // Same timestamp, different content: legal.
        w.push(rec(100, 1)).unwrap();
    }

    #[test]
    fn reader_rejects_corrupt_superblock() {
        let bytes = to_swtrace_bytes(&[rec(1, 0)], TraceMeta::default()).unwrap();

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            from_swtrace_bytes(&bad_magic).unwrap_err().format_err(),
            Some(FormatError::BadMagic { .. })
        ));

        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert!(matches!(
            from_swtrace_bytes(&bad_version).unwrap_err().format_err(),
            Some(FormatError::UnsupportedVersion { got: 99 })
        ));

        // Any payload flip under the checksum fires HeaderChecksum.
        let mut bad_count = bytes.clone();
        bad_count[16] ^= 0xff;
        assert!(matches!(
            from_swtrace_bytes(&bad_count).unwrap_err().format_err(),
            Some(FormatError::HeaderChecksum { .. })
        ));

        let short = &bytes[..HEADER_LEN - 5];
        assert!(matches!(
            from_swtrace_bytes(short).unwrap_err().format_err(),
            Some(FormatError::TruncatedHeader { got }) if *got == HEADER_LEN - 5
        ));
    }

    #[test]
    fn reader_rejects_truncated_and_short_record_streams() {
        let records: Vec<TraceRecord> = (0..10).map(|i| rec(i * 5, i as u32)).collect();
        let bytes = to_swtrace_bytes(&records, TraceMeta::default()).unwrap();

        // Cut inside record 7.
        let cut = &bytes[..HEADER_LEN + 7 * RECORD_BYTES + 11];
        assert!(matches!(
            from_swtrace_bytes(cut).unwrap_err().format_err(),
            Some(FormatError::TruncatedRecord { index: 7 })
        ));

        // Cut exactly at a record boundary: count mismatch.
        let cut = &bytes[..HEADER_LEN + 6 * RECORD_BYTES];
        assert!(matches!(
            from_swtrace_bytes(cut).unwrap_err().format_err(),
            Some(FormatError::CountMismatch {
                declared: 10,
                actual: 6
            })
        ));
    }

    #[test]
    fn scheduled_packet_conversion_is_lossless() {
        let p = ScheduledPacket {
            time: SimTime(777),
            ingress: 3,
            pkt: DataPacket {
                flow: FlowKey {
                    src: Ipv4Addr::new(1, 2, 3, 4),
                    dst: Ipv4Addr::new(5, 6, 7, 8),
                    src_port: 1234,
                    dst_port: 80,
                    proto: 6,
                },
                tcp_flags: TcpFlags::fin(),
                flow_seq: 9,
                payload_len: 512,
            },
        };
        let r = TraceRecord::from_scheduled(&p);
        let back = r.to_scheduled();
        assert_eq!(back.time, p.time);
        assert_eq!(back.ingress, p.ingress);
        assert_eq!(back.pkt, p.pkt);
    }

    #[test]
    fn flow_hash_distinguishes_flows_not_packets() {
        let a = rec(1, 0);
        let b = rec(99, 5);
        assert_eq!(a.flow_hash(), b.flow_hash());
        let mut c = rec(1, 0);
        c.dst_port = 81;
        assert_ne!(a.flow_hash(), c.flow_hash());
    }
}

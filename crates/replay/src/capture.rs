//! Turning a live run's ingress stream into a `.swtrace`.
//!
//! [`swishmem::Deployment::attach_capture`] taps every externally
//! injected packet (scheduled time + clone) without perturbing the run;
//! this module converts that tap's contents into trace records —
//! host-sourced data packets become [`TraceRecord`]s with the ingress
//! switch index resolved through the deployment's switch table, and
//! everything else (protocol traffic, control injections) is skipped.
//! Capture → `.swtrace` → replay closes the loop: any run whose inputs
//! were taped can be re-run bit-identically, transformed into a
//! scenario, or promoted to a regression trace.

use swishmem::prelude::*;
use swishmem::Deployment;
use swishmem_simnet::CaptureHandle;
use swishmem_wire::{Packet, PacketBody};

use crate::format::TraceRecord;

/// Convert captured `(time, packet)` pairs into trace records, resolving
/// ingress switch indices via `dep`. Non-data and non-switch-bound
/// packets are skipped; returns `(records, skipped)`.
pub fn captured_to_records(
    dep: &Deployment,
    captured: &[(SimTime, Packet)],
) -> (Vec<TraceRecord>, u64) {
    let mut out = Vec::with_capacity(captured.len());
    let mut skipped = 0u64;
    for (t, pkt) in captured {
        let PacketBody::Data(data) = &pkt.body else {
            skipped += 1;
            continue;
        };
        let Some(sw) = dep.switch_index(pkt.dst) else {
            skipped += 1;
            continue;
        };
        if pkt.src.0 < HOST_BASE {
            skipped += 1;
            continue;
        }
        out.push(TraceRecord {
            time_ns: t.nanos(),
            src_ip: u32::from(data.flow.src),
            dst_ip: u32::from(data.flow.dst),
            src_port: data.flow.src_port,
            dst_port: data.flow.dst_port,
            ingress: sw as u16,
            proto: data.flow.proto,
            tcp_flags: data.tcp_flags.raw(),
            flow_seq: data.flow_seq,
            payload_len: data.payload_len,
        });
    }
    (out, skipped)
}

/// Drain a capture tap into trace records (see [`captured_to_records`]).
pub fn capture_deployment_trace(dep: &Deployment, tap: &CaptureHandle) -> (Vec<TraceRecord>, u64) {
    let buf = tap.borrow();
    captured_to_records(dep, buf.records())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{to_swtrace_bytes, TraceMeta};
    use crate::replay::{replay_records, ReplayConfig};
    use crate::synth::{synth_trace_bytes, SynthConfig};
    use swishmem::{NfDecision, SharedState};

    struct CountNf;

    impl swishmem::NfApp for CountNf {
        fn process(
            &mut self,
            pkt: &DataPacket,
            _ingress: NodeId,
            st: &mut dyn SharedState,
        ) -> NfDecision {
            st.add(0, u32::from(pkt.flow.dst_port) % 32, 1);
            NfDecision::Forward {
                dst: NodeId(HOST_BASE),
                pkt: *pkt,
            }
        }
    }

    fn dep(seed: u64) -> Deployment {
        let mut dep = DeploymentBuilder::new(3)
            .hosts(2)
            .seed(seed)
            .register(RegisterSpec::ewo_counter(0, "cnt", 32))
            .build(|_| Box::new(CountNf));
        dep.settle();
        dep
    }

    #[test]
    fn capture_of_a_replay_reproduces_the_packets() {
        let trace = synth_trace_bytes(
            &SynthConfig {
                flows: 200,
                ingress: 3,
                ..SynthConfig::default()
            },
            9,
        );
        let (_, records) = crate::format::from_swtrace_bytes(&trace).unwrap();

        // Replay with the tap armed; the tap must see exactly the
        // injected stream.
        let mut d = dep(5);
        let tap = d.attach_capture(1 << 20);
        replay_records(&mut d, &records, &ReplayConfig::default());
        let (captured, skipped) = capture_deployment_trace(&d, &tap);
        assert_eq!(skipped, 0, "a replay injects only host data packets");
        assert_eq!(captured.len(), records.len());

        // The captured stream is itself a valid, replayable trace.
        let bytes = to_swtrace_bytes(&captured, TraceMeta::new(3, 5, "capture")).unwrap();
        let (meta, back) = crate::format::from_swtrace_bytes(&bytes).unwrap();
        assert_eq!(meta.record_count, captured.len() as u64);
        // Packet content round-trips (times were rebased by the replay
        // clock mapping, so compare the packet fields).
        for (c, r) in back.iter().zip(records.iter()) {
            assert_eq!(c.to_packet(), r.to_packet());
        }
    }
}

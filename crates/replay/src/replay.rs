//! The replay engine: stream a trace through a [`Deployment`] at a
//! controlled speed-up with backpressure accounting.
//!
//! Records flow `TraceReader → FlowRing → Deployment::inject` in
//! batches: the ring is refilled from the (streaming) reader, a batch is
//! drained and injected, and the simulator runs up to the batch's last
//! timestamp before the next refill. That keeps the event queue bounded
//! by `batch` regardless of trace length — a 1M-flow trace replays in
//! the memory of one ring slab — while the ring's stall counter makes
//! the producer/consumer imbalance a first-class measurement.
//!
//! Determinism contract: the injected schedule depends only on the trace
//! bytes and [`ReplayConfig`], never on wall-clock or iteration order,
//! so **trace + deployment seed ⇒ identical run digest**
//! ([`replay_digest`]).

use std::io::Read;
use std::time::Instant;

use swishmem::prelude::*;
use swishmem_wire::swish::RegId;

use crate::format::{TraceError, TraceReader, TraceRecord};
use crate::ring::FlowRing;

/// Replay pacing and ingest parameters.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Time compression: recorded gaps are divided by this factor
    /// (2.0 replays twice as fast as recorded). Must be > 0.
    pub speedup: f64,
    /// Records injected per engine step.
    pub batch: usize,
    /// Ring-buffer slots between the reader and the injector.
    pub ring_capacity: usize,
    /// Absolute time the first record lands at (trace times are
    /// rebased to this offset).
    pub start: SimTime,
}

impl Default for ReplayConfig {
    fn default() -> ReplayConfig {
        ReplayConfig {
            speedup: 1.0,
            batch: 512,
            ring_capacity: 4096,
            start: SimTime(2_000_000),
        }
    }
}

/// What a replay did: ingest accounting plus wall-clock cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayStats {
    /// Records read from the trace.
    pub records: u64,
    /// Records injected into the deployment (== `records` on success).
    pub injected: u64,
    /// Ring backpressure stalls (push found the ring full).
    pub stalls: u64,
    /// Ring occupancy high-water mark.
    pub max_occupancy: usize,
    /// Simulated time of the last injected record.
    pub last_inject: SimTime,
    /// Wall-clock nanoseconds spent reading + injecting + running.
    pub wall_ns: u64,
    /// Ingest rate: records per wall-clock second.
    pub records_per_sec: f64,
}

/// Map a trace timestamp onto the deployment clock: rebase to
/// `cfg.start` and compress by `cfg.speedup`.
fn map_time(cfg: &ReplayConfig, base: u64, t: u64, floor: SimTime) -> SimTime {
    let rel = (t.saturating_sub(base)) as f64 / cfg.speedup;
    SimTime(cfg.start.0 + rel as u64).max(floor)
}

/// Replay a `.swtrace` stream through `dep`. The deployment should be
/// settled; faults and oracles are the caller's business.
pub fn replay_trace<R: Read>(
    dep: &mut Deployment,
    reader: &mut TraceReader<R>,
    cfg: &ReplayConfig,
) -> Result<ReplayStats, TraceError> {
    assert!(cfg.speedup > 0.0, "speedup must be positive");
    let wall = Instant::now();
    let base = reader.meta().clock_base_ns;
    let n_switches = dep.switch_ids().len();
    let n_hosts = dep.host_ids().len().max(1);
    let mut ring = FlowRing::new(cfg.ring_capacity);
    let mut stats = ReplayStats::default();
    let mut pending: Option<TraceRecord> = None;
    let mut source_done = false;

    while !source_done || pending.is_some() || !ring.is_empty() {
        // Refill: push until the ring stalls or the reader runs dry.
        loop {
            let rec = match pending.take() {
                Some(r) => r,
                None => match reader.next_record()? {
                    Some(r) => {
                        stats.records += 1;
                        r
                    }
                    None => {
                        source_done = true;
                        break;
                    }
                },
            };
            if let Err(bounced) = ring.push(rec) {
                pending = Some(bounced);
                break;
            }
        }
        // Drain one batch into the deployment.
        let mut last = dep.now();
        for _ in 0..cfg.batch.max(1) {
            let Some(rec) = ring.pop() else {
                break;
            };
            let t = map_time(cfg, base, rec.time_ns, dep.now());
            let sw = usize::from(rec.ingress) % n_switches;
            let from = (rec.flow_hash() as usize) % n_hosts;
            dep.inject(t, sw, from, rec.to_packet());
            stats.injected += 1;
            last = last.max(t);
        }
        // Let the fabric chew through the batch before the next refill.
        dep.run_until(last);
        stats.last_inject = stats.last_inject.max(last);
    }

    stats.stalls = ring.stalls();
    stats.max_occupancy = ring.max_occupancy();
    stats.wall_ns = wall.elapsed().as_nanos() as u64;
    stats.records_per_sec = if stats.wall_ns == 0 {
        0.0
    } else {
        stats.injected as f64 / (stats.wall_ns as f64 / 1e9)
    };
    dep.note_ingest(stats.injected, stats.stalls);
    Ok(stats)
}

/// Replay an in-memory record slice (tests and scenario packs).
pub fn replay_records(
    dep: &mut Deployment,
    records: &[TraceRecord],
    cfg: &ReplayConfig,
) -> ReplayStats {
    let meta = crate::format::TraceMeta::default();
    let bytes = crate::format::to_swtrace_bytes(records, meta)
        .expect("in-memory records must be well-formed");
    let mut reader =
        TraceReader::new(std::io::Cursor::new(bytes)).expect("in-memory trace must parse");
    replay_trace(dep, &mut reader, cfg).expect("in-memory replay cannot fail on i/o")
}

/// A deterministic digest of a replayed deployment: FNV-1a over every
/// switch's registered state (all keys of all registers), the fabric
/// delivery counters, and the final clock. Identical traces + seeds
/// must produce identical digests — the determinism gate of E24.
pub fn replay_digest(dep: &Deployment, keys_per_register: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for i in 0..dep.switch_ids().len() {
        for spec in dep.register_specs() {
            let reg: RegId = spec.id;
            for key in 0..keys_per_register.min(u64::from(spec.keys)) {
                mix(dep.peek(i, reg, key as u32));
            }
        }
        let m = dep.metrics(i);
        mix(m.dp.nf_writes);
        mix(m.dp.nf_reads);
        mix(m.dp.chain_applies);
        mix(m.dp.ewo_writes);
    }
    let st = dep.sim.stats();
    mix(st.delivered_total().packets);
    mix(st.delivered_total().bytes);
    mix(dep.now().nanos());
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synth_trace_bytes, SynthConfig};
    use swishmem::{NfDecision, SharedState};

    /// Every packet bumps an EWO counter at `dst_port % 64`.
    struct CountNf;

    impl swishmem::NfApp for CountNf {
        fn process(
            &mut self,
            pkt: &DataPacket,
            _ingress: NodeId,
            st: &mut dyn SharedState,
        ) -> NfDecision {
            st.add(0, u32::from(pkt.flow.dst_port) % 64, 1);
            NfDecision::Forward {
                dst: NodeId(HOST_BASE),
                pkt: *pkt,
            }
        }
    }

    fn small_dep(seed: u64) -> Deployment {
        let mut dep = DeploymentBuilder::new(3)
            .hosts(2)
            .seed(seed)
            .register(RegisterSpec::ewo_counter(0, "cnt", 64))
            .build(|_| Box::new(CountNf));
        dep.settle();
        dep
    }

    fn small_trace() -> Vec<u8> {
        synth_trace_bytes(
            &SynthConfig {
                flows: 400,
                ingress: 3,
                ..SynthConfig::default()
            },
            5,
        )
    }

    #[test]
    fn same_trace_same_seed_same_digest() {
        let trace = small_trace();
        let mut digests = Vec::new();
        for _ in 0..2 {
            let mut dep = small_dep(11);
            let mut reader = TraceReader::new(std::io::Cursor::new(trace.clone())).unwrap();
            let stats = replay_trace(&mut dep, &mut reader, &ReplayConfig::default()).unwrap();
            assert_eq!(stats.injected, stats.records);
            dep.run_for(SimDuration::millis(5));
            digests.push(replay_digest(&dep, 64));
        }
        assert_eq!(digests[0], digests[1], "replay must be deterministic");
    }

    #[test]
    fn different_trace_different_digest() {
        let mut digests = Vec::new();
        for synth_seed in [5, 6] {
            let trace = synth_trace_bytes(
                &SynthConfig {
                    flows: 400,
                    ingress: 3,
                    ..SynthConfig::default()
                },
                synth_seed,
            );
            let mut dep = small_dep(11);
            let mut reader = TraceReader::new(std::io::Cursor::new(trace)).unwrap();
            replay_trace(&mut dep, &mut reader, &ReplayConfig::default()).unwrap();
            dep.run_for(SimDuration::millis(5));
            digests.push(replay_digest(&dep, 64));
        }
        assert_ne!(digests[0], digests[1]);
    }

    #[test]
    fn small_ring_stalls_but_loses_nothing() {
        let trace = small_trace();
        let mut dep = small_dep(11);
        let mut reader = TraceReader::new(std::io::Cursor::new(trace)).unwrap();
        let cfg = ReplayConfig {
            ring_capacity: 16,
            batch: 8,
            ..ReplayConfig::default()
        };
        let stats = replay_trace(&mut dep, &mut reader, &cfg).unwrap();
        assert!(stats.stalls > 0, "a tiny ring must backpressure");
        assert_eq!(
            stats.injected, stats.records,
            "backpressure must never drop records"
        );
        assert_eq!(dep.ingest_records(), stats.injected);
        assert_eq!(dep.ingest_stalls(), stats.stalls);
    }

    #[test]
    fn speedup_compresses_the_schedule() {
        let trace = small_trace();
        let mut ends = Vec::new();
        for speedup in [1.0, 4.0] {
            let mut dep = small_dep(11);
            let mut reader = TraceReader::new(std::io::Cursor::new(trace.clone())).unwrap();
            let cfg = ReplayConfig {
                speedup,
                ..ReplayConfig::default()
            };
            let stats = replay_trace(&mut dep, &mut reader, &cfg).unwrap();
            ends.push(stats.last_inject.nanos());
        }
        assert!(
            ends[1] < ends[0],
            "4x speedup must finish earlier: {ends:?}"
        );
    }
}

//! Scenario packs: named, oracle-armed workload scenarios with pass/fail
//! gates.
//!
//! Each pack composes three ingredients: a **trace transform** (a
//! synthesized heavy-tail base stream plus a scenario-specific
//! perturbation — a flash crowd surge, a diurnal locality shift, a SYN
//! scan, a carpet-bomb flood, NAT-style 5-tuple churn), a **fault
//! schedule** (link degradation, outages, switch crashes timed against
//! the perturbation window), and an **oracle gate** (the full
//! [`OracleSuite`] plus the ingress-side [`ReplayGuard`] plus a
//! pack-specific assertion about the state the workload must leave
//! behind). A pack passes only if the protocol invariants held *and*
//! the scenario's own signature is visible in the replicated state.
//!
//! Packs are deterministic: `(kind, seed, quick)` fully determines the
//! trace, the faults, and therefore the verdict. The [`Sabotage`] knob
//! corrupts the trace feed on purpose — the negative test proving the
//! oracle actually fires.

use swishmem::prelude::*;
use swishmem::{NfDecision, OracleConfig, OracleSuite, ReplayGuard, SharedState};
use swishmem_simnet::{FaultSchedule, LinkOverlay};

use crate::format::TraceRecord;
use crate::replay::{replay_records, ReplayConfig, ReplayStats};
use crate::synth::{synth_trace_bytes, SynthConfig};

/// The five scenario packs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackKind {
    /// A sudden popularity spike: one server's traffic multiplies inside
    /// a window while a fabric link degrades under the extra load.
    FlashCrowd,
    /// A locality shift: the second half of the trace moves to a
    /// disjoint server pool (day pool → night pool).
    DiurnalShift,
    /// A port scanner sweeps the server pool with SYNs mid-trace while
    /// an inter-switch link flaps.
    ScanStorm,
    /// A spoofed-source UDP flood onto one victim with degraded sync
    /// links during the bombardment.
    CarpetBomb,
    /// NAT-style churn: 5-tuples are recycled with SYN restarts while a
    /// switch crashes and recovers mid-replay.
    NatChurn,
}

impl PackKind {
    /// All packs, in canonical order.
    pub const ALL: [PackKind; 5] = [
        PackKind::FlashCrowd,
        PackKind::DiurnalShift,
        PackKind::ScanStorm,
        PackKind::CarpetBomb,
        PackKind::NatChurn,
    ];

    /// Stable name (JSON keys, CLI arguments).
    pub fn name(&self) -> &'static str {
        match self {
            PackKind::FlashCrowd => "flash_crowd",
            PackKind::DiurnalShift => "diurnal_shift",
            PackKind::ScanStorm => "scan_storm",
            PackKind::CarpetBomb => "carpet_bomb",
            PackKind::NatChurn => "nat_churn",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<PackKind> {
        PackKind::ALL.iter().copied().find(|k| k.name() == s)
    }
}

/// Deliberate trace-feed corruption for negative tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sabotage {
    /// Re-deliver a flow's last record (same `flow_seq`) later in the
    /// trace — [`ReplayGuard`] must flag a duplicate.
    DuplicateFlowRecord,
    /// Deliver a smaller `flow_seq` for a flow without a SYN restart —
    /// [`ReplayGuard`] must flag a regression.
    RegressFlowSeq,
}

/// Pack run parameters.
#[derive(Debug, Clone, Copy)]
pub struct PackConfig {
    /// Which scenario.
    pub kind: PackKind,
    /// Seed for trace synthesis and the deployment.
    pub seed: u64,
    /// Smaller trace for CI gates.
    pub quick: bool,
    /// Optional deliberate corruption (negative testing).
    pub sabotage: Option<Sabotage>,
}

impl PackConfig {
    /// A clean (un-sabotaged) pack run.
    pub fn new(kind: PackKind, seed: u64, quick: bool) -> PackConfig {
        PackConfig {
            kind,
            seed,
            quick,
            sabotage: None,
        }
    }
}

/// The verdict and evidence of one pack run.
#[derive(Debug, Clone)]
pub struct PackReport {
    /// Pack name.
    pub name: &'static str,
    /// All gates held.
    pub pass: bool,
    /// Trace records replayed.
    pub records: u64,
    /// Ring backpressure stalls during ingest.
    pub stalls: u64,
    /// Every gate failure and oracle violation, human-readable.
    pub violations: Vec<String>,
    /// Scenario-specific measurements, `(label, value)`.
    pub measures: Vec<(&'static str, f64)>,
}

/// Counter keys per register in pack deployments (low 10 bits of an
/// address map to a distinct key for every pool used here).
const KEYS: u32 = 1024;
const N_SWITCHES: usize = 3;

/// How a pack's NF keys its counter.
#[derive(Clone, Copy)]
enum PackNfMode {
    /// `reg0[dst_ip % KEYS] += 1` for every packet (server load).
    PerServer,
    /// `reg0[src_ip % KEYS] += 1` for every SYN (scan detection).
    PerSourceSyn,
    /// `reg0[0] += 1` on SYN, `reg0[1] += 1` on FIN (NAT bindings).
    SynFin,
}

struct PackNf {
    mode: PackNfMode,
}

impl swishmem::NfApp for PackNf {
    fn process(
        &mut self,
        pkt: &DataPacket,
        _ingress: NodeId,
        st: &mut dyn SharedState,
    ) -> NfDecision {
        match self.mode {
            PackNfMode::PerServer => {
                st.add(0, u32::from(pkt.flow.dst) % KEYS, 1);
            }
            PackNfMode::PerSourceSyn => {
                if pkt.flow.proto == 6 && pkt.tcp_flags.syn {
                    st.add(0, u32::from(pkt.flow.src) % KEYS, 1);
                }
            }
            PackNfMode::SynFin => {
                if pkt.flow.proto == 6 && pkt.tcp_flags.syn {
                    st.add(0, 0, 1);
                }
                if pkt.flow.proto == 6 && pkt.tcp_flags.fin {
                    st.add(0, 1, 1);
                }
            }
        }
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

/// Run one scenario pack end to end.
pub fn run_pack(cfg: &PackConfig) -> PackReport {
    let flows = if cfg.quick { 1_500 } else { 10_000 };
    let base_cfg = SynthConfig {
        flows,
        clients: 200,
        servers: 32,
        ingress: N_SWITCHES as u32,
        duration: 20_000_000,
        pkt_gap: 2_000,
        tcp: true,
        ..SynthConfig::default()
    };
    match cfg.kind {
        PackKind::FlashCrowd => flash_crowd(cfg, &base_cfg),
        PackKind::DiurnalShift => diurnal_shift(cfg, &base_cfg),
        PackKind::ScanStorm => scan_storm(cfg, &base_cfg),
        PackKind::CarpetBomb => carpet_bomb(cfg, &base_cfg),
        PackKind::NatChurn => nat_churn(cfg, &base_cfg),
    }
}

// ---------------------------------------------------------------------
// Shared harness
// ---------------------------------------------------------------------

/// One pack run's survivors: the quiesced deployment (for state gates)
/// and the ingest accounting.
struct Harness {
    dep: Deployment,
    stats: ReplayStats,
}

fn build_dep(seed: u64, mode: PackNfMode) -> Deployment {
    let mut dep = DeploymentBuilder::new(N_SWITCHES)
        .hosts(2)
        .seed(seed)
        .register(RegisterSpec::ewo_counter(0, "pack", KEYS))
        .build(move |_| Box::new(PackNf { mode }));
    dep.settle();
    dep
}

/// Replay `records` through a fresh deployment with `faults` scheduled
/// relative to the replay start, then quiesce and poll the full oracle
/// suite to completion.
fn run_armed(
    seed: u64,
    mode: PackNfMode,
    records: &[TraceRecord],
    faults: FaultSchedule,
    violations: &mut Vec<String>,
) -> Harness {
    let mut dep = build_dep(seed, mode);
    // The deployment settled past its warm-up, so the replay (and the
    // faults timed against it) start just after "now".
    let start = SimTime(dep.now().0 + 1_000_000);
    let horizon = faults.horizon();
    if !faults.is_empty() {
        dep.schedule_faults(start, &faults);
    }
    let trace_span = records
        .last()
        .map(|r| r.time_ns - records[0].time_ns)
        .unwrap_or(0);
    let quiesce = SimTime(start.0 + trace_span.max(horizon.as_nanos()) + 20_000_000);
    let mut suite = OracleSuite::attach(&mut dep, OracleConfig::new(quiesce));
    let guard = ReplayGuard::attach(&mut dep);
    let stats = replay_records(
        &mut dep,
        records,
        &ReplayConfig {
            start,
            ..ReplayConfig::default()
        },
    );
    let end = SimTime(quiesce.0 + 200_000_000);
    if let Err(v) = suite.run(&mut dep, end) {
        violations.push(format!("oracle: {v}"));
    }
    if let Some(v) = guard.borrow().violation() {
        violations.push(format!("replay-guard: {v}"));
    }
    Harness { dep, stats }
}

/// Converged fabric-wide value of `reg0[key]`: EWO G-counters merge to
/// the same total everywhere, so take the max across switches to be
/// robust against a still-syncing straggler.
fn count(dep: &Deployment, key: u32) -> u64 {
    (0..N_SWITCHES).map(|i| dep.peek(i, 0, key)).max().unwrap()
}

/// Apply sabotage: re-deliver (or regress) the trailing record of the
/// longest flow at the end of the trace. Times stay monotone, so the
/// format layer accepts the trace — only [`ReplayGuard`] can catch it.
fn apply_sabotage(records: &mut Vec<TraceRecord>, sabotage: Sabotage) {
    let victim = records
        .iter()
        .filter(|r| r.proto == 6 && r.flow_seq >= 2)
        .max_by_key(|r| r.flow_seq)
        .copied()
        .expect("pack traces always hold a multi-packet TCP flow");
    let last_t = records.last().expect("non-empty").time_ns;
    let mut evil = victim;
    evil.time_ns = last_t + 1_000;
    evil.tcp_flags = swishmem_wire::l4::TcpFlags::data().raw();
    if sabotage == Sabotage::RegressFlowSeq {
        evil.flow_seq -= 1;
    }
    records.push(evil);
}

/// Merge two time-sorted record streams into one (stable: `a` first on
/// ties, keeping equal-time ordering deterministic).
fn merge_sorted(a: Vec<TraceRecord>, b: Vec<TraceRecord>) -> Vec<TraceRecord> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (0, 0);
    while ia < a.len() && ib < b.len() {
        if a[ia].time_ns <= b[ib].time_ns {
            out.push(a[ia]);
            ia += 1;
        } else {
            out.push(b[ib]);
            ib += 1;
        }
    }
    out.extend_from_slice(&a[ia..]);
    out.extend_from_slice(&b[ib..]);
    out
}

fn base_records(cfg: &PackConfig, synth: &SynthConfig) -> Vec<TraceRecord> {
    let bytes = synth_trace_bytes(synth, cfg.seed);
    crate::format::from_swtrace_bytes(&bytes)
        .expect("synthesized traces are well-formed")
        .1
}

fn server_addr(idx: u32) -> u32 {
    u32::from(std::net::Ipv4Addr::new(20, 0, 0, 0)) + idx + 1
}

fn ingress_of(rec: &TraceRecord) -> u16 {
    (rec.flow_hash() % N_SWITCHES as u64) as u16
}

/// Switch node ids are deterministic (`0..n`), so fault schedules can
/// name them before the deployment exists.
fn switch_node(i: usize) -> NodeId {
    NodeId(i as u16)
}

fn finish(
    name: &'static str,
    h: &Harness,
    mut violations: Vec<String>,
    measures: Vec<(&'static str, f64)>,
    gates: Vec<(bool, String)>,
) -> PackReport {
    for (ok, msg) in gates {
        if !ok {
            violations.push(format!("gate: {msg}"));
        }
    }
    PackReport {
        name,
        pass: violations.is_empty(),
        records: h.stats.records,
        stalls: h.stats.stalls,
        violations,
        measures,
    }
}

// ---------------------------------------------------------------------
// The packs
// ---------------------------------------------------------------------

fn flash_crowd(cfg: &PackConfig, base_cfg: &SynthConfig) -> PackReport {
    let base = base_records(cfg, base_cfg);
    // Surge: inside the middle third, every base flow count again hits
    // the hot server (rank 0) as fresh single-SYN connections.
    let t0 = base[0].time_ns + base_cfg.duration / 3;
    let t1 = base[0].time_ns + 2 * base_cfg.duration / 3;
    let surge_n = base_cfg.flows;
    let hot = server_addr(0);
    let mut surge = Vec::with_capacity(surge_n as usize);
    for i in 0..surge_n {
        let mut rec = TraceRecord {
            time_ns: t0 + (t1 - t0) * i / surge_n.max(1),
            src_ip: u32::from(std::net::Ipv4Addr::new(30, 0, 0, 0)) + (i % 5_000) as u32 + 1,
            dst_ip: hot,
            src_port: 2_000 + (i % 30_000) as u16,
            dst_port: 80,
            ingress: 0,
            proto: 6,
            tcp_flags: swishmem_wire::l4::TcpFlags::syn().raw(),
            flow_seq: 0,
            payload_len: 64,
        };
        rec.ingress = ingress_of(&rec);
        surge.push(rec);
    }
    let mut records = merge_sorted(base, surge);
    if let Some(s) = cfg.sabotage {
        apply_sabotage(&mut records, s);
    }

    // The crowd arrives while a fabric link is degraded and lossy.
    let faults = FaultSchedule::new().degrade_for(
        switch_node(0),
        switch_node(1),
        SimDuration::nanos(base_cfg.duration / 3),
        SimDuration::nanos(base_cfg.duration / 3),
        LinkOverlay::loss(0.05),
    );

    let mut violations = Vec::new();
    let h = run_armed(
        cfg.seed,
        PackNfMode::PerServer,
        &records,
        faults,
        &mut violations,
    );
    let hot_count = count(&h.dep, hot % KEYS);
    let runner_up = (1..base_cfg.servers as u32)
        .map(|s| count(&h.dep, server_addr(s) % KEYS))
        .max()
        .unwrap_or(0);
    let gates = vec![(
        hot_count >= 2 * runner_up.max(1),
        format!("flash crowd must dominate: hot={hot_count} runner_up={runner_up}"),
    )];
    finish(
        "flash_crowd",
        &h,
        violations,
        vec![
            ("hot_server_packets", hot_count as f64),
            ("runner_up_packets", runner_up as f64),
        ],
        gates,
    )
}

fn diurnal_shift(cfg: &PackConfig, base_cfg: &SynthConfig) -> PackReport {
    let mut records = base_records(cfg, base_cfg);
    // Night shift: everything after the midpoint moves to a disjoint
    // server pool (dst += 512 lands in untouched counter keys).
    let mid = records[0].time_ns + base_cfg.duration / 2;
    for r in &mut records {
        if r.time_ns >= mid {
            r.dst_ip += 512;
        }
    }
    if let Some(s) = cfg.sabotage {
        apply_sabotage(&mut records, s);
    }
    let split = records.partition_point(|r| r.time_ns < mid);
    let (day, night) = records.split_at(split);

    let mut violations = Vec::new();
    // Phase 1: day pool only.
    let mut dep = build_dep(cfg.seed, PackNfMode::PerServer);
    let start = SimTime(dep.now().0 + 1_000_000);
    let faults = FaultSchedule::new().degrade_for(
        switch_node(0),
        switch_node(1),
        SimDuration::millis(1),
        SimDuration::millis(8),
        LinkOverlay::jitter(SimDuration::micros(50)),
    );
    dep.schedule_faults(start, &faults);
    let quiesce = SimTime(start.0 + base_cfg.duration + 40_000_000);
    let mut suite = OracleSuite::attach(&mut dep, OracleConfig::new(quiesce));
    let guard = ReplayGuard::attach(&mut dep);

    let day_total = |dep: &Deployment| -> u64 {
        (0..base_cfg.servers as u32)
            .map(|s| count(dep, server_addr(s) % KEYS))
            .sum()
    };
    let night_total = |dep: &Deployment| -> u64 {
        (0..base_cfg.servers as u32)
            .map(|s| count(dep, (server_addr(s) + 512) % KEYS))
            .sum()
    };

    let stats1 = replay_records(
        &mut dep,
        day,
        &ReplayConfig {
            start,
            ..ReplayConfig::default()
        },
    );
    // Let the EWO sync fully merge before measuring (max-across-switches
    // only equals the global total once every switch has converged).
    dep.run_for(SimDuration::millis(30));
    let (day1, night1) = (day_total(&dep), night_total(&dep));

    // Phase 2: night pool.
    let phase2_start = SimTime(dep.now().0 + 1_000_000);
    let stats2 = replay_records(
        &mut dep,
        night,
        &ReplayConfig {
            start: phase2_start,
            ..ReplayConfig::default()
        },
    );
    let end = SimTime(quiesce.0 + 200_000_000);
    if let Err(v) = suite.run(&mut dep, end) {
        violations.push(format!("oracle: {v}"));
    }
    if let Some(v) = guard.borrow().violation() {
        violations.push(format!("replay-guard: {v}"));
    }
    let (day2, night2) = (day_total(&dep), night_total(&dep));

    let stats = ReplayStats {
        records: stats1.records + stats2.records,
        injected: stats1.injected + stats2.injected,
        stalls: stats1.stalls + stats2.stalls,
        ..stats1
    };
    let h = Harness { dep, stats };
    let day_delta = day2.saturating_sub(day1);
    let gates = vec![
        (
            night1 == 0,
            format!("night pool must be silent during the day: {night1}"),
        ),
        (
            night2 > 0,
            "night pool must carry load after the shift".to_string(),
        ),
        (
            day_delta == 0,
            format!("day pool must go quiet after the shift: +{day_delta}"),
        ),
    ];
    finish(
        "diurnal_shift",
        &h,
        violations,
        vec![
            ("day_phase1", day1 as f64),
            ("night_phase1", night1 as f64),
            ("day_phase2_delta", day_delta as f64),
            ("night_phase2", night2 as f64),
        ],
        gates,
    )
}

fn scan_storm(cfg: &PackConfig, base_cfg: &SynthConfig) -> PackReport {
    let base = base_records(cfg, base_cfg);
    // The scanner sweeps every server × a port range with bare SYNs in
    // the middle third.
    let t0 = base[0].time_ns + base_cfg.duration / 3;
    let t1 = base[0].time_ns + 2 * base_cfg.duration / 3;
    let scan_n = (base_cfg.flows / 2).max(500);
    let scanner = u32::from(std::net::Ipv4Addr::new(99, 0, 3, 5));
    let mut scan = Vec::with_capacity(scan_n as usize);
    for i in 0..scan_n {
        let mut rec = TraceRecord {
            time_ns: t0 + (t1 - t0) * i / scan_n,
            src_ip: scanner,
            dst_ip: server_addr((i % base_cfg.servers as u64) as u32),
            src_port: 40_000 + (i % 20_000) as u16,
            dst_port: 1_000 + (i % 10_000) as u16,
            ingress: 0,
            proto: 6,
            tcp_flags: swishmem_wire::l4::TcpFlags::syn().raw(),
            flow_seq: 0,
            payload_len: 40,
        };
        rec.ingress = ingress_of(&rec);
        scan.push(rec);
    }
    let mut records = merge_sorted(base, scan);
    if let Some(s) = cfg.sabotage {
        apply_sabotage(&mut records, s);
    }

    // The fabric link flaps while the scan runs; counting must survive.
    let faults = FaultSchedule::new().link_outage(
        switch_node(0),
        switch_node(1),
        SimDuration::nanos(base_cfg.duration / 2),
        SimDuration::millis(3),
    );

    let mut violations = Vec::new();
    let h = run_armed(
        cfg.seed,
        PackNfMode::PerSourceSyn,
        &records,
        faults,
        &mut violations,
    );
    let scanner_count = count(&h.dep, scanner % KEYS);
    let legit_max = (0..200u32)
        .map(|c| {
            count(
                &h.dep,
                (u32::from(std::net::Ipv4Addr::new(10, 0, 0, 0)) + c + 1) % KEYS,
            )
        })
        .max()
        .unwrap_or(0);
    let gates = vec![
        (
            scanner_count >= scan_n * 9 / 10,
            format!("scanner SYNs must be counted: {scanner_count}/{scan_n}"),
        ),
        (
            scanner_count >= 5 * legit_max.max(1),
            format!("scanner must dominate legit sources: {scanner_count} vs {legit_max}"),
        ),
    ];
    finish(
        "scan_storm",
        &h,
        violations,
        vec![
            ("scanner_syns", scanner_count as f64),
            ("max_legit_syns", legit_max as f64),
        ],
        gates,
    )
}

fn carpet_bomb(cfg: &PackConfig, base_cfg: &SynthConfig) -> PackReport {
    let base = base_records(cfg, base_cfg);
    // Spoofed-source UDP flood onto the most popular server while the
    // sync links are lossy — the counting fabric must neither lose the
    // flood nor corrupt protocol state.
    let t0 = base[0].time_ns + base_cfg.duration / 4;
    let t1 = base[0].time_ns + 3 * base_cfg.duration / 4;
    let bomb_n = base_cfg.flows * 2;
    let victim = server_addr(0);
    let mut bomb = Vec::with_capacity(bomb_n as usize);
    for i in 0..bomb_n {
        let mut rec = TraceRecord {
            time_ns: t0 + (t1 - t0) * i / bomb_n,
            // Spoofed sources: a different address every packet.
            src_ip: u32::from(std::net::Ipv4Addr::new(50, 0, 0, 0)) + (i % 65_000) as u32 + 1,
            dst_ip: victim,
            src_port: 1_024 + (i % 60_000) as u16,
            dst_port: 53,
            ingress: 0,
            proto: 17,
            tcp_flags: 0,
            flow_seq: 0,
            payload_len: 512,
        };
        rec.ingress = ingress_of(&rec);
        bomb.push(rec);
    }
    let pre_victim_base = base.iter().filter(|r| r.dst_ip == victim).count() as u64;
    let mut records = merge_sorted(base, bomb);
    if let Some(s) = cfg.sabotage {
        apply_sabotage(&mut records, s);
    }

    let faults = FaultSchedule::new()
        .degrade_for(
            switch_node(0),
            switch_node(1),
            SimDuration::nanos(base_cfg.duration / 4),
            SimDuration::nanos(base_cfg.duration / 2),
            LinkOverlay::loss(0.2),
        )
        .link_outage(
            switch_node(1),
            switch_node(2),
            SimDuration::nanos(base_cfg.duration / 2),
            SimDuration::millis(2),
        );

    let mut violations = Vec::new();
    let h = run_armed(
        cfg.seed,
        PackNfMode::PerServer,
        &records,
        faults,
        &mut violations,
    );
    let victim_count = count(&h.dep, victim % KEYS);
    let gates = vec![(
        victim_count >= bomb_n,
        format!(
            "the whole flood must be counted at the ingress: \
             victim={victim_count} flood={bomb_n} base={pre_victim_base}"
        ),
    )];
    finish(
        "carpet_bomb",
        &h,
        violations,
        vec![
            ("victim_packets", victim_count as f64),
            ("flood_packets", bomb_n as f64),
        ],
        gates,
    )
}

fn nat_churn(cfg: &PackConfig, base_cfg: &SynthConfig) -> PackReport {
    let base = base_records(cfg, base_cfg);
    // Churn: the longest-running flows get their 5-tuples recycled — the
    // entire flow record sequence re-plays (fresh SYN) shifted past the
    // end of the base trace. ReplayGuard must accept the reuse (SYN
    // restarts are legal) while still policing everything else.
    let last_t = base.last().expect("non-empty").time_ns;
    let reuse_n = 50;
    let mut flows_seen: std::collections::BTreeMap<(u32, u16, u32, u16), Vec<TraceRecord>> =
        std::collections::BTreeMap::new();
    for r in &base {
        flows_seen
            .entry((r.src_ip, r.src_port, r.dst_ip, r.dst_port))
            .or_default()
            .push(*r);
    }
    let mut churn: Vec<TraceRecord> = Vec::new();
    let mut taken = 0;
    for recs in flows_seen.values() {
        if recs.len() < 3 {
            continue;
        }
        let base_t = recs[0].time_ns;
        for r in recs {
            let mut c = *r;
            c.time_ns = last_t + 10_000 + (r.time_ns - base_t);
            churn.push(c);
        }
        taken += 1;
        if taken >= reuse_n {
            break;
        }
    }
    churn.sort_by_key(|r| (r.time_ns, r.src_ip, r.src_port, r.flow_seq));
    let trace_syns = base
        .iter()
        .chain(churn.iter())
        .filter(|r| swishmem_wire::l4::TcpFlags::from_raw(r.tcp_flags).syn)
        .count() as u64;
    let mut records = merge_sorted(base, churn);
    if let Some(s) = cfg.sabotage {
        apply_sabotage(&mut records, s);
    }

    // A switch crashes and recovers mid-replay: its local counter shard
    // resets, so gates bound rather than pin the totals.
    let faults = FaultSchedule::new().crash_for(
        switch_node(2),
        SimDuration::nanos(base_cfg.duration / 2),
        SimDuration::millis(4),
    );

    let mut violations = Vec::new();
    let h = run_armed(
        cfg.seed,
        PackNfMode::SynFin,
        &records,
        faults,
        &mut violations,
    );
    let syns = count(&h.dep, 0);
    let fins = count(&h.dep, 1);
    let gates = vec![
        (
            fins > 0 && syns >= fins,
            format!("bindings must open before they close: syn={syns} fin={fins}"),
        ),
        (
            syns * 2 >= trace_syns,
            format!("crash may cost at most half the SYN count: {syns}/{trace_syns}"),
        ),
    ];
    finish(
        "nat_churn",
        &h,
        violations,
        vec![
            ("syn_count", syns as f64),
            ("fin_count", fins as f64),
            ("trace_syns", trace_syns as f64),
            ("open_bindings", syns.saturating_sub(fins) as f64),
        ],
        gates,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_names_round_trip() {
        for k in PackKind::ALL {
            assert_eq!(PackKind::parse(k.name()), Some(k));
        }
        assert_eq!(PackKind::parse("nope"), None);
    }
}

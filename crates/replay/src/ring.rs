//! Single-producer/single-consumer ring-buffer ingest.
//!
//! The replay hot loop moves records from a streaming [`crate::format::TraceReader`]
//! into a [`swishmem::Deployment`] at millions of records per run; the
//! ring decouples the two at **zero per-record allocation**: one slab of
//! `capacity` fixed-width [`TraceRecord`] slots is allocated up front
//! and records are copied in and out by value (32-byte POD moves).
//!
//! The discipline mirrors the PSHM producer/consumer slot protocol from
//! SNIPPETS.md — a bounded slot array with head/tail cursors and
//! explicit backpressure — minus the atomics: the simulator is
//! single-threaded, so the producer and consumer interleave in one
//! thread and a full ring surfaces as an `Err(record)` the caller
//! accounts as a **stall** instead of a spin.

use crate::format::TraceRecord;

/// Fixed-capacity SPSC ring of trace records with backpressure
/// accounting. All storage is preallocated at construction.
#[derive(Debug)]
pub struct FlowRing {
    slab: Box<[TraceRecord]>,
    head: usize,
    len: usize,
    produced: u64,
    consumed: u64,
    stalls: u64,
    max_occupancy: usize,
}

impl FlowRing {
    /// Allocate a ring with `capacity` slots (rounded up to 1 minimum).
    pub fn new(capacity: usize) -> FlowRing {
        let capacity = capacity.max(1);
        FlowRing {
            slab: vec![TraceRecord::default(); capacity].into_boxed_slice(),
            head: 0,
            len: 0,
            produced: 0,
            consumed: 0,
            stalls: 0,
            max_occupancy: 0,
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slab.len()
    }

    /// Records currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no records are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when a push would stall.
    pub fn is_full(&self) -> bool {
        self.len == self.slab.len()
    }

    /// Enqueue a record. On a full ring the record is handed back and
    /// the stall counter increments — the producer must drain before
    /// retrying (backpressure, never silent drop).
    pub fn push(&mut self, rec: TraceRecord) -> Result<(), TraceRecord> {
        if self.len == self.slab.len() {
            self.stalls += 1;
            return Err(rec);
        }
        let tail = (self.head + self.len) % self.slab.len();
        self.slab[tail] = rec;
        self.len += 1;
        self.produced += 1;
        if self.len > self.max_occupancy {
            self.max_occupancy = self.len;
        }
        Ok(())
    }

    /// Dequeue the oldest record, if any.
    pub fn pop(&mut self) -> Option<TraceRecord> {
        if self.len == 0 {
            return None;
        }
        let rec = self.slab[self.head];
        self.head = (self.head + 1) % self.slab.len();
        self.len -= 1;
        self.consumed += 1;
        Some(rec)
    }

    /// Total records ever enqueued.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Total records ever dequeued.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Times a push found the ring full.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// High-water mark of queued records.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64) -> TraceRecord {
        TraceRecord {
            time_ns: t,
            ..TraceRecord::default()
        }
    }

    #[test]
    fn fifo_order_and_wraparound() {
        let mut ring = FlowRing::new(4);
        for round in 0..5u64 {
            for i in 0..4 {
                ring.push(rec(round * 10 + i)).unwrap();
            }
            assert!(ring.is_full());
            for i in 0..4 {
                assert_eq!(ring.pop().unwrap().time_ns, round * 10 + i);
            }
            assert!(ring.is_empty());
        }
        assert_eq!(ring.produced(), 20);
        assert_eq!(ring.consumed(), 20);
        assert_eq!(ring.stalls(), 0);
        assert_eq!(ring.max_occupancy(), 4);
    }

    #[test]
    fn full_ring_stalls_and_returns_record() {
        let mut ring = FlowRing::new(2);
        ring.push(rec(1)).unwrap();
        ring.push(rec(2)).unwrap();
        let back = ring.push(rec(3)).unwrap_err();
        assert_eq!(back.time_ns, 3);
        assert_eq!(ring.stalls(), 1);
        // Drain one slot; the bounced record now fits.
        assert_eq!(ring.pop().unwrap().time_ns, 1);
        ring.push(back).unwrap();
        assert_eq!(ring.pop().unwrap().time_ns, 2);
        assert_eq!(ring.pop().unwrap().time_ns, 3);
    }

    #[test]
    fn zero_capacity_rounds_up() {
        let mut ring = FlowRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(rec(1)).unwrap();
        assert!(ring.push(rec(2)).is_err());
    }
}

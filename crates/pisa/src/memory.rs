//! Data-plane memory accounting.
//!
//! PISA switches expose on the order of 10 MB of SRAM to the pipeline
//! (paper §1, §2). Every register array, table, counter and meter in this
//! model must be allocated against a [`MemoryBudget`]; exceeding it fails
//! exactly the way a P4 program that does not fit fails to compile. The
//! SRO state-overhead experiment (E10) reads these books directly.

use std::fmt;

/// Default data-plane memory: 10 MB, the figure the paper uses throughout.
pub const DEFAULT_CAPACITY: usize = 10 * 1024 * 1024;

/// Error returned when an allocation does not fit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Name of the object that failed to allocate.
    pub object: String,
    /// Bytes requested.
    pub requested: usize,
    /// Bytes that were still available.
    pub available: usize,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "data-plane memory exhausted allocating '{}': requested {} B, available {} B",
            self.object, self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// One recorded allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Object name (register/table/counter name).
    pub name: String,
    /// Bytes consumed.
    pub bytes: usize,
}

/// The switch's data-plane memory books.
#[derive(Debug, Clone)]
pub struct MemoryBudget {
    capacity: usize,
    used: usize,
    allocations: Vec<Allocation>,
}

impl MemoryBudget {
    /// A budget with the given capacity in bytes.
    pub fn new(capacity: usize) -> MemoryBudget {
        MemoryBudget {
            capacity,
            used: 0,
            allocations: Vec::new(),
        }
    }

    /// The paper's standard 10 MB budget.
    pub fn standard() -> MemoryBudget {
        MemoryBudget::new(DEFAULT_CAPACITY)
    }

    /// Record an allocation of `bytes` for `name`.
    pub fn alloc(&mut self, name: &str, bytes: usize) -> Result<(), OutOfMemory> {
        let available = self.capacity - self.used;
        if bytes > available {
            return Err(OutOfMemory {
                object: name.to_string(),
                requested: bytes,
                available,
            });
        }
        self.used += bytes;
        self.allocations.push(Allocation {
            name: name.to_string(),
            bytes,
        });
        Ok(())
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes allocated so far.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Bytes still available.
    pub fn available(&self) -> usize {
        self.capacity - self.used
    }

    /// Every recorded allocation, in allocation order.
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocations
    }

    /// Bytes attributed to allocations whose name starts with `prefix`
    /// (E10 sums the protocol-metadata overheads this way).
    pub fn used_by_prefix(&self, prefix: &str) -> usize {
        self.allocations
            .iter()
            .filter(|a| a.name.starts_with(prefix))
            .map(|a| a.bytes)
            .sum()
    }
}

impl Default for MemoryBudget {
    fn default() -> Self {
        MemoryBudget::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_tracks_usage() {
        let mut b = MemoryBudget::new(100);
        b.alloc("a", 40).unwrap();
        b.alloc("b", 60).unwrap();
        assert_eq!(b.used(), 100);
        assert_eq!(b.available(), 0);
        assert_eq!(b.allocations().len(), 2);
    }

    #[test]
    fn over_allocation_fails_with_details() {
        let mut b = MemoryBudget::new(100);
        b.alloc("a", 90).unwrap();
        let err = b.alloc("big", 20).unwrap_err();
        assert_eq!(
            err,
            OutOfMemory {
                object: "big".into(),
                requested: 20,
                available: 10
            }
        );
        // Failed allocation must not consume budget.
        assert_eq!(b.used(), 90);
    }

    #[test]
    fn standard_budget_is_10mb() {
        assert_eq!(MemoryBudget::standard().capacity(), 10 * 1024 * 1024);
    }

    #[test]
    fn prefix_accounting() {
        let mut b = MemoryBudget::new(1000);
        b.alloc("sro.seq", 100).unwrap();
        b.alloc("sro.pending", 50).unwrap();
        b.alloc("app.table", 200).unwrap();
        assert_eq!(b.used_by_prefix("sro."), 150);
        assert_eq!(b.used_by_prefix("app."), 200);
        assert_eq!(b.used_by_prefix("zzz"), 0);
    }
}

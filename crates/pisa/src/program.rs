//! The data-plane program abstraction: the PISA match-action pipeline a
//! switch executes per packet (§2), plus the effect set a single packet's
//! processing may produce (forward, multicast, mirror, recirculate, punt
//! to control plane, drop).
//!
//! Atomicity: the engine calls [`DataPlaneProgram::on_packet`] once per
//! packet and applies the produced [`Effects`] only after it returns —
//! "the next processed packet will not see an intermediate view on the
//! state" (§2). Programs are therefore free to do multi-location writes
//! without locks, exactly the property the SwiShmem protocols exploit.

use crate::dataplane::DpView;
use std::any::Any;
use swishmem_simnet::{GroupId, SpanPhase};
use swishmem_wire::{NodeId, PacketBody, TraceId};

/// One output action of a packet's processing.
#[derive(Debug)]
pub enum Effect {
    /// Emit a frame toward `dst` (normal egress).
    Forward {
        /// Next hop.
        dst: NodeId,
        /// Frame payload.
        body: PacketBody,
    },
    /// Replicate a frame to every member of a multicast group (the
    /// multicast engine, used by EWO's eager update broadcast).
    Multicast {
        /// Target group.
        group: GroupId,
        /// Frame payload.
        body: PacketBody,
    },
    /// Send a frame to one uniformly-random member of a group — the EWO
    /// periodic-sync transmission pattern (§7: "forwarding each one to a
    /// randomly-selected switch in the replica group").
    AnycastRandom {
        /// Target group.
        group: GroupId,
        /// Frame payload.
        body: PacketBody,
    },
    /// Send the packet through the pipeline again after the recirculation
    /// delay (§2).
    Recirculate {
        /// Frame payload to re-process.
        body: PacketBody,
    },
    /// Hand an item to the switch-local control plane (packet-in). The
    /// payload is an arbitrary typed item so programs can attach computed
    /// context (e.g. SwiShmem's `(P', Q)` output-packet + write-set pair).
    Punt {
        /// The work item; the control app downcasts it.
        item: Box<dyn Any>,
        /// Causal trace of the punted operation; when not
        /// [`TraceId::NONE`], the switch emits `punt` / `cp_dequeue` span
        /// markers stamped with the modeled CP queue times.
        trace: TraceId,
    },
    /// Emit a causal span phase marker (pure telemetry: recorded against
    /// the simulator's span collector, produces no packet or event).
    Span {
        /// The operation the marker belongs to.
        trace: TraceId,
        /// Which phase happened.
        phase: SpanPhase,
    },
    /// Explicitly drop (recorded for statistics; producing no effect at
    /// all is equivalent for delivery purposes).
    Drop,
}

/// Collector for the effects of one pipeline pass.
#[derive(Debug)]
pub struct Effects {
    items: Vec<Effect>,
    /// Whether span markers are collected. The switch sets this from the
    /// engine's collector-attached state so a detached run never pays the
    /// per-packet push/dispatch of `Effect::Span` entries.
    tracing: bool,
}

impl Default for Effects {
    fn default() -> Effects {
        Effects {
            items: Vec::new(),
            // Direct constructions (tests, tools) keep spans observable.
            tracing: true,
        }
    }
}

impl Effects {
    /// Empty effect set.
    pub fn new() -> Effects {
        Effects::default()
    }

    /// Empty effect set with span collection switched on or off.
    pub fn with_tracing(tracing: bool) -> Effects {
        Effects {
            items: Vec::new(),
            tracing,
        }
    }

    /// Emit a frame toward `dst`.
    pub fn forward(&mut self, dst: NodeId, body: PacketBody) {
        self.items.push(Effect::Forward { dst, body });
    }

    /// Egress-mirror a copy toward `dst` (same mechanics as forward; the
    /// distinct name documents intent at call sites, §7's "egress
    /// mirroring").
    pub fn mirror(&mut self, dst: NodeId, body: PacketBody) {
        self.items.push(Effect::Forward { dst, body });
    }

    /// Replicate to a multicast group.
    pub fn multicast(&mut self, group: GroupId, body: PacketBody) {
        self.items.push(Effect::Multicast { group, body });
    }

    /// Send to one random member of a group.
    pub fn anycast_random(&mut self, group: GroupId, body: PacketBody) {
        self.items.push(Effect::AnycastRandom { group, body });
    }

    /// Recirculate for another pipeline pass.
    pub fn recirculate(&mut self, body: PacketBody) {
        self.items.push(Effect::Recirculate { body });
    }

    /// Punt a typed item to the control plane.
    pub fn punt<T: Any>(&mut self, item: T) {
        self.items.push(Effect::Punt {
            item: Box::new(item),
            trace: TraceId::NONE,
        });
    }

    /// Punt a typed item carrying a causal trace: the switch stamps
    /// `punt` and `cp_dequeue` markers from its CP queue model.
    pub fn punt_traced<T: Any>(&mut self, item: T, trace: TraceId) {
        self.items.push(Effect::Punt {
            item: Box::new(item),
            trace,
        });
    }

    /// Emit a span phase marker. A no-op when tracing is off for this
    /// pass or `trace` is [`TraceId::NONE`].
    pub fn span(&mut self, trace: TraceId, phase: SpanPhase) {
        if self.tracing && trace.is_some() {
            self.items.push(Effect::Span { trace, phase });
        }
    }

    /// Record an explicit drop.
    pub fn drop_packet(&mut self) {
        self.items.push(Effect::Drop);
    }

    /// Number of effects collected.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no effects were produced.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drain the collected effects (engine use).
    pub fn drain(&mut self) -> impl Iterator<Item = Effect> + '_ {
        self.items.drain(..)
    }
}

/// A P4-style data-plane program.
///
/// State access goes through the [`DpView`]; outputs through [`Effects`].
/// Implementations must be deterministic functions of (packet, state):
/// the engine may run the same program on several switches and the
/// SwiShmem read-forwarding path assumes identical processing at the tail.
pub trait DataPlaneProgram: 'static {
    /// Process one packet. The program owns the packet: punting or
    /// re-emitting it is a move, never a deep copy.
    fn on_packet(&mut self, pkt: swishmem_wire::Packet, dp: &mut DpView<'_>, eff: &mut Effects);

    /// A packet-generator tick fired (§7's "periodic background task ...
    /// using the switch's packet generator"). `token` identifies which
    /// generator.
    fn on_pktgen(&mut self, _token: u64, _dp: &mut DpView<'_>, _eff: &mut Effects) {}

    /// The switch failed; clear program-internal state so a recovery
    /// starts fresh.
    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effects_collect_in_order() {
        let mut eff = Effects::new();
        eff.forward(NodeId(1), dummy_body());
        eff.punt(42u32);
        eff.drop_packet();
        assert_eq!(eff.len(), 3);
        let kinds: Vec<&'static str> = eff
            .drain()
            .map(|e| match e {
                Effect::Forward { .. } => "fwd",
                Effect::Punt { .. } => "punt",
                Effect::Drop => "drop",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, ["fwd", "punt", "drop"]);
    }

    #[test]
    fn punt_items_downcast() {
        let mut eff = Effects::new();
        eff.punt(String::from("work"));
        let first = eff.drain().next().unwrap();
        match first {
            Effect::Punt { item, trace } => {
                assert_eq!(trace, TraceId::NONE);
                assert_eq!(item.downcast::<String>().unwrap().as_str(), "work");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    fn dummy_body() -> PacketBody {
        use std::net::Ipv4Addr;
        PacketBody::Data(swishmem_wire::DataPacket::udp(
            swishmem_wire::FlowKey::udp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 2),
            0,
            0,
        ))
    }
}

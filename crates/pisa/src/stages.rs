//! Pipeline-stage accounting.
//!
//! §2: "The small (~10 MB) switch memory is split between pipeline
//! stages." A PISA pipeline has a fixed number of match-action stages
//! (12 per direction on Tofino-class ASICs); each stateful object — a
//! register array, a table, a meter bank — occupies (part of) a stage,
//! and an object cannot span more SRAM than one stage provides.
//!
//! This module models that second resource dimension beside the byte
//! budget: objects are placed greedily onto stages; placement fails when
//! either the stage count or a stage's SRAM is exhausted. The SwiShmem
//! layer's own state (sequence numbers, pending bits, EWO slot arrays)
//! competes with the NF's tables for stages, which is the real-world
//! pressure behind §7's key-grouping idea.

/// A Tofino-like default: 12 stages.
pub const DEFAULT_STAGES: usize = 12;

/// A Tofino-like default: ~1.25 MB of SRAM per stage.
pub const DEFAULT_STAGE_SRAM: usize = 1_280 * 1024;

/// One placed object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Object name.
    pub name: String,
    /// Stage index the object landed in.
    pub stage: usize,
    /// Bytes it occupies there.
    pub bytes: usize,
}

/// Why a placement failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// The object is bigger than a whole stage.
    ObjectTooLarge {
        /// Object name.
        name: String,
        /// Requested bytes.
        requested: usize,
        /// SRAM available in one stage.
        stage_sram: usize,
    },
    /// No stage has room left.
    PipelineFull {
        /// Object name.
        name: String,
        /// Requested bytes.
        requested: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::ObjectTooLarge {
                name,
                requested,
                stage_sram,
            } => write!(
                f,
                "object '{name}' ({requested} B) exceeds a single stage's SRAM ({stage_sram} B)"
            ),
            PlacementError::PipelineFull { name, requested } => {
                write!(f, "no stage can fit '{name}' ({requested} B)")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// Greedy first-fit placement of stateful objects onto pipeline stages.
#[derive(Debug, Clone)]
pub struct StagePlanner {
    stage_sram: usize,
    free: Vec<usize>,
    placements: Vec<Placement>,
}

impl StagePlanner {
    /// A planner with `stages` stages of `stage_sram` bytes each.
    pub fn new(stages: usize, stage_sram: usize) -> StagePlanner {
        assert!(stages > 0);
        StagePlanner {
            stage_sram,
            free: vec![stage_sram; stages],
            placements: Vec::new(),
        }
    }

    /// The Tofino-like default geometry (12 × 1.25 MB ≈ 15 MB gross;
    /// parity with the paper's "~10 MB available" once parser/deparser
    /// and table overheads are accounted).
    pub fn standard() -> StagePlanner {
        StagePlanner::new(DEFAULT_STAGES, DEFAULT_STAGE_SRAM)
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.free.len()
    }

    /// Place an object, first-fit. Objects placed in one call must not
    /// exceed a stage (real compilers can split tables across stages;
    /// register arrays cannot be split, which is the constraint we model).
    pub fn place(&mut self, name: &str, bytes: usize) -> Result<Placement, PlacementError> {
        if bytes > self.stage_sram {
            return Err(PlacementError::ObjectTooLarge {
                name: name.to_string(),
                requested: bytes,
                stage_sram: self.stage_sram,
            });
        }
        for (i, free) in self.free.iter_mut().enumerate() {
            if *free >= bytes {
                *free -= bytes;
                let p = Placement {
                    name: name.to_string(),
                    stage: i,
                    bytes,
                };
                self.placements.push(p.clone());
                return Ok(p);
            }
        }
        Err(PlacementError::PipelineFull {
            name: name.to_string(),
            requested: bytes,
        })
    }

    /// All placements so far.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Free SRAM remaining in stage `i`.
    pub fn free_in_stage(&self, i: usize) -> usize {
        self.free[i]
    }

    /// Total free SRAM across the pipeline.
    pub fn free_total(&self) -> usize {
        self.free.iter().sum()
    }

    /// Highest stage index in use plus one (pipeline depth consumed).
    pub fn depth_used(&self) -> usize {
        self.placements
            .iter()
            .map(|p| p.stage + 1)
            .max()
            .unwrap_or(0)
    }
}

impl Default for StagePlanner {
    fn default() -> Self {
        StagePlanner::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fit_packs_stage_zero_first() {
        let mut p = StagePlanner::new(3, 100);
        assert_eq!(p.place("a", 60).unwrap().stage, 0);
        assert_eq!(p.place("b", 30).unwrap().stage, 0);
        // Doesn't fit in stage 0 anymore.
        assert_eq!(p.place("c", 50).unwrap().stage, 1);
        assert_eq!(p.depth_used(), 2);
        assert_eq!(p.free_in_stage(0), 10);
        assert_eq!(p.free_total(), 10 + 50 + 100);
    }

    #[test]
    fn object_bigger_than_a_stage_rejected() {
        let mut p = StagePlanner::new(3, 100);
        let err = p.place("huge", 101).unwrap_err();
        assert!(matches!(err, PlacementError::ObjectTooLarge { .. }));
        // Nothing was consumed.
        assert_eq!(p.free_total(), 300);
    }

    #[test]
    fn pipeline_fills_up() {
        let mut p = StagePlanner::new(2, 100);
        p.place("a", 100).unwrap();
        p.place("b", 100).unwrap();
        let err = p.place("c", 1).unwrap_err();
        assert!(matches!(err, PlacementError::PipelineFull { .. }));
    }

    #[test]
    fn standard_geometry() {
        let p = StagePlanner::standard();
        assert_eq!(p.stages(), 12);
        assert_eq!(p.free_total(), 12 * 1_280 * 1024);
    }

    #[test]
    fn million_entry_register_needs_grouping_to_fit_a_stage() {
        // §7: a 1M-entry seq+pending array at 16 B/key is 16 MB — no
        // single stage can hold it ungrouped; at group=16 it fits.
        let mut p = StagePlanner::standard();
        assert!(p.place("seq_pending_g1", 1_000_000 * 16).is_err());
        assert!(p.place("seq_pending_g16", 1_000_000 / 16 * 16).is_ok());
    }
}

//! # swishmem-pisa
//!
//! A model of a PISA programmable switch (§2 of the paper): the substrate
//! SwiShmem's protocols run on. The model reproduces the *semantics* that
//! shape the protocol design rather than ASIC throughput (DESIGN.md §2):
//!
//! * a match-action pipeline executing a [`DataPlaneProgram`] with
//!   **atomic per-packet processing** — effects apply only after the
//!   program returns, so multi-location writes need no locks (§2);
//! * **data-plane state** under a 10 MB [`memory::MemoryBudget`]:
//!   [`register::RegisterArray`]s and `(version, value)`
//!   [`register::PairRegisterArray`]s writable from the pipeline,
//!   [`table::MatchTable`]s writable only from the control plane,
//!   [`counter::CounterArray`]s and [`meter::MeterArray`]s;
//! * a **control-plane co-processor** ([`control::ControlApp`]) with punt
//!   latency and serial per-item service time — slow but with unbounded
//!   DRAM, exactly the asymmetry SRO exploits (§6.1, §7);
//! * **egress mirroring**, **multicast engine**, **recirculation**, and a
//!   periodic **packet generator** (§7's implementation toolbox).
//!
//! The [`switch::Switch`] composes all of it into a `swishmem-simnet`
//! node.
//!
//! ```
//! use swishmem_pisa::{DataPlane, DpView, MemoryBudget, MeterColor};
//! use swishmem_simnet::SimTime;
//!
//! // Build a data plane, allocate state against the 10 MB budget, and
//! // exercise it the way a per-packet program would.
//! let mut dp = DataPlane::standard();
//! let conns = dp.alloc_register("conn_state", 1024).unwrap();
//! let table = dp.alloc_table("routes", 256).unwrap();
//! let meter = dp.alloc_meter("user_meters", 64, 1_000_000, 10_000).unwrap();
//!
//! // The control plane installs a table entry (P4Runtime role)...
//! dp.table_insert(table, 42, 7).unwrap();
//!
//! // ...and the pipeline reads/writes through the restricted view.
//! let mut view = DpView::new(&mut dp, SimTime::ZERO);
//! assert_eq!(view.table_lookup(table, 42), Some(7));
//! view.reg_write(conns, 5, 2);
//! assert_eq!(view.reg_read(conns, 5), 2);
//! assert_eq!(view.meter(meter, 3, 500), MeterColor::Green);
//! assert!(dp.budget().used() > 0);
//! ```

pub mod control;
pub mod counter;
pub mod dataplane;
pub mod memory;
pub mod meter;
pub mod program;
pub mod register;
pub mod stages;
pub mod switch;
pub mod table;

pub use control::{ControlApp, CpCtx, CpParams, NullControlApp};
pub use counter::{CounterArray, CounterCell};
pub use dataplane::{
    CounterHandle, DataPlane, DpView, MeterHandle, PairRegHandle, RegHandle, TableHandle,
};
pub use memory::{MemoryBudget, OutOfMemory};
pub use meter::{MeterArray, MeterColor};
pub use program::{DataPlaneProgram, Effect, Effects};
pub use register::{PairRegisterArray, RegisterArray};
pub use stages::{Placement, PlacementError, StagePlanner};
pub use switch::{Switch, SwitchConfig, SwitchStats};
pub use table::{MatchTable, TableFull};

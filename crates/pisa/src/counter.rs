//! Counter arrays: packet/byte counters indexable from the data plane (§2).

/// One counter cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterCell {
    /// Packets counted.
    pub packets: u64,
    /// Bytes counted.
    pub bytes: u64,
}

/// A named array of packet/byte counters.
#[derive(Debug, Clone)]
pub struct CounterArray {
    name: String,
    cells: Vec<CounterCell>,
}

impl CounterArray {
    /// Bytes of SRAM one counter cell costs.
    pub const CELL_BYTES: usize = 16;

    pub(crate) fn new(name: &str, len: usize) -> CounterArray {
        assert!(len > 0, "counter array must have at least one cell");
        CounterArray {
            name: name.to_string(),
            cells: vec![CounterCell::default(); len],
        }
    }

    /// Array name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Count one packet of `bytes` bytes at `idx` (masked).
    #[inline]
    pub fn count(&mut self, idx: usize, bytes: usize) {
        let s = idx % self.cells.len();
        self.cells[s].packets += 1;
        self.cells[s].bytes += bytes as u64;
    }

    /// Read cell `idx` (masked).
    #[inline]
    pub fn read(&self, idx: usize) -> CounterCell {
        self.cells[idx % self.cells.len()]
    }

    /// Zero all cells.
    pub fn clear(&mut self) {
        self.cells.fill(CounterCell::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_accumulates() {
        let mut c = CounterArray::new("c", 2);
        c.count(0, 100);
        c.count(0, 50);
        c.count(1, 10);
        assert_eq!(
            c.read(0),
            CounterCell {
                packets: 2,
                bytes: 150
            }
        );
        assert_eq!(
            c.read(1),
            CounterCell {
                packets: 1,
                bytes: 10
            }
        );
    }

    #[test]
    fn index_masked() {
        let mut c = CounterArray::new("c", 2);
        c.count(3, 7); // 3 % 2 == 1
        assert_eq!(c.read(1).bytes, 7);
    }

    #[test]
    fn clear_zeroes() {
        let mut c = CounterArray::new("c", 1);
        c.count(0, 5);
        c.clear();
        assert_eq!(c.read(0), CounterCell::default());
    }
}

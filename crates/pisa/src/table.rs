//! Match tables: exact-match lookup structures that, per the P4 model,
//! "require control-plane to perform update" (§2). The data plane may only
//! look up; inserts/removes are reachable solely through the control-plane
//! API (`CpCtx::dataplane`), which is how the type system enforces the
//! paper's Observation 1 ("most of these examples use switch data
//! structures that must be modified through the control plane").

use std::collections::HashMap;

/// An exact-match table mapping a 64-bit key to a 64-bit action parameter.
#[derive(Debug, Clone)]
pub struct MatchTable {
    name: String,
    entries: HashMap<u64, u64>,
    max_entries: usize,
    lookups: u64,
    hits: u64,
}

/// Error returned when a table is full.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableFull {
    /// Table name.
    pub table: String,
    /// Configured capacity.
    pub max_entries: usize,
}

impl std::fmt::Display for TableFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "table '{}' full ({} entries)",
            self.table, self.max_entries
        )
    }
}

impl std::error::Error for TableFull {}

impl MatchTable {
    /// Bytes of SRAM one entry costs (key + value + overhead, a typical
    /// TCAM/SRAM exact-match cost model).
    pub const ENTRY_BYTES: usize = 32;

    pub(crate) fn new(name: &str, max_entries: usize) -> MatchTable {
        MatchTable {
            name: name.to_string(),
            entries: HashMap::new(),
            max_entries,
            lookups: 0,
            hits: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Data-plane lookup.
    pub fn lookup(&mut self, key: u64) -> Option<u64> {
        self.lookups += 1;
        let hit = self.entries.get(&key).copied();
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    /// Control-plane insert (or overwrite).
    pub fn insert(&mut self, key: u64, value: u64) -> Result<(), TableFull> {
        if !self.entries.contains_key(&key) && self.entries.len() >= self.max_entries {
            return Err(TableFull {
                table: self.name.clone(),
                max_entries: self.max_entries,
            });
        }
        self.entries.insert(key, value);
        Ok(())
    }

    /// Control-plane remove; returns the removed value.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        self.entries.remove(&key)
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(lookups, hits)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.hits)
    }

    /// Iterate all `(key, value)` entries (control-plane snapshot).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.entries.iter().map(|(&k, &v)| (k, v))
    }

    /// Wipe all entries (failure/recovery).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.lookups = 0;
        self.hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut t = MatchTable::new("t", 4);
        assert_eq!(t.lookup(1), None);
        t.insert(1, 100).unwrap();
        assert_eq!(t.lookup(1), Some(100));
        assert_eq!(t.remove(1), Some(100));
        assert_eq!(t.lookup(1), None);
        assert_eq!(t.stats(), (3, 1));
    }

    #[test]
    fn capacity_enforced_but_overwrite_allowed() {
        let mut t = MatchTable::new("t", 2);
        t.insert(1, 1).unwrap();
        t.insert(2, 2).unwrap();
        assert!(t.insert(3, 3).is_err());
        // Overwriting an existing key is not a new entry.
        t.insert(2, 20).unwrap();
        assert_eq!(t.lookup(2), Some(20));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = MatchTable::new("t", 2);
        t.insert(1, 1).unwrap();
        t.lookup(1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.stats(), (0, 0));
    }
}

//! The control-plane co-processor model.
//!
//! A PISA switch carries a general-purpose CPU beside the ASIC. It is
//! slow relative to the pipeline (the paper's SRO design leans on exactly
//! this asymmetry: "its write throughput is limited by the need to send
//! packets through the control plane", §6.1) but has "ample DRAM
//! capacity" (§7) for buffering output packets during writes.
//!
//! The model charges two costs:
//! * **punt latency** — PCIe/driver delay moving a packet-in from the
//!   pipeline to the CPU;
//! * **service time** — per-item CPU processing, applied serially, which
//!   caps control-plane throughput at `1/service_time` items per second.
//!
//! Control apps hold unbounded (DRAM) private state; they interact with
//! the world through [`CpCtx`]: packet-out, timers, and full data-plane
//! access (including table writes, the P4Runtime role).

use crate::dataplane::DataPlane;
use std::any::Any;
use swishmem_simnet::{Ctx, GroupId, SimDuration, SimTime, SpanPhase};
use swishmem_wire::{NodeId, PacketBody, TraceId};

/// Cost parameters of the control-plane co-processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpParams {
    /// Pipeline → CPU transfer latency per packet-in.
    pub punt_latency: SimDuration,
    /// Serial CPU time per item: control-plane throughput is
    /// `1 / service_time`.
    pub service_time: SimDuration,
}

impl Default for CpParams {
    fn default() -> Self {
        // ~35 µs punt (PCIe + kernel bypass driver), 10 µs service
        // (≈100k ops/s), representative of switch CPU stacks.
        CpParams {
            punt_latency: SimDuration::micros(35),
            service_time: SimDuration::micros(10),
        }
    }
}

/// Context handed to [`ControlApp`] callbacks.
pub struct CpCtx<'a, 'b> {
    pub(crate) dp: &'a mut DataPlane,
    pub(crate) net: &'a mut Ctx<'b>,
    pub(crate) timer_requests: &'a mut Vec<(SimDuration, u64)>,
}

impl<'a, 'b> CpCtx<'a, 'b> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// This switch's node id.
    pub fn self_id(&self) -> NodeId {
        self.net.self_id()
    }

    /// Full data-plane access: the control plane may read registers
    /// (snapshots), and write tables (P4Runtime-style).
    pub fn dataplane(&mut self) -> &mut DataPlane {
        self.dp
    }

    /// Emit a packet-out: inject a frame into the egress toward `dst`.
    pub fn packet_out(&mut self, dst: NodeId, body: PacketBody) {
        self.net.send(dst, body);
    }

    /// Emit a packet-out to a multicast group.
    pub fn multicast_out(&mut self, group: GroupId, body: PacketBody) {
        self.net.multicast(group, body);
    }

    /// Arm a control-plane timer. `token` must fit in 48 bits (the switch
    /// multiplexes timers across subsystems).
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        assert!(
            token < (1 << 48),
            "control-plane timer token must fit in 48 bits"
        );
        self.timer_requests.push((delay, token));
    }

    /// Deterministic randomness.
    pub fn rng(&mut self) -> &mut impl rand::Rng {
        self.net.rng()
    }

    /// Emit a causal span phase marker at the current time (passive
    /// telemetry; see [`Ctx::span`]).
    pub fn span(&mut self, trace: TraceId, phase: SpanPhase) {
        self.net.span(trace, phase);
    }

    /// Emit a span marker stamped with an explicit time.
    pub fn span_at(&mut self, at: SimTime, trace: TraceId, phase: SpanPhase) {
        self.net.span_at(at, trace, phase);
    }
}

/// A control-plane application (the switch-local agent).
pub trait ControlApp: 'static {
    /// Called at switch start (and again on recovery after failure, with
    /// `reset` having run in between).
    fn on_start(&mut self, _cp: &mut CpCtx<'_, '_>) {}

    /// A punted item arrived from the pipeline (after punt latency and
    /// serial service delay). Downcast to the expected type(s).
    fn on_item(&mut self, item: Box<dyn Any>, cp: &mut CpCtx<'_, '_>);

    /// A control-plane timer fired. Timers armed before a failure may
    /// fire after recovery with stale tokens; implementations must treat
    /// unknown tokens as no-ops.
    fn on_timer(&mut self, _token: u64, _cp: &mut CpCtx<'_, '_>) {}

    /// The switch failed: discard all CPU state.
    fn reset(&mut self) {}
}

/// A no-op control app for switches that never use the control plane.
pub struct NullControlApp;

impl ControlApp for NullControlApp {
    fn on_item(&mut self, _item: Box<dyn Any>, _cp: &mut CpCtx<'_, '_>) {}
}

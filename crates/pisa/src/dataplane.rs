//! The data plane: all pipeline-visible state of one switch, plus the
//! restricted view handed to data-plane programs.
//!
//! Access control mirrors P4 (§2): programs get a [`DpView`] that can
//! read/write registers, counters and meters and *look up* tables; only
//! the control plane (which holds `&mut DataPlane` via
//! [`crate::control::CpCtx::dataplane`]) can install or remove table
//! entries.

use crate::counter::{CounterArray, CounterCell};
use crate::memory::{MemoryBudget, OutOfMemory};
use crate::meter::{MeterArray, MeterColor};
use crate::register::{PairRegisterArray, RegisterArray};
use crate::table::{MatchTable, TableFull};
use swishmem_simnet::SimTime;

/// Handle to a [`RegisterArray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegHandle(usize);

/// Handle to a [`PairRegisterArray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PairRegHandle(usize);

/// Handle to a [`MatchTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableHandle(usize);

/// Handle to a [`CounterArray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterHandle(usize);

/// Handle to a [`MeterArray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeterHandle(usize);

/// All data-plane state of one switch.
#[derive(Debug)]
pub struct DataPlane {
    budget: MemoryBudget,
    regs: Vec<RegisterArray>,
    pairs: Vec<PairRegisterArray>,
    tables: Vec<MatchTable>,
    counters: Vec<CounterArray>,
    meters: Vec<MeterArray>,
}

impl DataPlane {
    /// Create a data plane with the given memory budget.
    pub fn new(budget: MemoryBudget) -> DataPlane {
        DataPlane {
            budget,
            regs: Vec::new(),
            pairs: Vec::new(),
            tables: Vec::new(),
            counters: Vec::new(),
            meters: Vec::new(),
        }
    }

    /// Standard 10 MB data plane.
    pub fn standard() -> DataPlane {
        DataPlane::new(MemoryBudget::standard())
    }

    /// Allocate a register array of `len` 64-bit cells.
    pub fn alloc_register(&mut self, name: &str, len: usize) -> Result<RegHandle, OutOfMemory> {
        self.budget.alloc(name, len * RegisterArray::CELL_BYTES)?;
        self.regs.push(RegisterArray::new(name, len));
        Ok(RegHandle(self.regs.len() - 1))
    }

    /// Allocate a `(version, value)` pair register array.
    pub fn alloc_pair_register(
        &mut self,
        name: &str,
        len: usize,
    ) -> Result<PairRegHandle, OutOfMemory> {
        self.budget
            .alloc(name, len * PairRegisterArray::CELL_BYTES)?;
        self.pairs.push(PairRegisterArray::new(name, len));
        Ok(PairRegHandle(self.pairs.len() - 1))
    }

    /// Allocate an exact-match table.
    pub fn alloc_table(
        &mut self,
        name: &str,
        max_entries: usize,
    ) -> Result<TableHandle, OutOfMemory> {
        self.budget
            .alloc(name, max_entries * MatchTable::ENTRY_BYTES)?;
        self.tables.push(MatchTable::new(name, max_entries));
        Ok(TableHandle(self.tables.len() - 1))
    }

    /// Allocate a counter array.
    pub fn alloc_counter(&mut self, name: &str, len: usize) -> Result<CounterHandle, OutOfMemory> {
        self.budget.alloc(name, len * CounterArray::CELL_BYTES)?;
        self.counters.push(CounterArray::new(name, len));
        Ok(CounterHandle(self.counters.len() - 1))
    }

    /// Allocate a meter array.
    pub fn alloc_meter(
        &mut self,
        name: &str,
        len: usize,
        rate_bytes_per_sec: u64,
        burst_bytes: u64,
    ) -> Result<MeterHandle, OutOfMemory> {
        self.budget.alloc(name, len * MeterArray::CELL_BYTES)?;
        self.meters
            .push(MeterArray::new(name, len, rate_bytes_per_sec, burst_bytes));
        Ok(MeterHandle(self.meters.len() - 1))
    }

    /// The memory books.
    pub fn budget(&self) -> &MemoryBudget {
        &self.budget
    }

    /// Register array behind `h`.
    pub fn reg(&self, h: RegHandle) -> &RegisterArray {
        &self.regs[h.0]
    }

    /// Mutable register array behind `h`.
    pub fn reg_mut(&mut self, h: RegHandle) -> &mut RegisterArray {
        &mut self.regs[h.0]
    }

    /// Pair register array behind `h`.
    pub fn pair(&self, h: PairRegHandle) -> &PairRegisterArray {
        &self.pairs[h.0]
    }

    /// Mutable pair register array behind `h`.
    pub fn pair_mut(&mut self, h: PairRegHandle) -> &mut PairRegisterArray {
        &mut self.pairs[h.0]
    }

    /// Table behind `h` (control-plane access; data-plane programs use
    /// [`DpView::table_lookup`]).
    pub fn table(&self, h: TableHandle) -> &MatchTable {
        &self.tables[h.0]
    }

    /// Mutable table behind `h` (control-plane only by convention — the
    /// pipeline never sees `&mut DataPlane`).
    pub fn table_mut(&mut self, h: TableHandle) -> &mut MatchTable {
        &mut self.tables[h.0]
    }

    /// Control-plane table insert.
    pub fn table_insert(&mut self, h: TableHandle, key: u64, value: u64) -> Result<(), TableFull> {
        self.tables[h.0].insert(key, value)
    }

    /// Counter array behind `h`.
    pub fn counter(&self, h: CounterHandle) -> &CounterArray {
        &self.counters[h.0]
    }

    /// Wipe every structure: fail-stop failure loses all data-plane state.
    pub fn clear_all(&mut self) {
        for r in &mut self.regs {
            r.clear();
        }
        for p in &mut self.pairs {
            p.clear();
        }
        for t in &mut self.tables {
            t.clear();
        }
        for c in &mut self.counters {
            c.clear();
        }
        for m in &mut self.meters {
            m.clear();
        }
    }
}

/// The restricted, per-packet view a data-plane program operates through.
pub struct DpView<'a> {
    dp: &'a mut DataPlane,
    now: SimTime,
}

impl<'a> DpView<'a> {
    /// Wrap a data plane at the current time.
    pub fn new(dp: &'a mut DataPlane, now: SimTime) -> DpView<'a> {
        DpView { dp, now }
    }

    /// Current simulated time (switch-local use only; protocol timestamps
    /// should come from the SwiShmem clock model, which adds skew).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read register cell.
    #[inline]
    pub fn reg_read(&self, h: RegHandle, idx: usize) -> u64 {
        self.dp.regs[h.0].read(idx)
    }

    /// Write register cell.
    #[inline]
    pub fn reg_write(&mut self, h: RegHandle, idx: usize, v: u64) {
        self.dp.regs[h.0].write(idx, v);
    }

    /// Wrapping add to register cell; returns the new value.
    #[inline]
    pub fn reg_add(&mut self, h: RegHandle, idx: usize, delta: i64) -> u64 {
        self.dp.regs[h.0].add(idx, delta)
    }

    /// Read a `(version, value)` pair.
    #[inline]
    pub fn pair_read(&self, h: PairRegHandle, idx: usize) -> (u64, u64) {
        self.dp.pairs[h.0].read(idx)
    }

    /// Atomically write a `(version, value)` pair.
    #[inline]
    pub fn pair_write(&mut self, h: PairRegHandle, idx: usize, version: u64, value: u64) {
        self.dp.pairs[h.0].write(idx, version, value);
    }

    /// LWW merge into a pair; true if applied.
    #[inline]
    pub fn pair_merge_lww(
        &mut self,
        h: PairRegHandle,
        idx: usize,
        version: u64,
        value: u64,
    ) -> bool {
        self.dp.pairs[h.0].merge_lww(idx, version, value)
    }

    /// Element-wise max merge into a pair; true if changed.
    #[inline]
    pub fn pair_merge_max(
        &mut self,
        h: PairRegHandle,
        idx: usize,
        version: u64,
        value: u64,
    ) -> bool {
        self.dp.pairs[h.0].merge_max(idx, version, value)
    }

    /// Number of cells in a pair register array.
    pub fn pair_len(&self, h: PairRegHandle) -> usize {
        self.dp.pairs[h.0].len()
    }

    /// Number of cells in a register array.
    pub fn reg_len(&self, h: RegHandle) -> usize {
        self.dp.regs[h.0].len()
    }

    /// Table lookup (the only table operation the pipeline may perform).
    #[inline]
    pub fn table_lookup(&mut self, h: TableHandle, key: u64) -> Option<u64> {
        self.dp.tables[h.0].lookup(key)
    }

    /// Count a packet.
    #[inline]
    pub fn count(&mut self, h: CounterHandle, idx: usize, bytes: usize) {
        self.dp.counters[h.0].count(idx, bytes);
    }

    /// Read a counter.
    #[inline]
    pub fn counter_read(&self, h: CounterHandle, idx: usize) -> CounterCell {
        self.dp.counters[h.0].read(idx)
    }

    /// Meter a packet.
    #[inline]
    pub fn meter(&mut self, h: MeterHandle, idx: usize, bytes: usize) -> MeterColor {
        let now = self.now;
        self.dp.meters[h.0].meter(idx, now, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_charges_budget() {
        let mut dp = DataPlane::new(MemoryBudget::new(1024));
        let r = dp.alloc_register("r", 16).unwrap(); // 128 B
        let p = dp.alloc_pair_register("p", 16).unwrap(); // 256 B
        let t = dp.alloc_table("t", 8).unwrap(); // 256 B
        let c = dp.alloc_counter("c", 8).unwrap(); // 128 B
        let m = dp.alloc_meter("m", 8, 1000, 100).unwrap(); // 128 B
        assert_eq!(dp.budget().used(), 128 + 256 + 256 + 128 + 128);
        // Views work through handles.
        let mut v = DpView::new(&mut dp, SimTime::ZERO);
        v.reg_write(r, 0, 7);
        assert_eq!(v.reg_read(r, 0), 7);
        v.pair_write(p, 1, 2, 3);
        assert_eq!(v.pair_read(p, 1), (2, 3));
        assert_eq!(v.table_lookup(t, 5), None);
        v.count(c, 0, 99);
        assert_eq!(v.counter_read(c, 0).bytes, 99);
        assert_eq!(v.meter(m, 0, 10), MeterColor::Green);
    }

    #[test]
    fn over_budget_allocation_fails() {
        let mut dp = DataPlane::new(MemoryBudget::new(64));
        assert!(dp.alloc_register("ok", 8).is_ok());
        assert!(dp.alloc_register("too-big", 1).is_err());
    }

    #[test]
    fn clear_all_wipes_state() {
        let mut dp = DataPlane::standard();
        let r = dp.alloc_register("r", 4).unwrap();
        let t = dp.alloc_table("t", 4).unwrap();
        dp.reg_mut(r).write(0, 5);
        dp.table_insert(t, 1, 2).unwrap();
        dp.clear_all();
        assert_eq!(dp.reg(r).read(0), 0);
        assert!(dp.table(t).is_empty());
    }

    #[test]
    fn control_plane_inserts_visible_to_pipeline() {
        let mut dp = DataPlane::standard();
        let t = dp.alloc_table("nat", 16).unwrap();
        dp.table_insert(t, 42, 4242).unwrap();
        let mut v = DpView::new(&mut dp, SimTime::ZERO);
        assert_eq!(v.table_lookup(t, 42), Some(4242));
    }
}

//! The switch: data plane + program + control plane composed into a
//! simnet [`Node`].
//!
//! Timer multiplexing: the simulator gives each node a flat 64-bit timer
//! token space; the switch partitions it as `[tag:8][incarnation:8]
//! [payload:48]`. The incarnation byte is bumped on failure so timers
//! armed before a crash are ignored if they fire after recovery.

use crate::control::{ControlApp, CpCtx, CpParams};
use crate::dataplane::{DataPlane, DpView};
use crate::program::{DataPlaneProgram, Effect, Effects};
use std::any::Any;
use std::collections::HashMap;
use swishmem_simnet::{Ctx, Node, SimDuration, SimTime};
use swishmem_wire::{Packet, PacketBody};

const TAG_PKTGEN: u8 = 1;
const TAG_CP_WORK: u8 = 2;
const TAG_CP_TIMER: u8 = 3;
const TAG_RECIRC: u8 = 4;

fn encode_token(tag: u8, incarnation: u8, payload: u64) -> u64 {
    debug_assert!(payload < (1 << 48));
    (u64::from(tag) << 56) | (u64::from(incarnation) << 48) | payload
}

fn decode_token(token: u64) -> (u8, u8, u64) {
    (
        (token >> 56) as u8,
        (token >> 48) as u8,
        token & ((1 << 48) - 1),
    )
}

/// Switch-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct SwitchConfig {
    /// Control-plane cost model.
    pub cp: CpParams,
    /// One recirculation pass delay.
    pub recirc_delay: SimDuration,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            cp: CpParams::default(),
            recirc_delay: SimDuration::micros(1),
        }
    }
}

/// Pipeline/CPU activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Packets the pipeline processed (including recirculated passes).
    pub pipeline_packets: u64,
    /// Items punted to the control plane.
    pub punts: u64,
    /// Recirculation passes.
    pub recircs: u64,
    /// Packet-generator ticks.
    pub pktgen_ticks: u64,
    /// Packets explicitly dropped by the program.
    pub program_drops: u64,
}

/// A programmable switch node.
pub struct Switch<P: DataPlaneProgram, C: ControlApp> {
    dp: DataPlane,
    program: P,
    cp_app: C,
    cfg: SwitchConfig,
    incarnation: u8,
    cp_next_free: SimTime,
    cp_pending: HashMap<u64, Box<dyn Any>>,
    recirc_pending: HashMap<u64, PacketBody>,
    next_work_id: u64,
    pktgens: Vec<(SimDuration, u64)>,
    stats: SwitchStats,
}

impl<P: DataPlaneProgram, C: ControlApp> Switch<P, C> {
    /// Compose a switch. The data plane is built (registers allocated,
    /// handles distributed to `program`/`cp_app`) before this call.
    pub fn new(cfg: SwitchConfig, dp: DataPlane, program: P, cp_app: C) -> Switch<P, C> {
        Switch {
            dp,
            program,
            cp_app,
            cfg,
            incarnation: 0,
            cp_next_free: SimTime::ZERO,
            cp_pending: HashMap::new(),
            recirc_pending: HashMap::new(),
            next_work_id: 0,
            pktgens: Vec::new(),
            stats: SwitchStats::default(),
        }
    }

    /// Register a periodic packet-generator: the program's `on_pktgen`
    /// fires with `user_token` every `period`. Call before the simulation
    /// starts.
    pub fn add_pktgen(&mut self, period: SimDuration, user_token: u64) {
        assert!(period.as_nanos() > 0, "pktgen period must be positive");
        self.pktgens.push((period, user_token));
    }

    /// The data plane (post-run inspection).
    pub fn dp(&self) -> &DataPlane {
        &self.dp
    }

    /// Mutable data plane (test setup).
    pub fn dp_mut(&mut self) -> &mut DataPlane {
        &mut self.dp
    }

    /// The data-plane program.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// Mutable program access.
    pub fn program_mut(&mut self) -> &mut P {
        &mut self.program
    }

    /// The control app.
    pub fn cp_app(&self) -> &C {
        &self.cp_app
    }

    /// Mutable control app access.
    pub fn cp_app_mut(&mut self) -> &mut C {
        &mut self.cp_app
    }

    /// Activity counters.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    fn next_id(&mut self) -> u64 {
        self.next_work_id = (self.next_work_id + 1) & ((1 << 48) - 1);
        self.next_work_id
    }

    fn run_program<F>(&mut self, ctx: &mut Ctx<'_>, f: F)
    where
        F: FnOnce(&mut P, &mut DpView<'_>, &mut Effects),
    {
        let mut eff = Effects::with_tracing(ctx.tracing());
        {
            let mut view = DpView::new(&mut self.dp, ctx.now());
            f(&mut self.program, &mut view, &mut eff);
        }
        self.apply_effects(eff, ctx);
    }

    fn apply_effects(&mut self, mut eff: Effects, ctx: &mut Ctx<'_>) {
        let effects: Vec<Effect> = eff.drain().collect();
        for e in effects {
            match e {
                Effect::Forward { dst, body } => ctx.send(dst, body),
                Effect::Multicast { group, body } => ctx.multicast(group, body),
                Effect::AnycastRandom { group, body } => ctx.send_random(group, body),
                Effect::Recirculate { body } => {
                    self.stats.recircs += 1;
                    let id = self.next_id();
                    self.recirc_pending.insert(id, body);
                    ctx.set_timer(
                        self.cfg.recirc_delay,
                        encode_token(TAG_RECIRC, self.incarnation, id),
                    );
                }
                Effect::Punt { item, trace } => {
                    self.stats.punts += 1;
                    let now = ctx.now();
                    let arrive = now + self.cfg.cp.punt_latency;
                    let start = arrive.max(self.cp_next_free);
                    let done = start + self.cfg.cp.service_time;
                    self.cp_next_free = done;
                    // The queue model knows when this item reaches the CPU
                    // and when it clears the serial service queue — stamp
                    // the phase markers with those modeled times.
                    ctx.span_at(arrive, trace, swishmem_simnet::SpanPhase::Punt);
                    ctx.span_at(start, trace, swishmem_simnet::SpanPhase::CpDequeue);
                    let id = self.next_id();
                    self.cp_pending.insert(id, item);
                    ctx.set_timer(done - now, encode_token(TAG_CP_WORK, self.incarnation, id));
                }
                Effect::Span { trace, phase } => ctx.span(trace, phase),
                Effect::Drop => self.stats.program_drops += 1,
            }
        }
    }

    fn run_cp<F>(&mut self, ctx: &mut Ctx<'_>, f: F)
    where
        F: FnOnce(&mut C, &mut CpCtx<'_, '_>),
    {
        let mut timer_requests = Vec::new();
        {
            let mut cp = CpCtx {
                dp: &mut self.dp,
                net: ctx,
                timer_requests: &mut timer_requests,
            };
            f(&mut self.cp_app, &mut cp);
        }
        for (delay, token) in timer_requests {
            ctx.set_timer(delay, encode_token(TAG_CP_TIMER, self.incarnation, token));
        }
    }
}

impl<P: DataPlaneProgram, C: ControlApp> Node for Switch<P, C> {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for (i, &(period, _)) in self.pktgens.iter().enumerate() {
            ctx.set_timer(period, encode_token(TAG_PKTGEN, self.incarnation, i as u64));
        }
        self.run_cp(ctx, |app, cp| app.on_start(cp));
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        self.stats.pipeline_packets += 1;
        self.run_program(ctx, |p, dp, eff| p.on_packet(pkt, dp, eff));
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        let (tag, inc, payload) = decode_token(token);
        if inc != self.incarnation {
            return; // armed before a failure; stale
        }
        match tag {
            TAG_PKTGEN => {
                let idx = payload as usize;
                let Some(&(period, user_token)) = self.pktgens.get(idx) else {
                    return;
                };
                self.stats.pktgen_ticks += 1;
                self.run_program(ctx, |p, dp, eff| p.on_pktgen(user_token, dp, eff));
                ctx.set_timer(period, token); // re-arm
            }
            TAG_CP_WORK => {
                if let Some(item) = self.cp_pending.remove(&payload) {
                    self.run_cp(ctx, |app, cp| app.on_item(item, cp));
                }
            }
            TAG_CP_TIMER => {
                self.run_cp(ctx, |app, cp| app.on_timer(payload, cp));
            }
            TAG_RECIRC => {
                if let Some(body) = self.recirc_pending.remove(&payload) {
                    let me = ctx.self_id();
                    let pkt = Packet {
                        src: me,
                        dst: me,
                        body,
                    };
                    self.stats.pipeline_packets += 1;
                    self.run_program(ctx, |p, dp, eff| p.on_packet(pkt, dp, eff));
                }
            }
            _ => {}
        }
    }

    fn on_fail(&mut self) {
        // Fail-stop: all state is lost.
        self.incarnation = self.incarnation.wrapping_add(1);
        self.dp.clear_all();
        self.cp_pending.clear();
        self.recirc_pending.clear();
        self.cp_next_free = SimTime::ZERO;
        self.stats = SwitchStats::default();
        self.program.reset();
        self.cp_app.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::NullControlApp;
    use crate::dataplane::RegHandle;
    use std::net::Ipv4Addr;
    use swishmem_simnet::{LinkParams, Simulator};
    use swishmem_wire::{DataPacket, FlowKey, NodeId};

    fn data_pkt(src: u16, dst: u16) -> Packet {
        Packet::data(
            NodeId(src),
            NodeId(dst),
            DataPacket::udp(
                FlowKey::udp(Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 0, 0, 2), 2),
                0,
                32,
            ),
        )
    }

    #[test]
    fn token_codec() {
        let t = encode_token(3, 7, 123456);
        assert_eq!(decode_token(t), (3, 7, 123456));
        let t = encode_token(255, 255, (1 << 48) - 1);
        assert_eq!(decode_token(t), (255, 255, (1 << 48) - 1));
    }

    /// Counts packets in a register and forwards them onward.
    struct CountAndForward {
        reg: RegHandle,
        next: NodeId,
    }
    impl DataPlaneProgram for CountAndForward {
        fn on_packet(&mut self, pkt: Packet, dp: &mut DpView<'_>, eff: &mut Effects) {
            dp.reg_add(self.reg, 0, 1);
            eff.forward(self.next, pkt.body);
        }
    }

    #[test]
    fn pipeline_counts_and_forwards() {
        let mut sim = Simulator::new(1);
        let mut dp = DataPlane::standard();
        let reg = dp.alloc_register("cnt", 1).unwrap();
        let sw = Switch::new(
            SwitchConfig::default(),
            dp,
            CountAndForward {
                reg,
                next: NodeId(2),
            },
            NullControlApp,
        );
        sim.add_node(NodeId(1), Box::new(sw));
        let (rec, log) = swishmem_simnet::RecorderNode::new();
        sim.add_node(NodeId(2), Box::new(rec));
        sim.topology_mut()
            .connect(NodeId(1), NodeId(2), LinkParams::datacenter());
        for i in 0..5 {
            sim.inject(SimTime(i * 1000), data_pkt(0, 1));
        }
        sim.run_until_quiescent(SimTime(1_000_000));
        type Sw = Switch<CountAndForward, NullControlApp>;
        let sw = sim.node::<Sw>(NodeId(1)).unwrap();
        assert_eq!(sw.dp().reg(reg).read(0), 5);
        assert_eq!(sw.stats().pipeline_packets, 5);
        assert_eq!(log.borrow().len(), 5);
    }

    /// Punts every packet; the CP echoes it out after the CP costs.
    struct PuntAll;
    impl DataPlaneProgram for PuntAll {
        fn on_packet(&mut self, pkt: Packet, _dp: &mut DpView<'_>, eff: &mut Effects) {
            eff.punt(pkt); // moved, not cloned: the pipeline owns the packet
        }
    }
    struct EchoCp {
        out: NodeId,
        handled: u64,
    }
    impl ControlApp for EchoCp {
        fn on_item(&mut self, item: Box<dyn Any>, cp: &mut CpCtx<'_, '_>) {
            let pkt = item.downcast::<Packet>().unwrap();
            self.handled += 1;
            cp.packet_out(self.out, pkt.body);
        }
    }

    #[test]
    fn control_plane_serializes_service() {
        let mut sim = Simulator::new(1);
        let cfg = SwitchConfig::default();
        let sw = Switch::new(
            cfg,
            DataPlane::standard(),
            PuntAll,
            EchoCp {
                out: NodeId(2),
                handled: 0,
            },
        );
        sim.add_node(NodeId(1), Box::new(sw));
        let (rec, log) = swishmem_simnet::RecorderNode::new();
        sim.add_node(NodeId(2), Box::new(rec));
        sim.topology_mut()
            .connect(NodeId(1), NodeId(2), LinkParams::datacenter());
        // Two packets injected simultaneously: CP handles them serially.
        sim.inject(SimTime::ZERO, data_pkt(0, 1));
        sim.inject(SimTime::ZERO, data_pkt(0, 1));
        sim.run_until_quiescent(SimTime(10_000_000));
        let log = log.borrow();
        assert_eq!(log.len(), 2);
        let d = log[1].0 - log[0].0;
        // Second packet waited one full service slot behind the first.
        assert_eq!(d, cfg.cp.service_time);
        // First arrives no earlier than punt + service + link latency.
        assert!(log[0].0 >= SimTime::ZERO + cfg.cp.punt_latency + cfg.cp.service_time);
    }

    /// Recirculates once, then forwards.
    struct RecircOnce {
        next: NodeId,
    }
    impl DataPlaneProgram for RecircOnce {
        fn on_packet(&mut self, pkt: Packet, _dp: &mut DpView<'_>, eff: &mut Effects) {
            if pkt.src == pkt.dst {
                // second pass
                eff.forward(self.next, pkt.body);
            } else {
                eff.recirculate(pkt.body);
            }
        }
    }

    #[test]
    fn recirculation_reprocesses() {
        let mut sim = Simulator::new(1);
        let sw = Switch::new(
            SwitchConfig::default(),
            DataPlane::standard(),
            RecircOnce { next: NodeId(2) },
            NullControlApp,
        );
        sim.add_node(NodeId(1), Box::new(sw));
        let (rec, log) = swishmem_simnet::RecorderNode::new();
        sim.add_node(NodeId(2), Box::new(rec));
        sim.topology_mut()
            .connect(NodeId(1), NodeId(2), LinkParams::datacenter());
        sim.inject(SimTime::ZERO, data_pkt(0, 1));
        sim.run_until_quiescent(SimTime(10_000_000));
        assert_eq!(log.borrow().len(), 1);
        type Sw = Switch<RecircOnce, NullControlApp>;
        let sw = sim.node::<Sw>(NodeId(1)).unwrap();
        assert_eq!(sw.stats().recircs, 1);
        assert_eq!(sw.stats().pipeline_packets, 2);
    }

    /// Pktgen program that counts ticks in a register.
    struct TickCounter {
        reg: RegHandle,
    }
    impl DataPlaneProgram for TickCounter {
        fn on_packet(&mut self, _pkt: Packet, _dp: &mut DpView<'_>, _eff: &mut Effects) {}
        fn on_pktgen(&mut self, token: u64, dp: &mut DpView<'_>, _eff: &mut Effects) {
            dp.reg_add(self.reg, token as usize, 1);
        }
    }

    #[test]
    fn pktgen_fires_periodically() {
        let mut sim = Simulator::new(1);
        let mut dp = DataPlane::standard();
        let reg = dp.alloc_register("ticks", 2).unwrap();
        let mut sw = Switch::new(
            SwitchConfig::default(),
            dp,
            TickCounter { reg },
            NullControlApp,
        );
        sw.add_pktgen(SimDuration::millis(1), 0);
        sw.add_pktgen(SimDuration::millis(2), 1);
        sim.add_node(NodeId(1), Box::new(sw));
        sim.run_until(SimTime(10_000_000)); // 10 ms
        type Sw = Switch<TickCounter, NullControlApp>;
        let sw = sim.node::<Sw>(NodeId(1)).unwrap();
        assert_eq!(sw.dp().reg(reg).read(0), 10);
        assert_eq!(sw.dp().reg(reg).read(1), 5);
    }

    #[test]
    fn failure_wipes_state_and_recovery_restarts() {
        let mut sim = Simulator::new(1);
        let mut dp = DataPlane::standard();
        let reg = dp.alloc_register("cnt", 1).unwrap();
        let sw = Switch::new(
            SwitchConfig::default(),
            dp,
            CountAndForward {
                reg,
                next: NodeId(2),
            },
            NullControlApp,
        );
        sim.add_node(NodeId(1), Box::new(sw));
        let (rec, _log) = swishmem_simnet::RecorderNode::new();
        sim.add_node(NodeId(2), Box::new(rec));
        sim.topology_mut()
            .connect(NodeId(1), NodeId(2), LinkParams::datacenter());
        sim.inject(SimTime(0), data_pkt(0, 1));
        sim.inject(SimTime(1000), data_pkt(0, 1));
        sim.schedule_fail(SimTime(5000), NodeId(1));
        sim.schedule_recover(SimTime(10_000), NodeId(1));
        sim.inject(SimTime(20_000), data_pkt(0, 1));
        sim.run_until_quiescent(SimTime(1_000_000));
        type Sw = Switch<CountAndForward, NullControlApp>;
        let sw = sim.node::<Sw>(NodeId(1)).unwrap();
        // Pre-failure counts were wiped; only the post-recovery packet counts.
        assert_eq!(sw.dp().reg(reg).read(0), 1);
    }
}

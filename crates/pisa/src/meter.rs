//! Meter arrays: per-index token-bucket rate meters (§2), the primitive
//! the rate-limiter NF builds on.

use swishmem_simnet::SimTime;

/// The color a meter assigns to a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeterColor {
    /// Within the configured rate.
    Green,
    /// Exceeding the configured rate.
    Red,
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last: SimTime,
}

/// A named array of single-rate token-bucket meters.
#[derive(Debug, Clone)]
pub struct MeterArray {
    name: String,
    rate_bytes_per_sec: f64,
    burst_bytes: f64,
    cells: Vec<Bucket>,
}

impl MeterArray {
    /// Bytes of SRAM one meter cell costs (token count + timestamp).
    pub const CELL_BYTES: usize = 16;

    pub(crate) fn new(
        name: &str,
        len: usize,
        rate_bytes_per_sec: u64,
        burst_bytes: u64,
    ) -> MeterArray {
        assert!(len > 0, "meter array must have at least one cell");
        MeterArray {
            name: name.to_string(),
            rate_bytes_per_sec: rate_bytes_per_sec as f64,
            burst_bytes: burst_bytes as f64,
            cells: vec![
                Bucket {
                    tokens: burst_bytes as f64,
                    last: SimTime::ZERO
                };
                len
            ],
        }
    }

    /// Array name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of meters.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Meter a packet of `bytes` at `idx` (masked) at time `now`.
    pub fn meter(&mut self, idx: usize, now: SimTime, bytes: usize) -> MeterColor {
        let s = idx % self.cells.len();
        let cell = &mut self.cells[s];
        let elapsed = now.since(cell.last).as_secs_f64();
        cell.tokens = (cell.tokens + elapsed * self.rate_bytes_per_sec).min(self.burst_bytes);
        cell.last = now;
        if cell.tokens >= bytes as f64 {
            cell.tokens -= bytes as f64;
            MeterColor::Green
        } else {
            MeterColor::Red
        }
    }

    /// Refill all buckets to burst (failure/recovery).
    pub fn clear(&mut self) {
        for c in &mut self.cells {
            c.tokens = self.burst_bytes;
            c.last = SimTime::ZERO;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swishmem_simnet::SimDuration;

    #[test]
    fn burst_then_red() {
        // 1000 B/s rate, 100 B burst.
        let mut m = MeterArray::new("m", 1, 1000, 100);
        let t0 = SimTime::ZERO;
        assert_eq!(m.meter(0, t0, 60), MeterColor::Green);
        assert_eq!(m.meter(0, t0, 60), MeterColor::Red); // burst exhausted
    }

    #[test]
    fn refills_over_time() {
        let mut m = MeterArray::new("m", 1, 1000, 100);
        assert_eq!(m.meter(0, SimTime::ZERO, 100), MeterColor::Green);
        // After 50 ms, 50 bytes of tokens accumulated.
        let t = SimTime::ZERO + SimDuration::millis(50);
        assert_eq!(m.meter(0, t, 60), MeterColor::Red);
        assert_eq!(m.meter(0, t, 40), MeterColor::Green);
    }

    #[test]
    fn tokens_cap_at_burst() {
        let mut m = MeterArray::new("m", 1, 1_000_000, 100);
        // A long idle period must not bank more than the burst.
        let t = SimTime::ZERO + SimDuration::secs(10);
        assert_eq!(m.meter(0, t, 100), MeterColor::Green);
        assert_eq!(m.meter(0, t, 1), MeterColor::Red);
    }

    #[test]
    fn independent_cells() {
        let mut m = MeterArray::new("m", 2, 1000, 100);
        assert_eq!(m.meter(0, SimTime::ZERO, 100), MeterColor::Green);
        assert_eq!(m.meter(1, SimTime::ZERO, 100), MeterColor::Green);
    }
}

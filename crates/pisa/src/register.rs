//! Register arrays: the data-plane-writable state of a P4 program (§2).
//!
//! Two flavours are modeled:
//!
//! * [`RegisterArray`] — one machine word per cell, as produced by a P4
//!   `register<bit<64>>` extern.
//! * [`PairRegisterArray`] — a `(version, value)` pair per cell, updated
//!   atomically within one packet's processing, exactly the layout the
//!   paper's EWO implementation sketch calls for (§7: "pairs of
//!   registers ... the replication protocol can update both the version
//!   number and the value atomically").
//!
//! Indexing follows hardware semantics: indices are masked by the array
//! size (`idx % len`), never panicking, as a switch ALU would.

/// A named array of 64-bit registers.
#[derive(Debug, Clone)]
pub struct RegisterArray {
    name: String,
    cells: Vec<u64>,
}

impl RegisterArray {
    /// Bytes of SRAM one cell costs.
    pub const CELL_BYTES: usize = 8;

    /// Create an array of `len` zeroed cells. (Allocate through
    /// [`crate::dataplane::DataPlane`] so the memory budget is charged.)
    pub(crate) fn new(name: &str, len: usize) -> RegisterArray {
        assert!(len > 0, "register array must have at least one cell");
        RegisterArray {
            name: name.to_string(),
            cells: vec![0; len],
        }
    }

    /// Array name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Always false (arrays have at least one cell).
    pub fn is_empty(&self) -> bool {
        false
    }

    #[inline]
    fn slot(&self, idx: usize) -> usize {
        idx % self.cells.len()
    }

    /// Read cell `idx` (masked).
    #[inline]
    pub fn read(&self, idx: usize) -> u64 {
        self.cells[self.slot(idx)]
    }

    /// Write cell `idx` (masked).
    #[inline]
    pub fn write(&mut self, idx: usize, value: u64) {
        let s = self.slot(idx);
        self.cells[s] = value;
    }

    /// Wrapping add to cell `idx` (masked); returns the new value.
    #[inline]
    pub fn add(&mut self, idx: usize, delta: i64) -> u64 {
        let s = self.slot(idx);
        self.cells[s] = self.cells[s].wrapping_add(delta as u64);
        self.cells[s]
    }

    /// Zero every cell (failure/recovery wipes data-plane state).
    pub fn clear(&mut self) {
        self.cells.fill(0);
    }

    /// Iterate `(index, value)` over all cells.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.cells.iter().copied().enumerate()
    }
}

/// A named array of `(version, value)` register pairs.
#[derive(Debug, Clone)]
pub struct PairRegisterArray {
    name: String,
    cells: Vec<(u64, u64)>,
}

impl PairRegisterArray {
    /// Bytes of SRAM one pair costs.
    pub const CELL_BYTES: usize = 16;

    pub(crate) fn new(name: &str, len: usize) -> PairRegisterArray {
        assert!(len > 0, "register array must have at least one cell");
        PairRegisterArray {
            name: name.to_string(),
            cells: vec![(0, 0); len],
        }
    }

    /// Array name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }

    #[inline]
    fn slot(&self, idx: usize) -> usize {
        idx % self.cells.len()
    }

    /// Read the `(version, value)` pair at `idx`.
    #[inline]
    pub fn read(&self, idx: usize) -> (u64, u64) {
        self.cells[self.slot(idx)]
    }

    /// Atomically overwrite the pair at `idx`.
    #[inline]
    pub fn write(&mut self, idx: usize, version: u64, value: u64) {
        let s = self.slot(idx);
        self.cells[s] = (version, value);
    }

    /// Merge `(version, value)` into `idx` keeping the higher version
    /// (last-writer-wins); ties keep the local pair. Returns true if the
    /// incoming pair was applied.
    #[inline]
    pub fn merge_lww(&mut self, idx: usize, version: u64, value: u64) -> bool {
        let s = self.slot(idx);
        if version > self.cells[s].0 {
            self.cells[s] = (version, value);
            true
        } else {
            false
        }
    }

    /// Merge keeping the element-wise maximum of `(version, value)` —
    /// the G-counter slot merge ("a switch simply takes the larger of the
    /// local and received value for each element", §6.2). Returns true if
    /// anything changed.
    #[inline]
    pub fn merge_max(&mut self, idx: usize, version: u64, value: u64) -> bool {
        let s = self.slot(idx);
        let (v0, x0) = self.cells[s];
        let merged = (v0.max(version), x0.max(value));
        let changed = merged != self.cells[s];
        self.cells[s] = merged;
        changed
    }

    /// Zero every pair.
    pub fn clear(&mut self) {
        self.cells.fill((0, 0));
    }

    /// Iterate `(index, version, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64, u64)> + '_ {
        self.cells.iter().enumerate().map(|(i, &(v, x))| (i, v, x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_masked() {
        let mut r = RegisterArray::new("r", 4);
        r.write(1, 42);
        assert_eq!(r.read(1), 42);
        assert_eq!(r.read(5), 42); // 5 % 4 == 1: hardware index masking
        r.write(7, 9); // 7 % 4 == 3
        assert_eq!(r.read(3), 9);
    }

    #[test]
    fn add_wraps() {
        let mut r = RegisterArray::new("r", 1);
        assert_eq!(r.add(0, 5), 5);
        assert_eq!(r.add(0, -3), 2);
        r.write(0, u64::MAX);
        assert_eq!(r.add(0, 1), 0);
    }

    #[test]
    fn clear_zeroes() {
        let mut r = RegisterArray::new("r", 3);
        r.write(0, 1);
        r.write(2, 2);
        r.clear();
        assert!(r.iter().all(|(_, v)| v == 0));
    }

    #[test]
    fn pair_atomic_write_and_lww_merge() {
        let mut p = PairRegisterArray::new("p", 2);
        p.write(0, 5, 100);
        assert_eq!(p.read(0), (5, 100));
        // Older version rejected.
        assert!(!p.merge_lww(0, 4, 999));
        assert_eq!(p.read(0), (5, 100));
        // Equal version rejected (local wins ties).
        assert!(!p.merge_lww(0, 5, 999));
        // Newer version applied atomically.
        assert!(p.merge_lww(0, 6, 200));
        assert_eq!(p.read(0), (6, 200));
    }

    #[test]
    fn pair_max_merge_is_elementwise() {
        let mut p = PairRegisterArray::new("p", 1);
        p.write(0, 3, 50);
        assert!(p.merge_max(0, 2, 80)); // value rises, version stays
        assert_eq!(p.read(0), (3, 80));
        assert!(p.merge_max(0, 7, 10)); // version rises, value stays
        assert_eq!(p.read(0), (7, 80));
        assert!(!p.merge_max(0, 1, 1)); // nothing changes
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_length_rejected() {
        let _ = RegisterArray::new("r", 0);
    }
}

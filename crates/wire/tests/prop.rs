//! Property tests for the wire codecs: every generated value must survive
//! an encode/decode round trip, and decoders must never panic on arbitrary
//! bytes.

use proptest::prelude::*;
use std::net::Ipv4Addr;
use swishmem_wire::cursor::{Reader, Writer};
use swishmem_wire::l4::TcpFlags;
use swishmem_wire::swish::*;
use swishmem_wire::{DataPacket, FlowKey, NodeId, Packet, SwishMsg};

fn arb_node() -> impl Strategy<Value = NodeId> {
    prop_oneof![9 => (0u16..1000).prop_map(NodeId), 1 => Just(NodeId::CONTROLLER)]
}

fn arb_flow() -> impl Strategy<Value = FlowKey> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        prop_oneof![Just(6u8), Just(17u8)],
    )
        .prop_map(|(s, d, sp, dp, proto)| FlowKey {
            src: Ipv4Addr::from(s),
            dst: Ipv4Addr::from(d),
            src_port: sp,
            dst_port: dp,
            proto,
        })
}

fn arb_data_packet() -> impl Strategy<Value = DataPacket> {
    (arb_flow(), any::<u8>(), any::<u32>(), 0u16..1400).prop_map(|(flow, fl, seq, len)| {
        DataPacket {
            flow,
            tcp_flags: if flow.proto == 6 {
                TcpFlags::from_raw(fl & 0x17)
            } else {
                TcpFlags::default()
            },
            flow_seq: if flow.proto == 6 { seq } else { 0 },
            payload_len: len,
        }
    })
}

fn arb_sync_entry() -> impl Strategy<Value = SyncEntry> {
    (any::<u32>(), any::<u8>(), any::<u64>(), any::<u64>()).prop_map(
        |(key, slot, version, value)| SyncEntry {
            key,
            slot,
            version,
            value,
        },
    )
}

fn arb_msg() -> impl Strategy<Value = SwishMsg> {
    prop_oneof![
        (
            any::<u64>(),
            arb_node(),
            any::<u32>(),
            any::<u16>(),
            any::<u32>(),
            any::<u64>(),
            prop_oneof![
                any::<u64>().prop_map(WriteOp::Set),
                any::<i64>().prop_map(WriteOp::Add)
            ]
        )
            .prop_map(
                |(write_id, writer, epoch, reg, key, seq, op)| SwishMsg::Write(WriteRequest {
                    write_id,
                    writer,
                    epoch,
                    reg,
                    key,
                    seq,
                    op,
                    trace: TraceId(write_id ^ seq)
                })
            ),
        (
            any::<u64>(),
            arb_node(),
            any::<u16>(),
            any::<u32>(),
            any::<u64>()
        )
            .prop_map(|(write_id, writer, reg, key, seq)| SwishMsg::Ack(WriteAck {
                write_id,
                writer,
                reg,
                key,
                seq,
                trace: TraceId(write_id.rotate_left(17))
            })),
        (any::<u32>(), any::<u16>(), any::<u32>(), any::<u64>()).prop_map(
            |(epoch, reg, key, seq)| SwishMsg::Clear(PendingClear {
                epoch,
                reg,
                key,
                seq
            })
        ),
        (
            any::<u16>(),
            arb_node(),
            prop::collection::vec(arb_sync_entry(), 0..20)
        )
            .prop_map(|(reg, origin, entries)| SwishMsg::Sync(SyncUpdate {
                reg,
                origin,
                trace: TraceId::new(origin, u64::from(reg)),
                entries: entries.into()
            })),
        (
            any::<u16>(),
            arb_node(),
            any::<bool>(),
            prop::collection::vec((any::<u32>(), any::<u64>(), any::<u64>()), 0..20)
        )
            .prop_map(
                |(reg, origin, last, es)| SwishMsg::SnapChunk(SnapshotChunk {
                    reg,
                    origin,
                    last,
                    entries: es
                        .into_iter()
                        .map(|(key, seq, value)| SnapEntry { key, seq, value })
                        .collect(),
                })
            ),
        (
            any::<u32>(),
            prop::collection::vec(arb_node(), 0..8),
            prop::collection::vec(arb_node(), 0..4)
        )
            .prop_map(|(epoch, chain, learners)| SwishMsg::Chain(ChainConfig {
                epoch,
                chain,
                learners
            })),
        (any::<u32>(), prop::collection::vec(arb_node(), 0..8))
            .prop_map(|(epoch, members)| SwishMsg::Group(GroupConfig { epoch, members })),
        (arb_node(), any::<u32>())
            .prop_map(|(from, epoch)| SwishMsg::Heartbeat(Heartbeat { from, epoch })),
        (arb_node(), any::<u16>(), any::<u32>())
            .prop_map(|(from, reg, key)| SwishMsg::DirLookup(DirLookup { from, reg, key })),
        (
            any::<u16>(),
            any::<u32>(),
            prop::collection::vec(arb_node(), 0..8)
        )
            .prop_map(|(reg, key, owners)| SwishMsg::DirReply(DirReply {
                reg,
                key,
                owners
            })),
        (arb_node(), arb_data_packet()).prop_map(|(origin, inner)| SwishMsg::ReadForward(
            ReadForward {
                origin,
                trace: TraceId::new(origin, 1),
                inner
            }
        )),
    ]
}

proptest! {
    #[test]
    fn swish_msg_round_trip(msg in arb_msg()) {
        let mut w = Writer::new();
        msg.encode(&mut w);
        let buf = w.finish();
        prop_assert_eq!(buf.len(), msg.wire_len());
        let mut r = Reader::new(&buf);
        let back = SwishMsg::decode(&mut r).unwrap();
        r.expect_end().unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn data_packet_round_trip(dp in arb_data_packet()) {
        let mut w = Writer::new();
        dp.encode(&mut w);
        let buf = w.finish();
        prop_assert_eq!(buf.len(), dp.wire_len());
        let mut r = Reader::new(&buf);
        let back = DataPacket::decode(&mut r).unwrap();
        r.expect_end().unwrap();
        prop_assert_eq!(back, dp);
    }

    #[test]
    fn full_packet_round_trip(src in arb_node(), dst in arb_node(), dp in arb_data_packet()) {
        let p = Packet::data(src, dst, dp);
        let bytes = p.to_bytes();
        prop_assert_eq!(bytes.len(), p.wire_len());
        prop_assert_eq!(Packet::from_bytes(&bytes).unwrap(), p);
    }

    #[test]
    fn decoder_never_panics_on_noise(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = Packet::from_bytes(&bytes);
        let mut r = Reader::new(&bytes);
        let _ = SwishMsg::decode(&mut r);
    }

    #[test]
    fn truncation_always_fails_cleanly(msg in arb_msg(), frac in 0.0f64..1.0) {
        let mut w = Writer::new();
        msg.encode(&mut w);
        let buf = w.finish();
        let cut = ((buf.len() as f64) * frac) as usize;
        if cut < buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            // Decoding a strict prefix must error (never succeed with
            // spurious data) except when the prefix is itself empty of the
            // variable part... it must simply not panic and not round-trip.
            if let Ok(back) = SwishMsg::decode(&mut r) {
                prop_assert!(r.expect_end().is_err() || back != msg);
            }
        }
    }

    #[test]
    fn flow_canonical_hash_direction_insensitive(flow in arb_flow()) {
        prop_assert_eq!(flow.canonical_hash64(), flow.reversed().canonical_hash64());
    }
}

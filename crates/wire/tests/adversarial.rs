//! Adversarial decoding: hostile length fields, truncations, and header
//! mutations must produce clean errors — never panics, never unbounded
//! allocation. (The simulator's corruption faults can hand receivers any
//! of these shapes.)

use swishmem_wire::cursor::{Reader, Writer};
use swishmem_wire::swish::{SyncEntry, SyncUpdate, TraceId, WIRE_VERSION};
use swishmem_wire::{NodeId, Packet, SwishMsg};

/// A SyncUpdate frame whose entry-count field claims far more entries
/// than the buffer carries. The decoder must fail on truncation, not
/// pre-allocate for the claimed count.
#[test]
fn sync_update_with_hostile_entry_count() {
    let mut w = Writer::new();
    w.u8(WIRE_VERSION);
    w.u8(0x04); // TAG_SYNC
    w.u16(3); // reg
    w.u16(0); // origin
    w.u64(0); // trace
    w.u16(u16::MAX); // claims 65535 entries...
    w.u64(0); // ...but carries 8 junk bytes
    let buf = w.finish();
    let mut r = Reader::new(&buf);
    let err = SwishMsg::decode(&mut r);
    assert!(err.is_err(), "hostile count must not decode: {err:?}");
}

#[test]
fn chain_config_with_hostile_member_count() {
    let mut w = Writer::new();
    w.u8(WIRE_VERSION);
    w.u8(0x08); // TAG_CHAIN
    w.u32(1); // epoch
    w.u16(u16::MAX); // claims 65535 chain members
    let buf = w.finish();
    let mut r = Reader::new(&buf);
    assert!(SwishMsg::decode(&mut r).is_err());
}

/// Every single-byte mutation of a valid frame either decodes to
/// *something* well-formed or errors — it never panics. (IPv4 headers
/// additionally checksum-fail on most mutations.)
#[test]
fn single_byte_mutations_never_panic() {
    let msg = SwishMsg::Sync(SyncUpdate {
        reg: 2,
        origin: NodeId(1),
        trace: TraceId::new(NodeId(1), 3),
        entries: vec![
            SyncEntry {
                key: 1,
                slot: 0,
                version: 10,
                value: 20,
            },
            SyncEntry {
                key: 2,
                slot: 1,
                version: 30,
                value: 40,
            },
        ]
        .into(),
    });
    let pkt = Packet::swish(NodeId(0), NodeId(1), msg);
    let bytes = pkt.to_bytes();
    for i in 0..bytes.len() {
        for flip in [0x01u8, 0x80, 0xff] {
            let mut m = bytes.clone();
            m[i] ^= flip;
            let _ = Packet::from_bytes(&m); // must not panic
        }
    }
}

/// Truncating a frame at every possible length errors cleanly.
#[test]
fn every_truncation_point_errors() {
    let pkt = Packet::swish(
        NodeId(3),
        NodeId(4),
        SwishMsg::Sync(SyncUpdate {
            reg: 1,
            origin: NodeId(3),
            trace: TraceId::NONE,
            entries: vec![SyncEntry {
                key: 9,
                slot: 2,
                version: 7,
                value: 8,
            }]
            .into(),
        }),
    );
    let bytes = pkt.to_bytes();
    for cut in 0..bytes.len() {
        assert!(
            Packet::from_bytes(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes should not decode"
        );
    }
    assert!(Packet::from_bytes(&bytes).is_ok());
}

/// Empty and pathological inputs.
#[test]
fn degenerate_inputs() {
    assert!(Packet::from_bytes(&[]).is_err());
    assert!(Packet::from_bytes(&[0u8; 14]).is_err()); // eth header of zeros
    let big_junk = vec![0xa5u8; 64 * 1024];
    assert!(Packet::from_bytes(&big_junk).is_err());
}

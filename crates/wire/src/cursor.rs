//! Bounds-checked big-endian reader/writer used by every codec.
//!
//! All wire formats in this workspace are big-endian (network byte order),
//! matching the conventions of the real protocols being modeled.

use crate::WireError;
use bytes::{BufMut, BytesMut};

/// A bounds-checked big-endian reader over a byte slice.
///
/// Unlike `bytes::Buf`, every read returns a `Result` carrying the offset
/// at which truncation occurred, which makes decode errors diagnosable.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                offset: self.pos,
                needed: n - self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a big-endian u16.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Read a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a big-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a big-endian i64 (two's complement).
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }

    /// Read exactly `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Fail unless the reader is exhausted. Used by top-level decoders to
    /// reject trailing garbage.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::LengthMismatch {
                declared: self.pos,
                actual: self.buf.len(),
            })
        }
    }
}

/// A big-endian writer appending to a `BytesMut`.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Create an empty writer.
    pub fn new() -> Self {
        Writer {
            buf: BytesMut::new(),
        }
    }

    /// Create a writer with a pre-reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Writer {
            buf: BytesMut::with_capacity(n),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Append a big-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.put_u16(v);
    }

    /// Append a big-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Append a big-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.put_u64(v);
    }

    /// Append a big-endian i64 (two's complement).
    pub fn i64(&mut self, v: i64) {
        self.buf.put_u64(v as u64);
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.put_slice(b);
    }

    /// Overwrite a previously written big-endian u16 at `offset` (used for
    /// checksum and length back-patching).
    pub fn patch_u16(&mut self, offset: usize, v: u16) {
        let b = v.to_be_bytes();
        self.buf[offset] = b[0];
        self.buf[offset + 1] = b[1];
    }

    /// View of the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer, yielding the bytes.
    pub fn finish(self) -> BytesMut {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = Writer::new();
        w.u8(0xab);
        w.u16(0x1234);
        w.u32(0xdead_beef);
        w.u64(0x0102_0304_0506_0708);
        w.i64(-42);
        w.bytes(&[9, 9, 9]);

        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 0x0102_0304_0506_0708);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.bytes(3).unwrap(), &[9, 9, 9]);
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn truncation_reports_offset() {
        let buf = [1u8, 2, 3];
        let mut r = Reader::new(&buf);
        r.u16().unwrap();
        let err = r.u32().unwrap_err();
        assert_eq!(
            err,
            WireError::Truncated {
                offset: 2,
                needed: 3
            }
        );
    }

    #[test]
    fn expect_end_rejects_trailing_bytes() {
        let buf = [0u8; 4];
        let mut r = Reader::new(&buf);
        r.u16().unwrap();
        assert!(matches!(
            r.expect_end(),
            Err(WireError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn patch_u16_overwrites_in_place() {
        let mut w = Writer::new();
        w.u16(0);
        w.u8(7);
        w.patch_u16(0, 0xbeef);
        assert_eq!(w.as_slice(), &[0xbe, 0xef, 7]);
    }
}

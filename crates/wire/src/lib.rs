//! # swishmem-wire
//!
//! Packet formats and protocol message codecs for the SwiShmem
//! reproduction.
//!
//! This crate is the lowest layer of the workspace: it defines
//!
//! * minimal but real header codecs (Ethernet, IPv4, L4) sufficient for the
//!   five-tuple state the network functions key on,
//! * the [`FlowKey`] five-tuple and its canonical hashing,
//! * the SwiShmem replication protocol messages ([`swish::SwishMsg`]):
//!   chain-replication write requests/acks, pending-bit clears, EWO sync
//!   updates, snapshot transfer, chain/group configuration and heartbeats,
//! * the composed simulation [`Packet`] carrying either a data-plane packet
//!   or a protocol message, with a faithful wire length.
//!
//! Every codec is a real byte-level encoder/decoder (round-trip tested,
//! including property tests); the simulator passes the structured form
//! between nodes for speed but sizes links by the true encoded length.

pub mod checksum;
pub mod cursor;
pub mod error;
pub mod ethernet;
pub mod flow;
pub mod ipv4;
pub mod l4;
pub mod packet;
pub mod shared;
pub mod swish;

pub use error::WireError;
pub use flow::FlowKey;
pub use packet::{DataPacket, Packet, PacketBody};
pub use shared::Shared;
pub use swish::{SwishMsg, TraceId};

/// Identifier of a node (switch, host, or controller) in the simulated
/// network. Node ids appear on the wire inside SwiShmem protocol messages
/// (writer ids, chain membership, counter slots), which is why they are
/// defined at the wire layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The controller's conventional node id in deployments built by the
    /// `swishmem` crate.
    pub const CONTROLLER: NodeId = NodeId(u16::MAX);

    /// Raw index, usable as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == NodeId::CONTROLLER {
            write!(f, "ctrl")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(NodeId::CONTROLLER.to_string(), "ctrl");
    }

    #[test]
    fn node_id_index() {
        assert_eq!(NodeId(7).index(), 7);
    }
}

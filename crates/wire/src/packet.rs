//! The composed simulation packet.
//!
//! A [`Packet`] is what travels over simulated links: an Ethernet frame
//! whose payload is either a [`DataPacket`] (NF traffic: IPv4 + L4 headers
//! plus opaque payload) or a [`SwishMsg`] (replication protocol traffic
//! under the experimental `Swish` EtherType).
//!
//! The simulator passes packets in structured form but charges link
//! bandwidth by [`Packet::wire_len`], which equals the length of
//! [`Packet::to_bytes`] exactly (asserted by tests), so the modeled
//! byte-costs are those of the real encodings.

use crate::cursor::{Reader, Writer};
use crate::ethernet::{EtherType, EthernetHeader, MacAddr, ETHERNET_HEADER_LEN};
use crate::flow::FlowKey;
use crate::ipv4::{IpProto, Ipv4Header, IPV4_HEADER_LEN};
use crate::l4::{TcpFlags, TcpLiteHeader, UdpHeader, UDP_HEADER_LEN};
use crate::swish::SwishMsg;
use crate::{NodeId, WireError};

/// An NF data packet: the parsed headers a PISA parser would extract, plus
/// the payload length (payload bytes are zero-filled on encode; no NF here
/// inspects payload content, only its size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataPacket {
    /// The five-tuple.
    pub flow: FlowKey,
    /// TCP flags (all-zero for UDP).
    pub tcp_flags: TcpFlags,
    /// Per-flow packet index, for diagnostics and per-connection
    /// consistency checking in the experiments.
    pub flow_seq: u32,
    /// Application payload length in bytes.
    pub payload_len: u16,
}

impl DataPacket {
    /// Construct a TCP data packet.
    pub fn tcp(flow: FlowKey, flags: TcpFlags, flow_seq: u32, payload_len: u16) -> DataPacket {
        debug_assert_eq!(flow.proto, IpProto::Tcp.raw());
        DataPacket {
            flow,
            tcp_flags: flags,
            flow_seq,
            payload_len,
        }
    }

    /// Construct a UDP data packet.
    pub fn udp(flow: FlowKey, flow_seq: u32, payload_len: u16) -> DataPacket {
        debug_assert_eq!(flow.proto, IpProto::Udp.raw());
        DataPacket {
            flow,
            tcp_flags: TcpFlags::default(),
            flow_seq,
            payload_len,
        }
    }

    fn l4_len(&self) -> usize {
        if self.flow.proto == IpProto::Tcp.raw() {
            TcpLiteHeader::WIRE_LEN
        } else {
            UDP_HEADER_LEN
        }
    }

    /// Encoded length (IPv4 + L4 + payload).
    pub fn wire_len(&self) -> usize {
        IPV4_HEADER_LEN + self.l4_len() + self.payload_len as usize
    }

    /// Append IPv4 + L4 headers + zero payload to `w`.
    pub fn encode(&self, w: &mut Writer) {
        let ip = Ipv4Header {
            total_len: self.wire_len() as u16,
            ident: (self.flow_seq & 0xffff) as u16,
            ttl: 64,
            proto: IpProto::from_raw(self.flow.proto),
            src: self.flow.src,
            dst: self.flow.dst,
        };
        ip.encode(w);
        if self.flow.proto == IpProto::Tcp.raw() {
            TcpLiteHeader {
                src_port: self.flow.src_port,
                dst_port: self.flow.dst_port,
                seq: self.flow_seq,
                ack: 0,
                flags: self.tcp_flags,
            }
            .encode(w);
        } else {
            UdpHeader {
                src_port: self.flow.src_port,
                dst_port: self.flow.dst_port,
                length: (UDP_HEADER_LEN + self.payload_len as usize) as u16,
            }
            .encode(w);
        }
        // Zero-filled payload.
        w.bytes(&vec![0u8; self.payload_len as usize]);
    }

    /// Decode IPv4 + L4 headers + payload from `r`.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let ip = Ipv4Header::decode(r)?;
        let (src_port, dst_port, flags, flow_seq, l4_len) = match ip.proto {
            IpProto::Tcp => {
                let t = TcpLiteHeader::decode(r)?;
                (
                    t.src_port,
                    t.dst_port,
                    t.flags,
                    t.seq,
                    TcpLiteHeader::WIRE_LEN,
                )
            }
            IpProto::Udp => {
                let u = UdpHeader::decode(r)?;
                (
                    u.src_port,
                    u.dst_port,
                    TcpFlags::default(),
                    0,
                    UDP_HEADER_LEN,
                )
            }
            IpProto::Other(v) => {
                return Err(WireError::InvalidField {
                    field: "proto",
                    value: u64::from(v),
                })
            }
        };
        let payload_len = (ip.total_len as usize)
            .checked_sub(IPV4_HEADER_LEN + l4_len)
            .ok_or(WireError::InvalidField {
                field: "total_len",
                value: u64::from(ip.total_len),
            })?;
        let _payload = r.bytes(payload_len)?;
        Ok(DataPacket {
            flow: FlowKey {
                src: ip.src,
                dst: ip.dst,
                src_port,
                dst_port,
                proto: ip.proto.raw(),
            },
            tcp_flags: flags,
            flow_seq,
            payload_len: payload_len as u16,
        })
    }
}

/// The payload of a simulated Ethernet frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketBody {
    /// NF data traffic.
    Data(DataPacket),
    /// SwiShmem replication protocol traffic.
    Swish(SwishMsg),
}

/// A frame traveling over a simulated link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Node that transmitted the frame (stamped by the simulator on send).
    pub src: NodeId,
    /// Node the frame is addressed to.
    pub dst: NodeId,
    /// The payload.
    pub body: PacketBody,
}

impl Packet {
    /// Wrap a data packet.
    pub fn data(src: NodeId, dst: NodeId, dp: DataPacket) -> Packet {
        Packet {
            src,
            dst,
            body: PacketBody::Data(dp),
        }
    }

    /// Wrap a protocol message.
    pub fn swish(src: NodeId, dst: NodeId, msg: SwishMsg) -> Packet {
        Packet {
            src,
            dst,
            body: PacketBody::Swish(msg),
        }
    }

    /// Full frame length in bytes: Ethernet header + body.
    pub fn wire_len(&self) -> usize {
        ETHERNET_HEADER_LEN
            + match &self.body {
                PacketBody::Data(d) => d.wire_len(),
                PacketBody::Swish(m) => m.wire_len(),
            }
    }

    /// Serialize to the full frame bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.wire_len());
        let ethertype = match &self.body {
            PacketBody::Data(_) => EtherType::Ipv4,
            PacketBody::Swish(_) => EtherType::Swish,
        };
        EthernetHeader {
            dst: MacAddr::for_node(self.dst.0),
            src: MacAddr::for_node(self.src.0),
            ethertype,
        }
        .encode(&mut w);
        match &self.body {
            PacketBody::Data(d) => d.encode(&mut w),
            PacketBody::Swish(m) => m.encode(&mut w),
        }
        w.finish().to_vec()
    }

    /// Parse a full frame.
    pub fn from_bytes(buf: &[u8]) -> Result<Packet, WireError> {
        let mut r = Reader::new(buf);
        let eth = EthernetHeader::decode(&mut r)?;
        let node_of = |mac: MacAddr| -> Result<NodeId, WireError> {
            if mac.0[0] != 0x02 || mac.0[1] != 0 || mac.0[2] != 0 || mac.0[3] != 0 {
                return Err(WireError::InvalidField {
                    field: "mac",
                    value: u64::from(u16::from_be_bytes([mac.0[4], mac.0[5]])),
                });
            }
            Ok(NodeId(u16::from_be_bytes([mac.0[4], mac.0[5]])))
        };
        let dst = node_of(eth.dst)?;
        let src = node_of(eth.src)?;
        let body = match eth.ethertype {
            EtherType::Ipv4 => PacketBody::Data(DataPacket::decode(&mut r)?),
            EtherType::Swish => PacketBody::Swish(SwishMsg::decode(&mut r)?),
            EtherType::Other(v) => {
                return Err(WireError::InvalidField {
                    field: "ethertype",
                    value: u64::from(v),
                })
            }
        };
        r.expect_end()?;
        Ok(Packet { src, dst, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swish::{Heartbeat, SyncEntry, SyncUpdate};
    use std::net::Ipv4Addr;

    fn tcp_pkt() -> Packet {
        Packet::data(
            NodeId(1),
            NodeId(2),
            DataPacket::tcp(
                FlowKey::tcp(
                    Ipv4Addr::new(10, 0, 0, 1),
                    4000,
                    Ipv4Addr::new(10, 0, 0, 2),
                    80,
                ),
                TcpFlags::syn(),
                7,
                120,
            ),
        )
    }

    fn udp_pkt() -> Packet {
        Packet::data(
            NodeId(3),
            NodeId(4),
            DataPacket::udp(
                FlowKey::udp(
                    Ipv4Addr::new(10, 0, 1, 1),
                    5000,
                    Ipv4Addr::new(10, 0, 1, 2),
                    53,
                ),
                0,
                40,
            ),
        )
    }

    fn swish_pkt() -> Packet {
        Packet::swish(
            NodeId(0),
            NodeId(1),
            SwishMsg::Sync(SyncUpdate {
                reg: 2,
                origin: NodeId(0),
                trace: crate::TraceId::NONE,
                entries: vec![SyncEntry {
                    key: 1,
                    slot: 0,
                    version: 3,
                    value: 4,
                }]
                .into(),
            }),
        )
    }

    #[test]
    fn round_trip_data_tcp() {
        let p = tcp_pkt();
        assert_eq!(Packet::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn round_trip_data_udp() {
        let p = udp_pkt();
        assert_eq!(Packet::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn round_trip_swish() {
        let p = swish_pkt();
        assert_eq!(Packet::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn wire_len_matches_encoding() {
        for p in [tcp_pkt(), udp_pkt(), swish_pkt()] {
            assert_eq!(
                p.to_bytes().len(),
                p.wire_len(),
                "wire_len mismatch for {p:?}"
            );
        }
        let hb = Packet::swish(
            NodeId(9),
            NodeId::CONTROLLER,
            SwishMsg::Heartbeat(Heartbeat {
                from: NodeId(9),
                epoch: 3,
            }),
        );
        assert_eq!(hb.to_bytes().len(), hb.wire_len());
    }

    #[test]
    fn controller_mac_round_trips() {
        let p = Packet::swish(
            NodeId::CONTROLLER,
            NodeId(0),
            SwishMsg::Heartbeat(Heartbeat {
                from: NodeId::CONTROLLER,
                epoch: 0,
            }),
        );
        assert_eq!(Packet::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = tcp_pkt().to_bytes();
        bytes.push(0xff);
        assert!(Packet::from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_foreign_mac() {
        let mut bytes = tcp_pkt().to_bytes();
        bytes[0] = 0xaa; // not our locally-administered prefix
        assert!(Packet::from_bytes(&bytes).is_err());
    }
}

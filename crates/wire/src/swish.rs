//! SwiShmem replication-protocol messages (§6 of the paper).
//!
//! Message inventory:
//!
//! * **SRO / ERO (chain replication, §6.1)** — [`WriteRequest`] (writer →
//!   head, head → successor, ...), [`WriteAck`] (tail → writer's control
//!   plane), [`PendingClear`] (tail → chain multicast, clears pending bits),
//!   [`ReadForward`] (a data packet tunneled to the tail when its read hit a
//!   pending register).
//! * **EWO (§6.2)** — [`SyncUpdate`]: a batch of `(key, slot, version,
//!   value)` entries, sent both eagerly after a local write (egress
//!   mirroring + multicast) and by the periodic packet-generator sync task.
//! * **Failure handling (§6.3)** — [`Heartbeat`], [`ChainConfig`],
//!   [`GroupConfig`], [`SnapshotRequest`]/[`SnapshotChunk`]/
//!   [`CatchupComplete`] for new-replica recovery.
//! * **Directory extension (§7/§9)** — [`DirLookup`]/[`DirReply`] for the
//!   partitioned-state directory service.
//!
//! All messages are versioned with [`WIRE_VERSION`] and carry a one-byte
//! tag; codecs are strict (trailing bytes rejected by the packet layer).

use crate::cursor::{Reader, Writer};
use crate::packet::DataPacket;
use crate::shared::Shared;
use crate::{NodeId, WireError};

/// Protocol version spoken by this library.
///
/// Version 2 added the in-band [`TraceId`] carried by [`WriteRequest`],
/// [`WriteAck`], [`ReadForward`] and [`SyncUpdate`].
pub const WIRE_VERSION: u8 = 2;

/// Causal trace identifier for one logical operation (an SRO/ERO write, a
/// forwarded read, an EWO sync round).
///
/// Assigned once at NF ingress by the switch that originates the operation
/// and carried in-band through every protocol message that operation
/// spawns, so an observer can stitch the cross-switch phases (punt, CP
/// queueing, retries, chain hops, ack, release) back into one span tree.
/// `0` is reserved for "untraced" ([`TraceId::NONE`]); codecs still round-
/// trip it like any other value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The untraced sentinel. Span emission is a no-op for this id.
    pub const NONE: TraceId = TraceId(0);

    /// Build an id unique across the deployment: originating node in the
    /// top 16 bits (offset by one so node 0 still yields nonzero ids even
    /// for counter 0 — though counters start at 1), counter below.
    pub fn new(origin: NodeId, counter: u64) -> TraceId {
        TraceId(((u64::from(origin.0) + 1) << 48) | (counter & ((1 << 48) - 1)))
    }

    /// True unless this is [`TraceId::NONE`].
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_some() {
            write!(f, "t{:x}", self.0)
        } else {
            f.write_str("t-none")
        }
    }
}

/// Register (array) identifier, unique within a deployment.
pub type RegId = u16;

/// Key (index) within a register array.
pub type Key = u32;

/// A write operation on a register value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOp {
    /// Overwrite the value. The only operation SRO/ERO chains replicate
    /// (retried writes are then idempotent; see DESIGN.md).
    Set(u64),
    /// Commutative increment, used by EWO counter registers.
    Add(i64),
}

impl WriteOp {
    fn encode(&self, w: &mut Writer) {
        match self {
            WriteOp::Set(v) => {
                w.u8(0);
                w.u64(*v);
            }
            WriteOp::Add(d) => {
                w.u8(1);
                w.i64(*d);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(WriteOp::Set(r.u64()?)),
            1 => Ok(WriteOp::Add(r.i64()?)),
            t => Err(WireError::UnknownTag(t)),
        }
    }
}

/// A chain-replication write request (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRequest {
    /// Writer-unique id, used by the writer's control plane to match acks
    /// and release the buffered output packet.
    pub write_id: u64,
    /// The switch whose control plane originated the write.
    pub writer: NodeId,
    /// Chain-configuration epoch the writer believes is current.
    pub epoch: u32,
    /// Target register.
    pub reg: RegId,
    /// Target key within the register.
    pub key: Key,
    /// Per-key sequence number. `0` means "not yet sequenced": the head of
    /// the chain assigns the sequence number on first contact.
    pub seq: u64,
    /// The operation.
    pub op: WriteOp,
    /// Causal trace of the logical write this request belongs to
    /// ([`TraceId::NONE`] when tracing is off).
    pub trace: TraceId,
}

/// Acknowledgment from the tail of the chain to the writer (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteAck {
    /// Echo of [`WriteRequest::write_id`].
    pub write_id: u64,
    /// Echo of the originating writer, used for routing the ack.
    pub writer: NodeId,
    /// Register written.
    pub reg: RegId,
    /// Key written.
    pub key: Key,
    /// Sequence number the head assigned.
    pub seq: u64,
    /// Echo of [`WriteRequest::trace`].
    pub trace: TraceId,
}

/// Tail → chain multicast clearing the pending bit for a completed write
/// (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingClear {
    /// Chain epoch.
    pub epoch: u32,
    /// Register.
    pub reg: RegId,
    /// Key.
    pub key: Key,
    /// Sequence number of the completed write; a pending bit is only
    /// cleared if no later write has since marked it again.
    pub seq: u64,
}

/// One `(key, slot, version, value)` entry of an EWO synchronization
/// message (§6.2, §7: "one register array for each switch in the replica
/// group; each register array stores a version number and a value").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncEntry {
    /// Key within the register.
    pub key: Key,
    /// Which replica's slot this entry describes (index into the replica
    /// group). For CRDT counters a switch only ever *originates* entries
    /// for its own slot, but relayed periodic syncs carry all slots.
    pub slot: u8,
    /// Version number (LWW timestamp+tiebreak, or monotonic per-slot
    /// counter for CRDTs).
    pub version: u64,
    /// The value.
    pub value: u64,
}

/// An EWO update batch (§6.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncUpdate {
    /// Register these entries belong to.
    pub reg: RegId,
    /// Switch that sent this batch.
    pub origin: NodeId,
    /// Causal trace of the sync round (or mirror burst) that produced this
    /// batch ([`TraceId::NONE`] when tracing is off).
    pub trace: TraceId,
    /// The entries. Shared so multicast fan-out / mirroring clone by
    /// reference-count bump; receivers must not mutate them in place.
    pub entries: Shared<SyncEntry>,
}

/// Controller → control-plane request to stream a snapshot to `target`
/// (§6.3 recovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotRequest {
    /// The recovering switch to catch up.
    pub target: NodeId,
    /// Epoch of the configuration that includes `target`.
    pub epoch: u32,
}

/// One snapshot entry: key, the sequence number at snapshot time, value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapEntry {
    /// Key.
    pub key: Key,
    /// Sequence number guarding replay ("writes contain the sequence number
    /// at the time of the snapshot, to prevent overwriting new values with
    /// old ones", §6.3).
    pub seq: u64,
    /// Value at snapshot time.
    pub value: u64,
}

/// A chunk of snapshot state streamed through the data plane (§6.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotChunk {
    /// Register this chunk belongs to.
    pub reg: RegId,
    /// Switch streaming the snapshot.
    pub origin: NodeId,
    /// Entries in this chunk. Shared for the same zero-copy reason as
    /// [`SyncUpdate::entries`].
    pub entries: Shared<SnapEntry>,
    /// True on the final chunk of the final register.
    pub last: bool,
}

/// Recovering switch → controller: catch-up finished, ready to serve
/// (§6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatchupComplete {
    /// The switch that finished catching up.
    pub node: NodeId,
    /// Epoch it caught up under.
    pub epoch: u32,
}

/// Controller → all switches: the SRO/ERO chain for the new epoch (§6.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainConfig {
    /// Monotonically increasing configuration epoch.
    pub epoch: u32,
    /// Chain order, head first, tail last.
    pub chain: Vec<NodeId>,
    /// Switches present in the deployment but not yet part of the chain
    /// (recovering nodes receiving writes but not serving reads).
    pub learners: Vec<NodeId>,
}

/// Controller → all switches: EWO multicast replica group membership
/// (§6.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupConfig {
    /// Monotonically increasing configuration epoch.
    pub epoch: u32,
    /// Current members of the replica group.
    pub members: Vec<NodeId>,
}

/// Switch control plane → controller liveness beacon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heartbeat {
    /// Sending switch.
    pub from: NodeId,
    /// Epoch the sender is operating under.
    pub epoch: u32,
}

/// Directory lookup (partitioned-state extension, §7/§9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirLookup {
    /// Requesting switch.
    pub from: NodeId,
    /// Register being located.
    pub reg: RegId,
    /// Key being located.
    pub key: Key,
}

/// Directory reply: current replica set for a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirReply {
    /// Register.
    pub reg: RegId,
    /// Key.
    pub key: Key,
    /// Switches currently replicating this key.
    pub owners: Vec<NodeId>,
}

/// A data packet tunneled to the tail of the chain because its read hit a
/// register with the pending bit set (§6.1: "the input packet P is
/// forwarded to the tail of the chain, and processed there").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadForward {
    /// Switch that forwarded the packet.
    pub origin: NodeId,
    /// Causal trace of this redirected read ([`TraceId::NONE`] when
    /// tracing is off).
    pub trace: TraceId,
    /// The original data packet.
    pub inner: DataPacket,
}

/// Controller → all switches: a key range of a partitioned register is
/// migrating from `from` to `to` (reconfiguration engine, §4/§7).
///
/// On receipt every switch records `to` as the range's migration target;
/// while the target is set, the range's effective write chain is
/// `owners ++ [to]`, so the destination is the acking tail and every
/// write acknowledged during the transfer window is already applied
/// there. The source additionally starts streaming the range's current
/// state as [`MigrateChunk`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrateBegin {
    /// Register being re-partitioned.
    pub reg: RegId,
    /// First key of the migrating range (inclusive).
    pub start: Key,
    /// One past the last key of the range (exclusive).
    pub end: Key,
    /// Current primary owner streaming the state.
    pub from: NodeId,
    /// Destination switch.
    pub to: NodeId,
    /// Per-range ownership epoch this migration starts; stale (≤
    /// installed) epochs are ignored, making re-broadcasts idempotent.
    pub epoch: u32,
}

/// One range-scoped chunk of migrating state (reuses the
/// [`SnapshotChunk`] framing: seq-guarded entries, zero-copy batch).
///
/// Chunks stream in numbered passes: the source re-sends the whole range
/// as a fresh `pass` until the commit arrives, and the destination
/// declares a pass complete only when every `idx` up to the one marked
/// `last` arrived — so chunk loss delays, never corrupts, the handoff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrateChunk {
    /// Register.
    pub reg: RegId,
    /// Range start (inclusive).
    pub start: Key,
    /// Range end (exclusive).
    pub end: Key,
    /// The streaming source.
    pub origin: NodeId,
    /// Retransmission pass this chunk belongs to.
    pub pass: u32,
    /// Chunk index within the pass.
    pub idx: u16,
    /// True on the final chunk of the pass.
    pub last: bool,
    /// Entries, seq-guarded exactly like snapshot entries.
    pub entries: Shared<SnapEntry>,
}

/// Controller → all switches: atomically flip a range's ownership to
/// `owners` at `epoch` (the commit step of the migration state machine;
/// also used alone for membership grow/shrink without a data move).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnershipCommit {
    /// Register.
    pub reg: RegId,
    /// Range start (inclusive).
    pub start: Key,
    /// Range end (exclusive).
    pub end: Key,
    /// New per-range ownership epoch (must exceed the installed one).
    pub epoch: u32,
    /// The range's owner set from this epoch on; `owners[0]` sequences.
    pub owners: Vec<NodeId>,
}

/// Migration destination → controller: a full chunk pass for the range
/// arrived, the destination's copy is complete up to dual-owner writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrateDone {
    /// Register.
    pub reg: RegId,
    /// Range start (inclusive).
    pub start: Key,
    /// Range end (exclusive).
    pub end: Key,
    /// The reporting destination switch.
    pub node: NodeId,
    /// Echo of [`MigrateBegin::epoch`].
    pub epoch: u32,
    /// The pass that completed.
    pub pass: u32,
}

/// One per-range write-load observation inside a [`LoadReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadEntry {
    /// Register.
    pub reg: RegId,
    /// Range start key (identifies the range in the directory).
    pub start: Key,
    /// Writes this switch ingressed for the range since the last report.
    pub writes: u64,
}

/// Switch control plane → controller: per-range write-load telemetry the
/// planner feeds into the directory's access counters. Sent alongside
/// heartbeats, but only when there is something to report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReport {
    /// Reporting switch.
    pub from: NodeId,
    /// Nonzero load observations.
    pub entries: Vec<LoadEntry>,
}

/// A replicated-controller command: one decree of the control-plane
/// consensus log (§6.3 extension; *Paxos Made Switch-y* style roles).
///
/// Commands are the unit of state replication across controller
/// replicas: every membership or range-table decision the leader makes
/// is first chosen as a command at a log slot, then applied by every
/// replica in slot order. All variants are fixed width (18 bytes on the
/// wire) so acceptor register cells hold any command in one fixed-size
/// slot, exactly like a PISA register array would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlCmd {
    /// Initial configuration + range-table bootstrap.
    Bootstrap,
    /// `leader` asserts leadership of the replica group (the election
    /// decree; choosing it fences every lower ballot).
    Reassert {
        /// The replica claiming leadership.
        leader: NodeId,
    },
    /// Declare a switch failed and remove it from chain + groups.
    Fail {
        /// The failed switch.
        node: NodeId,
    },
    /// Admit a recovered switch as a learner (snapshot path).
    Admit {
        /// The recovering switch.
        node: NodeId,
    },
    /// Promote a caught-up learner to the chain tail.
    Promote {
        /// The learner to promote.
        node: NodeId,
    },
    /// Migrate the range containing `key` so `to` becomes its primary.
    Move {
        /// Register.
        reg: RegId,
        /// Any key inside the range to move.
        key: Key,
        /// Destination primary.
        to: NodeId,
        /// True when the planner (not an explicit trigger) decided it.
        planned: bool,
    },
    /// Grow the replica group of the range containing `key` by `to`.
    Grow {
        /// Register.
        reg: RegId,
        /// Any key inside the range.
        key: Key,
        /// The joining owner.
        to: NodeId,
    },
    /// Shrink the replica group of the range containing `key`.
    Shrink {
        /// Register.
        reg: RegId,
        /// Any key inside the range.
        key: Key,
        /// The leaving owner.
        node: NodeId,
    },
    /// A migration destination completed a full chunk pass: flip the
    /// range to its commit owners.
    MigDone {
        /// Register.
        reg: RegId,
        /// Range start key.
        start: Key,
        /// The reporting destination.
        node: NodeId,
        /// The per-range epoch the transfer ran under.
        epoch: u32,
        /// The completed pass.
        pass: u32,
    },
    /// Compact the consensus log: every replica snapshots its applied
    /// state at the decree's slot and recycles the register cells of all
    /// slots below `upto`, exactly as a bounded PISA register array
    /// would. Chosen through the log itself, so all replicas compact at
    /// the same boundary.
    Compact {
        /// First slot NOT discarded (the proposer's applied prefix at
        /// proposal time; always at or below the decree's own slot).
        upto: u64,
    },
    /// Add a controller replica to the consensus group (membership rides
    /// the log; a joint-quorum window guards the transition).
    AddReplica {
        /// The joining replica.
        node: NodeId,
    },
    /// Remove a controller replica from the consensus group.
    RemoveReplica {
        /// The leaving replica.
        node: NodeId,
    },
}

/// Encoded size of a [`CtrlCmd`]: always fixed width.
pub const CTRL_CMD_LEN: usize = 18;

impl CtrlCmd {
    fn encode(&self, w: &mut Writer) {
        // Fixed layout: [sub:1][node:2][reg:2][key:4][epoch:4][pass:4][flag:1]
        let (sub, node, reg, key, epoch, pass, flag) = match *self {
            CtrlCmd::Bootstrap => (0u8, NodeId(0), 0, 0, 0, 0, 0u8),
            CtrlCmd::Reassert { leader } => (1, leader, 0, 0, 0, 0, 0),
            CtrlCmd::Fail { node } => (2, node, 0, 0, 0, 0, 0),
            CtrlCmd::Admit { node } => (3, node, 0, 0, 0, 0, 0),
            CtrlCmd::Promote { node } => (4, node, 0, 0, 0, 0, 0),
            CtrlCmd::Move {
                reg,
                key,
                to,
                planned,
            } => (5, to, reg, key, 0, 0, planned as u8),
            CtrlCmd::Grow { reg, key, to } => (6, to, reg, key, 0, 0, 0),
            CtrlCmd::Shrink { reg, key, node } => (7, node, reg, key, 0, 0, 0),
            CtrlCmd::MigDone {
                reg,
                start,
                node,
                epoch,
                pass,
            } => (8, node, reg, start, epoch, pass, 0),
            // Slot indices are u64; split across the key/epoch u32 pair.
            CtrlCmd::Compact { upto } => (9, NodeId(0), 0, upto as u32, (upto >> 32) as u32, 0, 0),
            CtrlCmd::AddReplica { node } => (10, node, 0, 0, 0, 0, 0),
            CtrlCmd::RemoveReplica { node } => (11, node, 0, 0, 0, 0, 0),
        };
        w.u8(sub);
        encode_node(w, node);
        w.u16(reg);
        w.u32(key);
        w.u32(epoch);
        w.u32(pass);
        w.u8(flag);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let sub = r.u8()?;
        let node = decode_node(r)?;
        let reg = r.u16()?;
        let key = r.u32()?;
        let epoch = r.u32()?;
        let pass = r.u32()?;
        let flag = r.u8()?;
        Ok(match sub {
            0 => CtrlCmd::Bootstrap,
            1 => CtrlCmd::Reassert { leader: node },
            2 => CtrlCmd::Fail { node },
            3 => CtrlCmd::Admit { node },
            4 => CtrlCmd::Promote { node },
            5 => CtrlCmd::Move {
                reg,
                key,
                to: node,
                planned: flag != 0,
            },
            6 => CtrlCmd::Grow { reg, key, to: node },
            7 => CtrlCmd::Shrink { reg, key, node },
            8 => CtrlCmd::MigDone {
                reg,
                start: key,
                node,
                epoch,
                pass,
            },
            9 => CtrlCmd::Compact {
                upto: u64::from(key) | (u64::from(epoch) << 32),
            },
            10 => CtrlCmd::AddReplica { node },
            11 => CtrlCmd::RemoveReplica { node },
            t => return Err(WireError::UnknownTag(t)),
        })
    }
}

/// Consensus phase-1 request: `from` asks the acceptor to promise ballot
/// `ballot` and report what it has accepted at `slot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtrlPrepare {
    /// Proposing replica.
    pub from: NodeId,
    /// Proposal ballot (`(round << 8) | replica_idx`).
    pub ballot: u64,
    /// The log slot being prepared.
    pub slot: u64,
}

/// Consensus phase-1 reply. `granted` is the promise; a refusal carries
/// the acceptor's log-wide ballot `floor` so the proposer can pick a
/// higher round. A grant carries the acceptor's accepted (ballot, cmd)
/// at the slot — if any — and its highest accepted slot overall, which
/// bounds how far a new leader must walk the log during catch-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtrlPromise {
    /// Replying acceptor.
    pub from: NodeId,
    /// Echo of [`CtrlPrepare::ballot`].
    pub ballot: u64,
    /// Echo of [`CtrlPrepare::slot`].
    pub slot: u64,
    /// True if the promise was granted.
    pub granted: bool,
    /// The acceptor's log-wide promised ballot after this exchange.
    pub floor: u64,
    /// Highest slot the acceptor has accepted any value at (0 = none;
    /// slots are 1-free: the value is `highest + 1` internally).
    pub max_slot: u64,
    /// Ballot of the accepted value at `slot` (0 = nothing accepted).
    pub acc_ballot: u64,
    /// The accepted value at `slot`, if any.
    pub acc: Option<CtrlCmd>,
}

/// Consensus phase-2 request: accept `cmd` at `slot` under `ballot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtrlAccept {
    /// Proposing replica.
    pub from: NodeId,
    /// Proposal ballot.
    pub ballot: u64,
    /// The log slot.
    pub slot: u64,
    /// The proposed command.
    pub cmd: CtrlCmd,
}

/// Consensus phase-2 reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtrlAccepted {
    /// Replying acceptor.
    pub from: NodeId,
    /// Echo of [`CtrlAccept::ballot`].
    pub ballot: u64,
    /// Echo of [`CtrlAccept::slot`].
    pub slot: u64,
    /// True if the value was accepted.
    pub granted: bool,
    /// The acceptor's log-wide promised ballot after this exchange.
    pub floor: u64,
}

/// Chosen-value notification: the proposer observed a quorum of accepts
/// for `cmd` at `slot` and tells every replica to learn it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtrlLearn {
    /// The notifying replica.
    pub from: NodeId,
    /// The decided slot.
    pub slot: u64,
    /// The chosen command.
    pub cmd: CtrlCmd,
}

/// Controller-replica liveness beacon, sent replica ↔ replica. The
/// leader's beacon suppresses elections; a follower's beacon reports its
/// contiguously-chosen prefix so the leader can re-send lost `CtrlLearn`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtrlHb {
    /// Sending replica.
    pub from: NodeId,
    /// The sender's current ballot (leader: its leadership ballot).
    pub ballot: u64,
    /// Number of contiguously chosen slots the sender knows.
    pub commit: u64,
    /// True when the sender is the acting leader.
    pub leader: bool,
}

/// Leader announcement to the switch control planes: after failover the
/// switches redirect controller-bound traffic (load reports, migrate
/// done, catch-up notices) to the new leader. Ballot-guarded so stale
/// announcements lose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtrlLead {
    /// The acting leader replica.
    pub leader: NodeId,
    /// Its leadership ballot.
    pub ballot: u64,
}

/// An open migration inside a [`CtrlSnapRange`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtrlSnapMig {
    /// Source primary.
    pub from: NodeId,
    /// Destination switch.
    pub to: NodeId,
    /// Per-range epoch the transfer opened under.
    pub epoch: u32,
    /// Migration phase code (controller-defined).
    pub phase: u8,
    /// Owner set to install once the destination holds the range.
    pub commit_owners: Vec<NodeId>,
}

/// One range of a [`CtrlSnap`]: directory bounds plus per-range epochs
/// and any open migration — enough to rebuild the master range table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtrlSnapRange {
    /// Range start (inclusive).
    pub start: Key,
    /// Range end (exclusive).
    pub end: Key,
    /// Epoch of the last ownership commit.
    pub committed_epoch: u32,
    /// Highest per-range epoch ever issued.
    pub issued_epoch: u32,
    /// Current owner set (`owners[0]` sequences).
    pub owners: Vec<NodeId>,
    /// Open migration, if any.
    pub mig: Option<CtrlSnapMig>,
}

/// Range table of one register inside a [`CtrlSnap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtrlSnapReg {
    /// Register.
    pub reg: RegId,
    /// Its ranges, in directory order.
    pub ranges: Vec<CtrlSnapRange>,
}

/// Controller-state snapshot, replica → replica: the sender's applied
/// state at log slot `base`. A replica whose committed prefix fell below
/// the group's compaction boundary installs this wholesale and resumes
/// from `base` instead of replaying from slot 0 (the compacted decrees
/// no longer exist anywhere).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtrlSnap {
    /// Sending replica.
    pub from: NodeId,
    /// First log slot above the snapshot: the receiver resumes here.
    pub base: u64,
    /// Configuration epoch of the captured chain view.
    pub epoch: u32,
    /// Chain membership at the boundary.
    pub chain: Vec<NodeId>,
    /// Learners at the boundary.
    pub learners: Vec<NodeId>,
    /// Consensus group membership at the boundary.
    pub group: Vec<NodeId>,
    /// The leader named by the committed prefix, if any.
    pub leader: Option<NodeId>,
    /// Leader changes committed below `base`.
    pub leader_changes: u64,
    /// Whether the `Bootstrap` decree is applied below `base`.
    pub boot_done: bool,
    /// Per-register range tables (partitioned registers only).
    pub regs: Vec<CtrlSnapReg>,
}

/// Every SwiShmem protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwishMsg {
    /// Chain write request.
    Write(WriteRequest),
    /// Tail acknowledgment.
    Ack(WriteAck),
    /// Pending-bit clear.
    Clear(PendingClear),
    /// EWO update batch.
    Sync(SyncUpdate),
    /// Snapshot stream request.
    SnapReq(SnapshotRequest),
    /// Snapshot data chunk.
    SnapChunk(SnapshotChunk),
    /// Catch-up completion notice.
    CatchupDone(CatchupComplete),
    /// Chain configuration.
    Chain(ChainConfig),
    /// Replica-group configuration.
    Group(GroupConfig),
    /// Liveness beacon.
    Heartbeat(Heartbeat),
    /// Directory lookup.
    DirLookup(DirLookup),
    /// Directory reply.
    DirReply(DirReply),
    /// Tunneled read.
    ReadForward(ReadForward),
    /// Range migration start.
    MigrateBegin(MigrateBegin),
    /// Range migration data chunk.
    MigrateChunk(MigrateChunk),
    /// Range ownership flip.
    OwnershipCommit(OwnershipCommit),
    /// Range transfer completion notice.
    MigrateDone(MigrateDone),
    /// Per-range write-load telemetry.
    LoadReport(LoadReport),
    /// Controller-consensus phase-1 request.
    CtrlPrepare(CtrlPrepare),
    /// Controller-consensus phase-1 reply.
    CtrlPromise(CtrlPromise),
    /// Controller-consensus phase-2 request.
    CtrlAccept(CtrlAccept),
    /// Controller-consensus phase-2 reply.
    CtrlAccepted(CtrlAccepted),
    /// Controller-consensus chosen-value notification.
    CtrlLearn(CtrlLearn),
    /// Controller-replica liveness beacon.
    CtrlHb(CtrlHb),
    /// Leader announcement to switches.
    CtrlLead(CtrlLead),
    /// Controller-state snapshot for lagging-replica catch-up.
    CtrlSnap(CtrlSnap),
}

const TAG_WRITE: u8 = 0x01;
const TAG_ACK: u8 = 0x02;
const TAG_CLEAR: u8 = 0x03;
const TAG_SYNC: u8 = 0x04;
const TAG_SNAP_REQ: u8 = 0x05;
const TAG_SNAP_CHUNK: u8 = 0x06;
const TAG_CATCHUP: u8 = 0x07;
const TAG_CHAIN: u8 = 0x08;
const TAG_GROUP: u8 = 0x09;
const TAG_HEARTBEAT: u8 = 0x0a;
const TAG_DIR_LOOKUP: u8 = 0x0b;
const TAG_DIR_REPLY: u8 = 0x0c;
const TAG_READ_FWD: u8 = 0x0d;
// Reconfiguration-engine messages are *additive* tags: WIRE_VERSION stays
// at 2 because no existing layout changed and deployments without
// partitioned registers never emit them.
const TAG_MIG_BEGIN: u8 = 0x0e;
const TAG_MIG_CHUNK: u8 = 0x0f;
const TAG_OWN_COMMIT: u8 = 0x10;
const TAG_MIG_DONE: u8 = 0x11;
const TAG_LOAD_REPORT: u8 = 0x12;
// Replicated-control-plane messages are additive tags too: deployments
// with a singleton controller never emit them, so WIRE_VERSION stays 2.
const TAG_CTRL_PREPARE: u8 = 0x13;
const TAG_CTRL_PROMISE: u8 = 0x14;
const TAG_CTRL_ACCEPT: u8 = 0x15;
const TAG_CTRL_ACCEPTED: u8 = 0x16;
const TAG_CTRL_LEARN: u8 = 0x17;
const TAG_CTRL_HB: u8 = 0x18;
const TAG_CTRL_LEAD: u8 = 0x19;
const TAG_CTRL_SNAP: u8 = 0x1a;

fn encode_node(w: &mut Writer, n: NodeId) {
    w.u16(n.0);
}

fn decode_node(r: &mut Reader<'_>) -> Result<NodeId, WireError> {
    Ok(NodeId(r.u16()?))
}

fn encode_nodes(w: &mut Writer, ns: &[NodeId]) {
    w.u16(ns.len() as u16);
    for n in ns {
        encode_node(w, *n);
    }
}

fn decode_nodes(r: &mut Reader<'_>) -> Result<Vec<NodeId>, WireError> {
    let n = r.u16()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(decode_node(r)?);
    }
    Ok(out)
}

impl SwishMsg {
    /// Append the versioned message to `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.u8(WIRE_VERSION);
        match self {
            SwishMsg::Write(m) => {
                w.u8(TAG_WRITE);
                w.u64(m.write_id);
                encode_node(w, m.writer);
                w.u32(m.epoch);
                w.u16(m.reg);
                w.u32(m.key);
                w.u64(m.seq);
                m.op.encode(w);
                w.u64(m.trace.0);
            }
            SwishMsg::Ack(m) => {
                w.u8(TAG_ACK);
                w.u64(m.write_id);
                encode_node(w, m.writer);
                w.u16(m.reg);
                w.u32(m.key);
                w.u64(m.seq);
                w.u64(m.trace.0);
            }
            SwishMsg::Clear(m) => {
                w.u8(TAG_CLEAR);
                w.u32(m.epoch);
                w.u16(m.reg);
                w.u32(m.key);
                w.u64(m.seq);
            }
            SwishMsg::Sync(m) => {
                w.u8(TAG_SYNC);
                w.u16(m.reg);
                encode_node(w, m.origin);
                w.u64(m.trace.0);
                w.u16(m.entries.len() as u16);
                for e in &m.entries {
                    w.u32(e.key);
                    w.u8(e.slot);
                    w.u64(e.version);
                    w.u64(e.value);
                }
            }
            SwishMsg::SnapReq(m) => {
                w.u8(TAG_SNAP_REQ);
                encode_node(w, m.target);
                w.u32(m.epoch);
            }
            SwishMsg::SnapChunk(m) => {
                w.u8(TAG_SNAP_CHUNK);
                w.u16(m.reg);
                encode_node(w, m.origin);
                w.u8(m.last as u8);
                w.u16(m.entries.len() as u16);
                for e in &m.entries {
                    w.u32(e.key);
                    w.u64(e.seq);
                    w.u64(e.value);
                }
            }
            SwishMsg::CatchupDone(m) => {
                w.u8(TAG_CATCHUP);
                encode_node(w, m.node);
                w.u32(m.epoch);
            }
            SwishMsg::Chain(m) => {
                w.u8(TAG_CHAIN);
                w.u32(m.epoch);
                encode_nodes(w, &m.chain);
                encode_nodes(w, &m.learners);
            }
            SwishMsg::Group(m) => {
                w.u8(TAG_GROUP);
                w.u32(m.epoch);
                encode_nodes(w, &m.members);
            }
            SwishMsg::Heartbeat(m) => {
                w.u8(TAG_HEARTBEAT);
                encode_node(w, m.from);
                w.u32(m.epoch);
            }
            SwishMsg::DirLookup(m) => {
                w.u8(TAG_DIR_LOOKUP);
                encode_node(w, m.from);
                w.u16(m.reg);
                w.u32(m.key);
            }
            SwishMsg::DirReply(m) => {
                w.u8(TAG_DIR_REPLY);
                w.u16(m.reg);
                w.u32(m.key);
                encode_nodes(w, &m.owners);
            }
            SwishMsg::ReadForward(m) => {
                w.u8(TAG_READ_FWD);
                encode_node(w, m.origin);
                w.u64(m.trace.0);
                m.inner.encode(w);
            }
            SwishMsg::MigrateBegin(m) => {
                w.u8(TAG_MIG_BEGIN);
                w.u16(m.reg);
                w.u32(m.start);
                w.u32(m.end);
                encode_node(w, m.from);
                encode_node(w, m.to);
                w.u32(m.epoch);
            }
            SwishMsg::MigrateChunk(m) => {
                w.u8(TAG_MIG_CHUNK);
                w.u16(m.reg);
                w.u32(m.start);
                w.u32(m.end);
                encode_node(w, m.origin);
                w.u32(m.pass);
                w.u16(m.idx);
                w.u8(m.last as u8);
                w.u16(m.entries.len() as u16);
                for e in &m.entries {
                    w.u32(e.key);
                    w.u64(e.seq);
                    w.u64(e.value);
                }
            }
            SwishMsg::OwnershipCommit(m) => {
                w.u8(TAG_OWN_COMMIT);
                w.u16(m.reg);
                w.u32(m.start);
                w.u32(m.end);
                w.u32(m.epoch);
                encode_nodes(w, &m.owners);
            }
            SwishMsg::MigrateDone(m) => {
                w.u8(TAG_MIG_DONE);
                w.u16(m.reg);
                w.u32(m.start);
                w.u32(m.end);
                encode_node(w, m.node);
                w.u32(m.epoch);
                w.u32(m.pass);
            }
            SwishMsg::LoadReport(m) => {
                w.u8(TAG_LOAD_REPORT);
                encode_node(w, m.from);
                w.u16(m.entries.len() as u16);
                for e in &m.entries {
                    w.u16(e.reg);
                    w.u32(e.start);
                    w.u64(e.writes);
                }
            }
            SwishMsg::CtrlPrepare(m) => {
                w.u8(TAG_CTRL_PREPARE);
                encode_node(w, m.from);
                w.u64(m.ballot);
                w.u64(m.slot);
            }
            SwishMsg::CtrlPromise(m) => {
                w.u8(TAG_CTRL_PROMISE);
                encode_node(w, m.from);
                w.u64(m.ballot);
                w.u64(m.slot);
                w.u8(m.granted as u8);
                w.u64(m.floor);
                w.u64(m.max_slot);
                w.u64(m.acc_ballot);
                match &m.acc {
                    Some(cmd) => {
                        w.u8(1);
                        cmd.encode(w);
                    }
                    None => w.u8(0),
                }
            }
            SwishMsg::CtrlAccept(m) => {
                w.u8(TAG_CTRL_ACCEPT);
                encode_node(w, m.from);
                w.u64(m.ballot);
                w.u64(m.slot);
                m.cmd.encode(w);
            }
            SwishMsg::CtrlAccepted(m) => {
                w.u8(TAG_CTRL_ACCEPTED);
                encode_node(w, m.from);
                w.u64(m.ballot);
                w.u64(m.slot);
                w.u8(m.granted as u8);
                w.u64(m.floor);
            }
            SwishMsg::CtrlLearn(m) => {
                w.u8(TAG_CTRL_LEARN);
                encode_node(w, m.from);
                w.u64(m.slot);
                m.cmd.encode(w);
            }
            SwishMsg::CtrlHb(m) => {
                w.u8(TAG_CTRL_HB);
                encode_node(w, m.from);
                w.u64(m.ballot);
                w.u64(m.commit);
                w.u8(m.leader as u8);
            }
            SwishMsg::CtrlLead(m) => {
                w.u8(TAG_CTRL_LEAD);
                encode_node(w, m.leader);
                w.u64(m.ballot);
            }
            SwishMsg::CtrlSnap(m) => {
                w.u8(TAG_CTRL_SNAP);
                encode_node(w, m.from);
                w.u64(m.base);
                w.u32(m.epoch);
                encode_nodes(w, &m.chain);
                encode_nodes(w, &m.learners);
                encode_nodes(w, &m.group);
                match m.leader {
                    Some(l) => {
                        w.u8(1);
                        encode_node(w, l);
                    }
                    None => w.u8(0),
                }
                w.u64(m.leader_changes);
                w.u8(m.boot_done as u8);
                w.u16(m.regs.len() as u16);
                for rg in &m.regs {
                    w.u16(rg.reg);
                    w.u16(rg.ranges.len() as u16);
                    for r in &rg.ranges {
                        w.u32(r.start);
                        w.u32(r.end);
                        w.u32(r.committed_epoch);
                        w.u32(r.issued_epoch);
                        encode_nodes(w, &r.owners);
                        match &r.mig {
                            Some(g) => {
                                w.u8(1);
                                encode_node(w, g.from);
                                encode_node(w, g.to);
                                w.u32(g.epoch);
                                w.u8(g.phase);
                                encode_nodes(w, &g.commit_owners);
                            }
                            None => w.u8(0),
                        }
                    }
                }
            }
        }
    }

    /// Decode a versioned message from `r`.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let ver = r.u8()?;
        if ver != WIRE_VERSION {
            return Err(WireError::VersionMismatch {
                got: ver,
                want: WIRE_VERSION,
            });
        }
        let tag = r.u8()?;
        let msg = match tag {
            TAG_WRITE => SwishMsg::Write(WriteRequest {
                write_id: r.u64()?,
                writer: decode_node(r)?,
                epoch: r.u32()?,
                reg: r.u16()?,
                key: r.u32()?,
                seq: r.u64()?,
                op: WriteOp::decode(r)?,
                trace: TraceId(r.u64()?),
            }),
            TAG_ACK => SwishMsg::Ack(WriteAck {
                write_id: r.u64()?,
                writer: decode_node(r)?,
                reg: r.u16()?,
                key: r.u32()?,
                seq: r.u64()?,
                trace: TraceId(r.u64()?),
            }),
            TAG_CLEAR => SwishMsg::Clear(PendingClear {
                epoch: r.u32()?,
                reg: r.u16()?,
                key: r.u32()?,
                seq: r.u64()?,
            }),
            TAG_SYNC => {
                let reg = r.u16()?;
                let origin = decode_node(r)?;
                let trace = TraceId(r.u64()?);
                let n = r.u16()? as usize;
                let mut entries = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    entries.push(SyncEntry {
                        key: r.u32()?,
                        slot: r.u8()?,
                        version: r.u64()?,
                        value: r.u64()?,
                    });
                }
                SwishMsg::Sync(SyncUpdate {
                    reg,
                    origin,
                    trace,
                    entries: entries.into(),
                })
            }
            TAG_SNAP_REQ => SwishMsg::SnapReq(SnapshotRequest {
                target: decode_node(r)?,
                epoch: r.u32()?,
            }),
            TAG_SNAP_CHUNK => {
                let reg = r.u16()?;
                let origin = decode_node(r)?;
                let last = r.u8()? != 0;
                let n = r.u16()? as usize;
                let mut entries = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    entries.push(SnapEntry {
                        key: r.u32()?,
                        seq: r.u64()?,
                        value: r.u64()?,
                    });
                }
                SwishMsg::SnapChunk(SnapshotChunk {
                    reg,
                    origin,
                    entries: entries.into(),
                    last,
                })
            }
            TAG_CATCHUP => SwishMsg::CatchupDone(CatchupComplete {
                node: decode_node(r)?,
                epoch: r.u32()?,
            }),
            TAG_CHAIN => SwishMsg::Chain(ChainConfig {
                epoch: r.u32()?,
                chain: decode_nodes(r)?,
                learners: decode_nodes(r)?,
            }),
            TAG_GROUP => SwishMsg::Group(GroupConfig {
                epoch: r.u32()?,
                members: decode_nodes(r)?,
            }),
            TAG_HEARTBEAT => SwishMsg::Heartbeat(Heartbeat {
                from: decode_node(r)?,
                epoch: r.u32()?,
            }),
            TAG_DIR_LOOKUP => SwishMsg::DirLookup(DirLookup {
                from: decode_node(r)?,
                reg: r.u16()?,
                key: r.u32()?,
            }),
            TAG_DIR_REPLY => SwishMsg::DirReply(DirReply {
                reg: r.u16()?,
                key: r.u32()?,
                owners: decode_nodes(r)?,
            }),
            TAG_READ_FWD => SwishMsg::ReadForward(ReadForward {
                origin: decode_node(r)?,
                trace: TraceId(r.u64()?),
                inner: DataPacket::decode(r)?,
            }),
            TAG_MIG_BEGIN => SwishMsg::MigrateBegin(MigrateBegin {
                reg: r.u16()?,
                start: r.u32()?,
                end: r.u32()?,
                from: decode_node(r)?,
                to: decode_node(r)?,
                epoch: r.u32()?,
            }),
            TAG_MIG_CHUNK => {
                let reg = r.u16()?;
                let start = r.u32()?;
                let end = r.u32()?;
                let origin = decode_node(r)?;
                let pass = r.u32()?;
                let idx = r.u16()?;
                let last = r.u8()? != 0;
                let n = r.u16()? as usize;
                let mut entries = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    entries.push(SnapEntry {
                        key: r.u32()?,
                        seq: r.u64()?,
                        value: r.u64()?,
                    });
                }
                SwishMsg::MigrateChunk(MigrateChunk {
                    reg,
                    start,
                    end,
                    origin,
                    pass,
                    idx,
                    last,
                    entries: entries.into(),
                })
            }
            TAG_OWN_COMMIT => SwishMsg::OwnershipCommit(OwnershipCommit {
                reg: r.u16()?,
                start: r.u32()?,
                end: r.u32()?,
                epoch: r.u32()?,
                owners: decode_nodes(r)?,
            }),
            TAG_MIG_DONE => SwishMsg::MigrateDone(MigrateDone {
                reg: r.u16()?,
                start: r.u32()?,
                end: r.u32()?,
                node: decode_node(r)?,
                epoch: r.u32()?,
                pass: r.u32()?,
            }),
            TAG_LOAD_REPORT => {
                let from = decode_node(r)?;
                let n = r.u16()? as usize;
                let mut entries = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    entries.push(LoadEntry {
                        reg: r.u16()?,
                        start: r.u32()?,
                        writes: r.u64()?,
                    });
                }
                SwishMsg::LoadReport(LoadReport { from, entries })
            }
            TAG_CTRL_PREPARE => SwishMsg::CtrlPrepare(CtrlPrepare {
                from: decode_node(r)?,
                ballot: r.u64()?,
                slot: r.u64()?,
            }),
            TAG_CTRL_PROMISE => {
                let from = decode_node(r)?;
                let ballot = r.u64()?;
                let slot = r.u64()?;
                let granted = r.u8()? != 0;
                let floor = r.u64()?;
                let max_slot = r.u64()?;
                let acc_ballot = r.u64()?;
                let acc = if r.u8()? != 0 {
                    Some(CtrlCmd::decode(r)?)
                } else {
                    None
                };
                SwishMsg::CtrlPromise(CtrlPromise {
                    from,
                    ballot,
                    slot,
                    granted,
                    floor,
                    max_slot,
                    acc_ballot,
                    acc,
                })
            }
            TAG_CTRL_ACCEPT => SwishMsg::CtrlAccept(CtrlAccept {
                from: decode_node(r)?,
                ballot: r.u64()?,
                slot: r.u64()?,
                cmd: CtrlCmd::decode(r)?,
            }),
            TAG_CTRL_ACCEPTED => SwishMsg::CtrlAccepted(CtrlAccepted {
                from: decode_node(r)?,
                ballot: r.u64()?,
                slot: r.u64()?,
                granted: r.u8()? != 0,
                floor: r.u64()?,
            }),
            TAG_CTRL_LEARN => SwishMsg::CtrlLearn(CtrlLearn {
                from: decode_node(r)?,
                slot: r.u64()?,
                cmd: CtrlCmd::decode(r)?,
            }),
            TAG_CTRL_HB => SwishMsg::CtrlHb(CtrlHb {
                from: decode_node(r)?,
                ballot: r.u64()?,
                commit: r.u64()?,
                leader: r.u8()? != 0,
            }),
            TAG_CTRL_LEAD => SwishMsg::CtrlLead(CtrlLead {
                leader: decode_node(r)?,
                ballot: r.u64()?,
            }),
            TAG_CTRL_SNAP => {
                let from = decode_node(r)?;
                let base = r.u64()?;
                let epoch = r.u32()?;
                let chain = decode_nodes(r)?;
                let learners = decode_nodes(r)?;
                let group = decode_nodes(r)?;
                let leader = if r.u8()? != 0 {
                    Some(decode_node(r)?)
                } else {
                    None
                };
                let leader_changes = r.u64()?;
                let boot_done = r.u8()? != 0;
                let n_regs = r.u16()? as usize;
                let mut regs = Vec::with_capacity(n_regs.min(1024));
                for _ in 0..n_regs {
                    let reg = r.u16()?;
                    let n_ranges = r.u16()? as usize;
                    let mut ranges = Vec::with_capacity(n_ranges.min(1024));
                    for _ in 0..n_ranges {
                        let start = r.u32()?;
                        let end = r.u32()?;
                        let committed_epoch = r.u32()?;
                        let issued_epoch = r.u32()?;
                        let owners = decode_nodes(r)?;
                        let mig = if r.u8()? != 0 {
                            Some(CtrlSnapMig {
                                from: decode_node(r)?,
                                to: decode_node(r)?,
                                epoch: r.u32()?,
                                phase: r.u8()?,
                                commit_owners: decode_nodes(r)?,
                            })
                        } else {
                            None
                        };
                        ranges.push(CtrlSnapRange {
                            start,
                            end,
                            committed_epoch,
                            issued_epoch,
                            owners,
                            mig,
                        });
                    }
                    regs.push(CtrlSnapReg { reg, ranges });
                }
                SwishMsg::CtrlSnap(CtrlSnap {
                    from,
                    base,
                    epoch,
                    chain,
                    learners,
                    group,
                    leader,
                    leader_changes,
                    boot_done,
                    regs,
                })
            }
            t => return Err(WireError::UnknownTag(t)),
        };
        Ok(msg)
    }

    /// Encoded length in bytes, without allocating.
    pub fn wire_len(&self) -> usize {
        // version + tag
        2 + match self {
            SwishMsg::Write(_) => 8 + 2 + 4 + 2 + 4 + 8 + 9 + 8,
            SwishMsg::Ack(_) => 8 + 2 + 2 + 4 + 8 + 8,
            SwishMsg::Clear(_) => 4 + 2 + 4 + 8,
            SwishMsg::Sync(m) => 2 + 2 + 8 + 2 + m.entries.len() * (4 + 1 + 8 + 8),
            SwishMsg::SnapReq(_) => 2 + 4,
            SwishMsg::SnapChunk(m) => 2 + 2 + 1 + 2 + m.entries.len() * (4 + 8 + 8),
            SwishMsg::CatchupDone(_) => 2 + 4,
            SwishMsg::Chain(m) => 4 + 2 + m.chain.len() * 2 + 2 + m.learners.len() * 2,
            SwishMsg::Group(m) => 4 + 2 + m.members.len() * 2,
            SwishMsg::Heartbeat(_) => 2 + 4,
            SwishMsg::DirLookup(_) => 2 + 2 + 4,
            SwishMsg::DirReply(m) => 2 + 4 + 2 + m.owners.len() * 2,
            SwishMsg::ReadForward(m) => 2 + 8 + m.inner.wire_len(),
            SwishMsg::MigrateBegin(_) => 2 + 4 + 4 + 2 + 2 + 4,
            SwishMsg::MigrateChunk(m) => {
                2 + 4 + 4 + 2 + 4 + 2 + 1 + 2 + m.entries.len() * (4 + 8 + 8)
            }
            SwishMsg::OwnershipCommit(m) => 2 + 4 + 4 + 4 + 2 + m.owners.len() * 2,
            SwishMsg::MigrateDone(_) => 2 + 4 + 4 + 2 + 4 + 4,
            SwishMsg::LoadReport(m) => 2 + 2 + m.entries.len() * (2 + 4 + 8),
            SwishMsg::CtrlPrepare(_) => 2 + 8 + 8,
            SwishMsg::CtrlPromise(m) => {
                2 + 8 + 8 + 1 + 8 + 8 + 8 + 1 + if m.acc.is_some() { CTRL_CMD_LEN } else { 0 }
            }
            SwishMsg::CtrlAccept(_) => 2 + 8 + 8 + CTRL_CMD_LEN,
            SwishMsg::CtrlAccepted(_) => 2 + 8 + 8 + 1 + 8,
            SwishMsg::CtrlLearn(_) => 2 + 8 + CTRL_CMD_LEN,
            SwishMsg::CtrlHb(_) => 2 + 8 + 8 + 1,
            SwishMsg::CtrlLead(_) => 2 + 8,
            SwishMsg::CtrlSnap(m) => {
                let nodes = |v: &[NodeId]| 2 + v.len() * 2;
                let ranges: usize = m
                    .regs
                    .iter()
                    .map(|rg| {
                        2 + 2
                            + rg.ranges
                                .iter()
                                .map(|r| {
                                    16 + nodes(&r.owners)
                                        + 1
                                        + r.mig
                                            .as_ref()
                                            .map(|g| 2 + 2 + 4 + 1 + nodes(&g.commit_owners))
                                            .unwrap_or(0)
                                })
                                .sum::<usize>()
                    })
                    .sum();
                2 + 8
                    + 4
                    + nodes(&m.chain)
                    + nodes(&m.learners)
                    + nodes(&m.group)
                    + 1
                    + if m.leader.is_some() { 2 } else { 0 }
                    + 8
                    + 1
                    + 2
                    + ranges
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::l4::TcpFlags;
    use std::net::Ipv4Addr;

    fn samples() -> Vec<SwishMsg> {
        vec![
            SwishMsg::Write(WriteRequest {
                write_id: 42,
                writer: NodeId(1),
                epoch: 7,
                reg: 3,
                key: 1000,
                seq: 0,
                op: WriteOp::Set(0xdead),
                trace: TraceId::new(NodeId(1), 9),
            }),
            SwishMsg::Write(WriteRequest {
                write_id: 43,
                writer: NodeId(2),
                epoch: 7,
                reg: 3,
                key: 1001,
                seq: 12,
                op: WriteOp::Add(-5),
                trace: TraceId::NONE,
            }),
            SwishMsg::Ack(WriteAck {
                write_id: 42,
                writer: NodeId(1),
                reg: 3,
                key: 1000,
                seq: 5,
                trace: TraceId::new(NodeId(1), 9),
            }),
            SwishMsg::Clear(PendingClear {
                epoch: 7,
                reg: 3,
                key: 1000,
                seq: 5,
            }),
            SwishMsg::Sync(SyncUpdate {
                reg: 9,
                origin: NodeId(4),
                trace: TraceId::new(NodeId(4), 1),
                entries: vec![
                    SyncEntry {
                        key: 0,
                        slot: 4,
                        version: 11,
                        value: 22,
                    },
                    SyncEntry {
                        key: 5,
                        slot: 4,
                        version: 12,
                        value: 23,
                    },
                ]
                .into(),
            }),
            SwishMsg::SnapReq(SnapshotRequest {
                target: NodeId(6),
                epoch: 9,
            }),
            SwishMsg::SnapChunk(SnapshotChunk {
                reg: 1,
                origin: NodeId(0),
                entries: vec![SnapEntry {
                    key: 3,
                    seq: 17,
                    value: 99,
                }]
                .into(),
                last: true,
            }),
            SwishMsg::CatchupDone(CatchupComplete {
                node: NodeId(6),
                epoch: 9,
            }),
            SwishMsg::Chain(ChainConfig {
                epoch: 9,
                chain: vec![NodeId(0), NodeId(1), NodeId(2)],
                learners: vec![NodeId(6)],
            }),
            SwishMsg::Group(GroupConfig {
                epoch: 9,
                members: vec![NodeId(0), NodeId(2)],
            }),
            SwishMsg::Heartbeat(Heartbeat {
                from: NodeId(2),
                epoch: 9,
            }),
            SwishMsg::DirLookup(DirLookup {
                from: NodeId(1),
                reg: 2,
                key: 77,
            }),
            SwishMsg::DirReply(DirReply {
                reg: 2,
                key: 77,
                owners: vec![NodeId(0), NodeId(3)],
            }),
            SwishMsg::ReadForward(ReadForward {
                origin: NodeId(5),
                trace: TraceId::new(NodeId(5), 2),
                inner: DataPacket::tcp(
                    crate::FlowKey::tcp(
                        Ipv4Addr::new(10, 0, 0, 1),
                        1234,
                        Ipv4Addr::new(10, 0, 0, 2),
                        80,
                    ),
                    TcpFlags::syn(),
                    0,
                    100,
                ),
            }),
            SwishMsg::MigrateBegin(MigrateBegin {
                reg: 2,
                start: 16,
                end: 32,
                from: NodeId(0),
                to: NodeId(2),
                epoch: 3,
            }),
            SwishMsg::MigrateChunk(MigrateChunk {
                reg: 2,
                start: 16,
                end: 32,
                origin: NodeId(0),
                pass: 1,
                idx: 4,
                last: true,
                entries: vec![
                    SnapEntry {
                        key: 16,
                        seq: 8,
                        value: 77,
                    },
                    SnapEntry {
                        key: 17,
                        seq: 0,
                        value: 0,
                    },
                ]
                .into(),
            }),
            SwishMsg::OwnershipCommit(OwnershipCommit {
                reg: 2,
                start: 16,
                end: 32,
                epoch: 4,
                owners: vec![NodeId(2), NodeId(1)],
            }),
            SwishMsg::MigrateDone(MigrateDone {
                reg: 2,
                start: 16,
                end: 32,
                node: NodeId(2),
                epoch: 3,
                pass: 1,
            }),
            SwishMsg::LoadReport(LoadReport {
                from: NodeId(1),
                entries: vec![
                    LoadEntry {
                        reg: 2,
                        start: 16,
                        writes: 120,
                    },
                    LoadEntry {
                        reg: 2,
                        start: 0,
                        writes: 3,
                    },
                ],
            }),
            SwishMsg::CtrlPrepare(CtrlPrepare {
                from: NodeId(u16::MAX - 1),
                ballot: (3 << 8) | 1,
                slot: 7,
            }),
            SwishMsg::CtrlPromise(CtrlPromise {
                from: NodeId(u16::MAX),
                ballot: (3 << 8) | 1,
                slot: 7,
                granted: true,
                floor: (3 << 8) | 1,
                max_slot: 9,
                acc_ballot: (2 << 8),
                acc: Some(CtrlCmd::Fail { node: NodeId(4) }),
            }),
            SwishMsg::CtrlPromise(CtrlPromise {
                from: NodeId(u16::MAX - 2),
                ballot: (3 << 8) | 1,
                slot: 7,
                granted: false,
                floor: (5 << 8) | 2,
                max_slot: 0,
                acc_ballot: 0,
                acc: None,
            }),
            SwishMsg::CtrlAccept(CtrlAccept {
                from: NodeId(u16::MAX - 1),
                ballot: (3 << 8) | 1,
                slot: 7,
                cmd: CtrlCmd::Move {
                    reg: 2,
                    key: 16,
                    to: NodeId(3),
                    planned: true,
                },
            }),
            SwishMsg::CtrlAccepted(CtrlAccepted {
                from: NodeId(u16::MAX),
                ballot: (3 << 8) | 1,
                slot: 7,
                granted: true,
                floor: (3 << 8) | 1,
            }),
            SwishMsg::CtrlLearn(CtrlLearn {
                from: NodeId(u16::MAX - 1),
                slot: 7,
                cmd: CtrlCmd::MigDone {
                    reg: 2,
                    start: 16,
                    node: NodeId(3),
                    epoch: 4,
                    pass: 2,
                },
            }),
            SwishMsg::CtrlHb(CtrlHb {
                from: NodeId(u16::MAX - 1),
                ballot: (3 << 8) | 1,
                commit: 8,
                leader: true,
            }),
            SwishMsg::CtrlLead(CtrlLead {
                leader: NodeId(u16::MAX - 1),
                ballot: (3 << 8) | 1,
            }),
            SwishMsg::CtrlLearn(CtrlLearn {
                from: NodeId(u16::MAX - 1),
                slot: 260,
                cmd: CtrlCmd::Compact { upto: 256 },
            }),
            SwishMsg::CtrlSnap(CtrlSnap {
                from: NodeId(u16::MAX - 1),
                base: (1 << 32) | 17,
                epoch: 5,
                chain: vec![NodeId(0), NodeId(1), NodeId(2)],
                learners: vec![NodeId(3)],
                group: vec![NodeId(u16::MAX), NodeId(u16::MAX - 1), NodeId(u16::MAX - 3)],
                leader: Some(NodeId(u16::MAX - 1)),
                leader_changes: 2,
                boot_done: true,
                regs: vec![CtrlSnapReg {
                    reg: 2,
                    ranges: vec![
                        CtrlSnapRange {
                            start: 0,
                            end: 32,
                            committed_epoch: 3,
                            issued_epoch: 4,
                            owners: vec![NodeId(0), NodeId(1)],
                            mig: Some(CtrlSnapMig {
                                from: NodeId(0),
                                to: NodeId(2),
                                epoch: 4,
                                phase: 1,
                                commit_owners: vec![NodeId(2), NodeId(1)],
                            }),
                        },
                        CtrlSnapRange {
                            start: 32,
                            end: 64,
                            committed_epoch: 1,
                            issued_epoch: 1,
                            owners: vec![NodeId(1)],
                            mig: None,
                        },
                    ],
                }],
            }),
            SwishMsg::CtrlSnap(CtrlSnap {
                from: NodeId(u16::MAX),
                base: 0,
                epoch: 0,
                chain: vec![],
                learners: vec![],
                group: vec![],
                leader: None,
                leader_changes: 0,
                boot_done: false,
                regs: vec![],
            }),
        ]
    }

    #[test]
    fn ctrl_cmd_round_trips_every_variant() {
        let cmds = [
            CtrlCmd::Bootstrap,
            CtrlCmd::Reassert {
                leader: NodeId(u16::MAX),
            },
            CtrlCmd::Fail { node: NodeId(1) },
            CtrlCmd::Admit { node: NodeId(2) },
            CtrlCmd::Promote { node: NodeId(2) },
            CtrlCmd::Move {
                reg: 1,
                key: 32,
                to: NodeId(3),
                planned: false,
            },
            CtrlCmd::Grow {
                reg: 1,
                key: 32,
                to: NodeId(3),
            },
            CtrlCmd::Shrink {
                reg: 1,
                key: 32,
                node: NodeId(0),
            },
            CtrlCmd::MigDone {
                reg: 1,
                start: 32,
                node: NodeId(3),
                epoch: 9,
                pass: 1,
            },
            CtrlCmd::Compact {
                upto: (7 << 32) | 42,
            },
            CtrlCmd::AddReplica {
                node: NodeId(u16::MAX - 3),
            },
            CtrlCmd::RemoveReplica {
                node: NodeId(u16::MAX - 1),
            },
        ];
        for cmd in cmds {
            let mut w = Writer::new();
            cmd.encode(&mut w);
            let buf = w.finish();
            assert_eq!(buf.len(), CTRL_CMD_LEN, "fixed width for {cmd:?}");
            let mut r = Reader::new(&buf);
            assert_eq!(CtrlCmd::decode(&mut r).unwrap(), cmd);
            r.expect_end().unwrap();
        }
    }

    #[test]
    fn rejects_truncated_ctrl_accept() {
        let msg = SwishMsg::CtrlAccept(CtrlAccept {
            from: NodeId(u16::MAX),
            ballot: (1 << 8) | 2,
            slot: 3,
            cmd: CtrlCmd::Bootstrap,
        });
        let mut w = Writer::new();
        msg.encode(&mut w);
        let buf = w.finish();
        for cut in 1..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(
                SwishMsg::decode(&mut r).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn round_trip_all_variants() {
        for msg in samples() {
            let mut w = Writer::new();
            msg.encode(&mut w);
            let buf = w.finish();
            let mut r = Reader::new(&buf);
            let back = SwishMsg::decode(&mut r).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            r.expect_end().unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn wire_len_matches_encoding() {
        for msg in samples() {
            let mut w = Writer::new();
            msg.encode(&mut w);
            assert_eq!(w.len(), msg.wire_len(), "wire_len mismatch for {msg:?}");
        }
    }

    #[test]
    fn rejects_bad_version() {
        let mut w = Writer::new();
        SwishMsg::Heartbeat(Heartbeat {
            from: NodeId(0),
            epoch: 0,
        })
        .encode(&mut w);
        let mut buf = w.finish().to_vec();
        buf[0] = 99;
        let mut r = Reader::new(&buf);
        assert!(matches!(
            SwishMsg::decode(&mut r),
            Err(WireError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_unknown_tag() {
        let buf = [WIRE_VERSION, 0xee];
        let mut r = Reader::new(&buf);
        assert!(matches!(
            SwishMsg::decode(&mut r),
            Err(WireError::UnknownTag(0xee))
        ));
    }

    #[test]
    fn rejects_truncated_sync() {
        let msg = SwishMsg::Sync(SyncUpdate {
            reg: 1,
            origin: NodeId(0),
            trace: TraceId::NONE,
            entries: vec![SyncEntry {
                key: 1,
                slot: 0,
                version: 1,
                value: 1,
            }]
            .into(),
        });
        let mut w = Writer::new();
        msg.encode(&mut w);
        let buf = w.finish();
        for cut in 1..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(
                SwishMsg::decode(&mut r).is_err(),
                "cut at {cut} should fail"
            );
        }
    }
}

//! Layer-4 header codecs: UDP and a compact TCP header.
//!
//! The TCP codec keeps the fields stateful NFs actually inspect — ports,
//! sequence number and flags — and is 16 bytes (the 20-byte standard layout
//! minus fields no NF here reads: ack number is kept, window/checksum/urgent
//! are dropped). The length difference is accounted for in
//! [`TcpLiteHeader::WIRE_LEN`] so packet sizes stay self-consistent.

use crate::cursor::{Reader, Writer};
use crate::WireError;

/// Length of a UDP header in bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP header. The checksum is carried but not validated (as permitted
/// for IPv4 UDP); the simulator's corruption faults target payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// UDP length (header + payload).
    pub length: u16,
}

impl UdpHeader {
    /// Append this header to `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.u16(self.src_port);
        w.u16(self.dst_port);
        w.u16(self.length);
        w.u16(0); // checksum: 0 = not computed (legal for IPv4)
    }

    /// Decode a header from `r`.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let src_port = r.u16()?;
        let dst_port = r.u16()?;
        let length = r.u16()?;
        if (length as usize) < UDP_HEADER_LEN {
            return Err(WireError::InvalidField {
                field: "udp_length",
                value: u64::from(length),
            });
        }
        let _ck = r.u16()?;
        Ok(UdpHeader {
            src_port,
            dst_port,
            length,
        })
    }
}

/// TCP flag bits used by the stateful NFs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// SYN: connection open.
    pub syn: bool,
    /// ACK.
    pub ack: bool,
    /// FIN: connection close.
    pub fin: bool,
    /// RST: abort.
    pub rst: bool,
}

impl TcpFlags {
    /// Pack into the low bits of a byte (FIN=0x01, SYN=0x02, RST=0x04,
    /// ACK=0x10 — the standard TCP bit positions).
    pub fn raw(self) -> u8 {
        (self.fin as u8)
            | ((self.syn as u8) << 1)
            | ((self.rst as u8) << 2)
            | ((self.ack as u8) << 4)
    }

    /// Unpack from the standard bit positions.
    pub fn from_raw(v: u8) -> TcpFlags {
        TcpFlags {
            fin: v & 0x01 != 0,
            syn: v & 0x02 != 0,
            rst: v & 0x04 != 0,
            ack: v & 0x10 != 0,
        }
    }

    /// A plain SYN.
    pub fn syn() -> TcpFlags {
        TcpFlags {
            syn: true,
            ..Default::default()
        }
    }

    /// A FIN+ACK.
    pub fn fin() -> TcpFlags {
        TcpFlags {
            fin: true,
            ack: true,
            ..Default::default()
        }
    }

    /// A data/ACK segment.
    pub fn data() -> TcpFlags {
        TcpFlags {
            ack: true,
            ..Default::default()
        }
    }
}

/// Compact TCP header: ports, sequence/ack numbers, flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpLiteHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
}

impl TcpLiteHeader {
    /// Encoded length in bytes (ports 4 + seq 4 + ack 4 + flags 1 + pad 3).
    pub const WIRE_LEN: usize = 16;

    /// Append this header to `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.u16(self.src_port);
        w.u16(self.dst_port);
        w.u32(self.seq);
        w.u32(self.ack);
        w.u8(self.flags.raw());
        w.bytes(&[0, 0, 0]); // pad to 4-byte alignment
    }

    /// Decode a header from `r`.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let src_port = r.u16()?;
        let dst_port = r.u16()?;
        let seq = r.u32()?;
        let ack = r.u32()?;
        let flags = TcpFlags::from_raw(r.u8()?);
        let _pad = r.bytes(3)?;
        Ok(TcpLiteHeader {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_round_trip() {
        let h = UdpHeader {
            src_port: 5353,
            dst_port: 53,
            length: 100,
        };
        let mut w = Writer::new();
        h.encode(&mut w);
        let buf = w.finish();
        assert_eq!(buf.len(), UDP_HEADER_LEN);
        let mut r = Reader::new(&buf);
        assert_eq!(UdpHeader::decode(&mut r).unwrap(), h);
    }

    #[test]
    fn udp_rejects_short_length() {
        let h = UdpHeader {
            src_port: 1,
            dst_port: 2,
            length: 4,
        };
        let mut w = Writer::new();
        h.encode(&mut w);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(UdpHeader::decode(&mut r).is_err());
    }

    #[test]
    fn tcp_round_trip_all_flag_combos() {
        for raw in [0u8, 0x01, 0x02, 0x04, 0x10, 0x13, 0x17] {
            let h = TcpLiteHeader {
                src_port: 40000,
                dst_port: 443,
                seq: 0xaabbccdd,
                ack: 0x11223344,
                flags: TcpFlags::from_raw(raw),
            };
            let mut w = Writer::new();
            h.encode(&mut w);
            let buf = w.finish();
            assert_eq!(buf.len(), TcpLiteHeader::WIRE_LEN);
            let mut r = Reader::new(&buf);
            assert_eq!(TcpLiteHeader::decode(&mut r).unwrap(), h);
        }
    }

    #[test]
    fn flag_constructors() {
        assert!(TcpFlags::syn().syn);
        assert!(!TcpFlags::syn().ack);
        assert!(TcpFlags::fin().fin && TcpFlags::fin().ack);
        assert!(TcpFlags::data().ack && !TcpFlags::data().syn);
    }

    #[test]
    fn flags_raw_round_trip_standard_positions() {
        let f = TcpFlags {
            syn: true,
            ack: true,
            fin: false,
            rst: false,
        };
        assert_eq!(f.raw(), 0x12); // SYN|ACK
        assert_eq!(TcpFlags::from_raw(0x12), f);
    }
}

//! The five-tuple flow key that every stateful NF keys its shared state on.

use crate::ipv4::IpProto;
use std::net::Ipv4Addr;

/// A connection five-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst: Ipv4Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// IP protocol number.
    pub proto: u8,
}

impl FlowKey {
    /// Construct a TCP flow key.
    pub fn tcp(src: Ipv4Addr, src_port: u16, dst: Ipv4Addr, dst_port: u16) -> FlowKey {
        FlowKey {
            src,
            dst,
            src_port,
            dst_port,
            proto: IpProto::Tcp.raw(),
        }
    }

    /// Construct a UDP flow key.
    pub fn udp(src: Ipv4Addr, src_port: u16, dst: Ipv4Addr, dst_port: u16) -> FlowKey {
        FlowKey {
            src,
            dst,
            src_port,
            dst_port,
            proto: IpProto::Udp.raw(),
        }
    }

    /// The reverse direction of this flow (src/dst swapped).
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src: self.dst,
            dst: self.src,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }

    /// Direction-insensitive canonical form: the lexicographically smaller
    /// of `self` and `self.reversed()`. Both directions of a connection map
    /// to the same canonical key, which is how connection tables are keyed.
    pub fn canonical(&self) -> FlowKey {
        let rev = self.reversed();
        if *self <= rev {
            *self
        } else {
            rev
        }
    }

    /// 64-bit hash of the five-tuple (FNV-1a over the packed tuple).
    ///
    /// Deterministic across runs and platforms — register indices derived
    /// from it are stable, which the experiments rely on.
    pub fn hash64(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for b in self.src.octets() {
            mix(b);
        }
        for b in self.dst.octets() {
            mix(b);
        }
        for b in self.src_port.to_be_bytes() {
            mix(b);
        }
        for b in self.dst_port.to_be_bytes() {
            mix(b);
        }
        mix(self.proto);
        h
    }

    /// Hash of the canonical (direction-insensitive) form.
    pub fn canonical_hash64(&self) -> u64 {
        self.canonical().hash64()
    }
}

impl std::fmt::Display for FlowKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} proto {}",
            self.src, self.src_port, self.dst, self.dst_port, self.proto
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            4000,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        )
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let k = key();
        let r = k.reversed();
        assert_eq!(r.src, k.dst);
        assert_eq!(r.src_port, k.dst_port);
        assert_eq!(r.reversed(), k);
    }

    #[test]
    fn canonical_is_direction_insensitive() {
        let k = key();
        assert_eq!(k.canonical(), k.reversed().canonical());
        assert_eq!(k.canonical_hash64(), k.reversed().canonical_hash64());
    }

    #[test]
    fn hash_is_deterministic_and_direction_sensitive() {
        let k = key();
        assert_eq!(k.hash64(), k.hash64());
        assert_ne!(k.hash64(), k.reversed().hash64());
    }

    #[test]
    fn distinct_flows_rarely_collide() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..1000u16 {
            let k = FlowKey::tcp(
                Ipv4Addr::new(10, 0, (i >> 8) as u8, i as u8),
                1000 + i,
                Ipv4Addr::new(10, 1, 0, 1),
                80,
            );
            assert!(seen.insert(k.hash64()), "hash collision at {i}");
        }
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(key().to_string(), "10.0.0.1:4000 -> 10.0.0.2:80 proto 6");
    }
}

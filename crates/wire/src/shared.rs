//! Cheaply clonable immutable slices for hot-path message payloads.
//!
//! Replication messages fan out: one EWO [`crate::swish::SyncUpdate`] is
//! multicast to every replica-group member, mirrored to egress, and
//! possibly recirculated — and the simulator clones the packet body once
//! per receiver. Backing the entry batches with an `Arc<[T]>` turns each
//! of those clones into a reference-count bump instead of a deep copy of
//! the entry vector.
//!
//! **Shared-body invariant:** receivers must treat the slice as frozen.
//! There is deliberately no `&mut` access; a node that needs to modify
//! entries copies them out (`to_vec`) first.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable reference-counted slice; `clone` is O(1).
pub struct Shared<T>(Arc<[T]>);

impl<T> Shared<T> {
    /// An empty slice (no allocation).
    pub fn empty() -> Shared<T> {
        Shared(Arc::from(Vec::new()))
    }

    /// View as a plain slice.
    pub fn as_slice(&self) -> &[T] {
        &self.0
    }
}

impl<T: Clone> Shared<T> {
    /// Copy the contents out into an owned vector (for mutation).
    pub fn to_vec(&self) -> Vec<T> {
        self.0.to_vec()
    }
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Shared<T> {
        Shared(Arc::clone(&self.0))
    }
}

impl<T> Deref for Shared<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.0
    }
}

impl<T> From<Vec<T>> for Shared<T> {
    fn from(v: Vec<T>) -> Shared<T> {
        Shared(Arc::from(v))
    }
}

impl<T: Clone> From<&[T]> for Shared<T> {
    fn from(v: &[T]) -> Shared<T> {
        Shared(Arc::from(v.to_vec()))
    }
}

impl<T> FromIterator<T> for Shared<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Shared<T> {
        Shared(iter.into_iter().collect::<Vec<T>>().into())
    }
}

impl<'a, T> IntoIterator for &'a Shared<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl<T: PartialEq> PartialEq for Shared<T> {
    fn eq(&self, other: &Shared<T>) -> bool {
        self.0 == other.0
    }
}
impl<T: Eq> Eq for Shared<T> {}

impl<T: fmt::Debug> fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

impl<T> Default for Shared<T> {
    fn default() -> Shared<T> {
        Shared::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let a: Shared<u64> = vec![1, 2, 3].into();
        let b = a.clone();
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn construction_paths_agree() {
        let from_vec: Shared<u32> = vec![7, 8].into();
        let from_slice: Shared<u32> = (&[7u32, 8][..]).into();
        let collected: Shared<u32> = [7u32, 8].into_iter().collect();
        assert_eq!(from_vec, from_slice);
        assert_eq!(from_vec, collected);
        assert_eq!(from_vec.to_vec(), vec![7, 8]);
        assert!(Shared::<u8>::empty().is_empty());
    }
}

//! IPv4 header codec (fixed 20-byte header, no options).
//!
//! The network functions in this workspace only need addressing, protocol
//! demultiplexing, TTL and total length, so options are rejected rather
//! than modeled — exactly the treatment smoltcp gives them ("silently
//! ignored" there; here, explicit `InvalidField`).

use crate::checksum::internet_checksum;
use crate::cursor::{Reader, Writer};
use crate::WireError;
use std::net::Ipv4Addr;

/// Length of the option-less IPv4 header in bytes.
pub const IPV4_HEADER_LEN: usize = 20;

/// IP protocol numbers used in this workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProto {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl IpProto {
    /// Raw protocol number.
    pub fn raw(self) -> u8 {
        match self {
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Other(v) => v,
        }
    }

    /// Classify a raw protocol number.
    pub fn from_raw(v: u8) -> IpProto {
        match v {
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            other => IpProto::Other(other),
        }
    }
}

/// An IPv4 header (IHL fixed at 5, i.e. no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Total length of the IP packet (header + payload) in bytes.
    pub total_len: u16,
    /// Identification field (used only for diagnostics here).
    pub ident: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub proto: IpProto,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// Append this header to `w`, computing the header checksum.
    pub fn encode(&self, w: &mut Writer) {
        let start = w.len();
        w.u8(0x45); // version 4, IHL 5
        w.u8(0); // DSCP/ECN
        w.u16(self.total_len);
        w.u16(self.ident);
        w.u16(0); // flags + fragment offset: never fragmented in sim
        w.u8(self.ttl);
        w.u8(self.proto.raw());
        w.u16(0); // checksum placeholder
        w.u32(u32::from(self.src));
        w.u32(u32::from(self.dst));
        let ck = internet_checksum(&w.as_slice()[start..start + IPV4_HEADER_LEN]);
        w.patch_u16(start + 10, ck);
    }

    /// Decode a header from `r`, verifying version, IHL and checksum.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let start = r.position();
        let ver_ihl = r.u8()?;
        if ver_ihl >> 4 != 4 {
            return Err(WireError::InvalidField {
                field: "version",
                value: u64::from(ver_ihl >> 4),
            });
        }
        if ver_ihl & 0x0f != 5 {
            return Err(WireError::InvalidField {
                field: "ihl",
                value: u64::from(ver_ihl & 0x0f),
            });
        }
        let _dscp = r.u8()?;
        let total_len = r.u16()?;
        if (total_len as usize) < IPV4_HEADER_LEN {
            return Err(WireError::InvalidField {
                field: "total_len",
                value: u64::from(total_len),
            });
        }
        let ident = r.u16()?;
        let flags_frag = r.u16()?;
        if flags_frag & 0x3fff != 0 {
            return Err(WireError::InvalidField {
                field: "fragment",
                value: u64::from(flags_frag),
            });
        }
        let ttl = r.u8()?;
        let proto = IpProto::from_raw(r.u8()?);
        let got_ck = r.u16()?;
        let src = Ipv4Addr::from(r.u32()?);
        let dst = Ipv4Addr::from(r.u32()?);

        // Recompute the checksum over the raw header bytes.
        let hdr = Ipv4Header {
            total_len,
            ident,
            ttl,
            proto,
            src,
            dst,
        };
        let mut w = Writer::with_capacity(IPV4_HEADER_LEN);
        hdr.encode(&mut w);
        let want = u16::from_be_bytes([w.as_slice()[10], w.as_slice()[11]]);
        if got_ck != want {
            return Err(WireError::BadChecksum { got: got_ck, want });
        }
        debug_assert_eq!(r.position() - start, IPV4_HEADER_LEN);
        Ok(hdr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header {
            total_len: 60,
            ident: 0x1234,
            ttl: 64,
            proto: IpProto::Tcp,
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(192, 168, 1, 2),
        }
    }

    #[test]
    fn round_trip() {
        let h = sample();
        let mut w = Writer::new();
        h.encode(&mut w);
        let buf = w.finish();
        assert_eq!(buf.len(), IPV4_HEADER_LEN);
        let mut r = Reader::new(&buf);
        assert_eq!(Ipv4Header::decode(&mut r).unwrap(), h);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut w = Writer::new();
        sample().encode(&mut w);
        let mut buf = w.finish().to_vec();
        buf[15] ^= 0x40; // flip a bit in src address
        let mut r = Reader::new(&buf);
        assert!(matches!(
            Ipv4Header::decode(&mut r),
            Err(WireError::BadChecksum { .. })
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut w = Writer::new();
        sample().encode(&mut w);
        let mut buf = w.finish().to_vec();
        buf[0] = 0x65; // version 6
        let mut r = Reader::new(&buf);
        assert!(matches!(
            Ipv4Header::decode(&mut r),
            Err(WireError::InvalidField {
                field: "version",
                ..
            })
        ));
    }

    #[test]
    fn rejects_options() {
        let mut w = Writer::new();
        sample().encode(&mut w);
        let mut buf = w.finish().to_vec();
        buf[0] = 0x46; // IHL 6
        let mut r = Reader::new(&buf);
        assert!(matches!(
            Ipv4Header::decode(&mut r),
            Err(WireError::InvalidField { field: "ihl", .. })
        ));
    }

    #[test]
    fn rejects_short_total_len() {
        let mut h = sample();
        h.total_len = 10;
        let mut w = Writer::new();
        h.encode(&mut w);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(matches!(
            Ipv4Header::decode(&mut r),
            Err(WireError::InvalidField {
                field: "total_len",
                ..
            })
        ));
    }
}

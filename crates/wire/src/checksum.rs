//! RFC 1071 internet checksum, used by the IPv4 header codec.

/// Compute the 16-bit one's-complement internet checksum of `data`.
///
/// A trailing odd byte is padded with zero, per RFC 1071. The returned
/// value is the final complemented sum, ready to be stored in a header
/// checksum field.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Verify a buffer that embeds its own checksum: summing the whole buffer
/// (checksum field included) must yield zero.
pub fn verify(data: &[u8]) -> bool {
    internet_checksum(data) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // The classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_padded() {
        assert_eq!(internet_checksum(&[0xff]), !0xff00);
    }

    #[test]
    fn embedded_checksum_verifies() {
        let mut data = vec![
            0x45u8, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0, 0,
        ];
        let ck = internet_checksum(&data);
        data[10] = (ck >> 8) as u8;
        data[11] = (ck & 0xff) as u8;
        assert!(verify(&data));
        // Flipping any byte breaks it.
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn zero_buffer() {
        assert_eq!(internet_checksum(&[]), 0xffff);
    }
}

//! Ethernet II header codec.

use crate::cursor::{Reader, Writer};
use crate::WireError;

/// Length of an Ethernet II header in bytes.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address ff:ff:ff:ff:ff:ff.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Deterministic locally-administered MAC for a simulated node index,
    /// `02:00:00:00:hh:ll`.
    pub fn for_node(index: u16) -> MacAddr {
        let [hi, lo] = index.to_be_bytes();
        MacAddr([0x02, 0, 0, 0, hi, lo])
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType values used by this workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EtherType {
    /// IPv4 (0x0800): all NF data traffic.
    Ipv4,
    /// SwiShmem replication protocol (experimental EtherType 0x88b5,
    /// the IEEE 802 local-experimental value).
    Swish,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl EtherType {
    /// Raw 16-bit value.
    pub fn raw(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Swish => 0x88b5,
            EtherType::Other(v) => v,
        }
    }

    /// Classify a raw value.
    pub fn from_raw(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x88b5 => EtherType::Swish,
            other => EtherType::Other(other),
        }
    }
}

/// An Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload EtherType.
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Append this header to `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.bytes(&self.dst.0);
        w.bytes(&self.src.0);
        w.u16(self.ethertype.raw());
    }

    /// Decode a header from `r`.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut dst = [0u8; 6];
        dst.copy_from_slice(r.bytes(6)?);
        let mut src = [0u8; 6];
        src.copy_from_slice(r.bytes(6)?);
        let ethertype = EtherType::from_raw(r.u16()?);
        Ok(EthernetHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = EthernetHeader {
            dst: MacAddr::BROADCAST,
            src: MacAddr::for_node(3),
            ethertype: EtherType::Swish,
        };
        let mut w = Writer::new();
        h.encode(&mut w);
        let buf = w.finish();
        assert_eq!(buf.len(), ETHERNET_HEADER_LEN);
        let mut r = Reader::new(&buf);
        assert_eq!(EthernetHeader::decode(&mut r).unwrap(), h);
    }

    #[test]
    fn ethertype_classification() {
        assert_eq!(EtherType::from_raw(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from_raw(0x88b5), EtherType::Swish);
        assert_eq!(EtherType::from_raw(0x86dd), EtherType::Other(0x86dd));
        assert_eq!(EtherType::Other(0x86dd).raw(), 0x86dd);
    }

    #[test]
    fn node_macs_are_unique_and_local() {
        let a = MacAddr::for_node(1);
        let b = MacAddr::for_node(258);
        assert_ne!(a, b);
        // Locally-administered bit set, multicast bit clear.
        assert_eq!(a.0[0] & 0x03, 0x02);
        assert_eq!(a.to_string(), "02:00:00:00:00:01");
    }

    #[test]
    fn decode_truncated() {
        let buf = [0u8; 10];
        let mut r = Reader::new(&buf);
        assert!(EthernetHeader::decode(&mut r).is_err());
    }
}

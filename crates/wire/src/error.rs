//! Error type shared by all codecs in this crate.

/// Errors produced while encoding or decoding wire formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the field at `offset` (needed `needed` more
    /// bytes).
    Truncated {
        /// Byte offset at which the read was attempted.
        offset: usize,
        /// Number of bytes the field still required.
        needed: usize,
    },
    /// A field carried a value outside its legal range.
    InvalidField {
        /// Human-readable field name.
        field: &'static str,
        /// The offending raw value, widened to u64.
        value: u64,
    },
    /// A message tag/discriminant was not recognized.
    UnknownTag(u8),
    /// The protocol version byte did not match [`crate::swish::WIRE_VERSION`].
    VersionMismatch {
        /// Version found in the buffer.
        got: u8,
        /// Version this library speaks.
        want: u8,
    },
    /// A checksum did not verify.
    BadChecksum {
        /// Checksum found in the buffer.
        got: u16,
        /// Checksum computed over the buffer.
        want: u16,
    },
    /// A length field disagreed with the actual buffer length.
    LengthMismatch {
        /// Declared length.
        declared: usize,
        /// Actual length available.
        actual: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { offset, needed } => {
                write!(
                    f,
                    "buffer truncated at offset {offset}, needed {needed} more bytes"
                )
            }
            WireError::InvalidField { field, value } => {
                write!(f, "invalid value {value} for field {field}")
            }
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            WireError::VersionMismatch { got, want } => {
                write!(f, "wire version mismatch: got {got}, want {want}")
            }
            WireError::BadChecksum { got, want } => {
                write!(f, "bad checksum: got {got:#06x}, want {want:#06x}")
            }
            WireError::LengthMismatch { declared, actual } => {
                write!(f, "length mismatch: declared {declared}, actual {actual}")
            }
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let cases: Vec<(WireError, &str)> = vec![
            (
                WireError::Truncated {
                    offset: 4,
                    needed: 2,
                },
                "buffer truncated at offset 4, needed 2 more bytes",
            ),
            (
                WireError::InvalidField {
                    field: "ihl",
                    value: 3,
                },
                "invalid value 3 for field ihl",
            ),
            (WireError::UnknownTag(0xff), "unknown message tag 0xff"),
            (
                WireError::VersionMismatch { got: 2, want: 1 },
                "wire version mismatch: got 2, want 1",
            ),
        ];
        for (err, s) in cases {
            assert_eq!(err.to_string(), s);
        }
    }
}

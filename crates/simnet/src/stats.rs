//! Traffic accounting: per-class and per-link byte/packet counters.
//!
//! The bandwidth-overhead experiments (E2, E13, E14 in DESIGN.md) are
//! computed entirely from these counters, so classification must cover
//! every message type.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use swishmem_wire::{NodeId, Packet, PacketBody, SwishMsg};

/// Multiply-and-rotate hasher (FxHash-style) for the small integer keys
/// used below. `record_delivery` runs once per delivered frame, so the
/// default SipHash cost dominates otherwise.
#[derive(Default)]
struct FxHasher(u64);

const FX_SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Traffic classes, for attribution of bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrafficClass {
    /// NF data packets.
    Data,
    /// SRO/ERO chain write requests.
    SroWrite,
    /// SRO/ERO acks and pending-clears.
    SroControl,
    /// EWO sync updates (eager mirrors and periodic sync alike).
    EwoSync,
    /// Snapshot/recovery transfer.
    Snapshot,
    /// Reads forwarded to the tail.
    ReadForward,
    /// Range-migration state transfer (reconfiguration engine).
    Migration,
    /// Heartbeats, configuration, directory.
    Management,
}

impl TrafficClass {
    /// Classify a packet.
    pub fn of(pkt: &Packet) -> TrafficClass {
        match &pkt.body {
            PacketBody::Data(_) => TrafficClass::Data,
            PacketBody::Swish(m) => match m {
                SwishMsg::Write(_) => TrafficClass::SroWrite,
                SwishMsg::Ack(_) | SwishMsg::Clear(_) => TrafficClass::SroControl,
                SwishMsg::Sync(_) => TrafficClass::EwoSync,
                SwishMsg::SnapReq(_) | SwishMsg::SnapChunk(_) | SwishMsg::CatchupDone(_) => {
                    TrafficClass::Snapshot
                }
                SwishMsg::ReadForward(_) => TrafficClass::ReadForward,
                SwishMsg::MigrateChunk(_) => TrafficClass::Migration,
                SwishMsg::Chain(_)
                | SwishMsg::Group(_)
                | SwishMsg::Heartbeat(_)
                | SwishMsg::DirLookup(_)
                | SwishMsg::DirReply(_)
                | SwishMsg::MigrateBegin(_)
                | SwishMsg::OwnershipCommit(_)
                | SwishMsg::MigrateDone(_)
                | SwishMsg::LoadReport(_)
                | SwishMsg::CtrlPrepare(_)
                | SwishMsg::CtrlPromise(_)
                | SwishMsg::CtrlAccept(_)
                | SwishMsg::CtrlAccepted(_)
                | SwishMsg::CtrlLearn(_)
                | SwishMsg::CtrlHb(_)
                | SwishMsg::CtrlLead(_)
                | SwishMsg::CtrlSnap(_) => TrafficClass::Management,
            },
        }
    }

    /// All classes, for iteration in reports.
    pub const ALL: [TrafficClass; 8] = [
        TrafficClass::Data,
        TrafficClass::SroWrite,
        TrafficClass::SroControl,
        TrafficClass::EwoSync,
        TrafficClass::Snapshot,
        TrafficClass::ReadForward,
        TrafficClass::Migration,
        TrafficClass::Management,
    ];
}

/// Packet/byte counter pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    /// Packets counted.
    pub packets: u64,
    /// Bytes counted (true wire length).
    pub bytes: u64,
}

impl Counter {
    fn add(&mut self, bytes: usize) {
        self.packets += 1;
        self.bytes += bytes as u64;
    }
}

/// Why a frame was not delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Random loss on the link.
    Loss,
    /// No link configured between the endpoints.
    NoRoute,
    /// Destination (or source) node has failed.
    NodeDown,
    /// Link administratively down.
    LinkDown,
    /// Frame corrupted in flight (delivered to `on_corrupt_packet`, which
    /// by default discards).
    Corrupt,
}

impl DropReason {
    /// All reasons, for iteration in reports (and counter-array sizing).
    pub const ALL: [DropReason; 5] = [
        DropReason::Loss,
        DropReason::NoRoute,
        DropReason::NodeDown,
        DropReason::LinkDown,
        DropReason::Corrupt,
    ];
}

/// Aggregate simulation statistics.
///
/// Per-class and per-reason counters are flat arrays indexed by the enum
/// discriminant; only the per-link and per-node breakdowns (unbounded key
/// spaces) stay in hash maps, behind the cheap hasher above.
#[derive(Debug, Default, Clone)]
pub struct NetStats {
    delivered: [Counter; TrafficClass::ALL.len()],
    dropped: [Counter; DropReason::ALL.len()],
    per_link: FxMap<(NodeId, NodeId), Counter>,
    per_node_rx: FxMap<NodeId, Counter>,
}

impl NetStats {
    /// Record a successful delivery of `pkt` at hop `to` (equal to
    /// `pkt.dst` except when a relay forwards the frame).
    pub(crate) fn record_delivery(&mut self, pkt: &Packet, to: NodeId, bytes: usize) {
        self.delivered[TrafficClass::of(pkt) as usize].add(bytes);
        self.per_link.entry((pkt.src, to)).or_default().add(bytes);
        self.per_node_rx.entry(to).or_default().add(bytes);
    }

    /// Record a drop.
    pub(crate) fn record_drop(&mut self, reason: DropReason, bytes: usize) {
        self.dropped[reason as usize].add(bytes);
    }

    /// Delivered counter for one traffic class.
    pub fn delivered(&self, class: TrafficClass) -> Counter {
        self.delivered[class as usize]
    }

    /// Total delivered across all classes.
    pub fn delivered_total(&self) -> Counter {
        let mut total = Counter::default();
        for c in &self.delivered {
            total.packets += c.packets;
            total.bytes += c.bytes;
        }
        total
    }

    /// Dropped counter for one reason.
    pub fn dropped(&self, reason: DropReason) -> Counter {
        self.dropped[reason as usize]
    }

    /// Bytes delivered over the directed link `src -> dst`.
    pub fn link(&self, src: NodeId, dst: NodeId) -> Counter {
        self.per_link.get(&(src, dst)).copied().unwrap_or_default()
    }

    /// Bytes received by `node`.
    pub fn node_rx(&self, node: NodeId) -> Counter {
        self.per_node_rx.get(&node).copied().unwrap_or_default()
    }

    /// Fold another stats block into this one (sum every counter). Used
    /// by the sharded engine to merge per-shard accounting; addition is
    /// commutative, so merge order never affects the result.
    pub fn merge_from(&mut self, other: &NetStats) {
        for (d, s) in self.delivered.iter_mut().zip(other.delivered.iter()) {
            d.packets += s.packets;
            d.bytes += s.bytes;
        }
        for (d, s) in self.dropped.iter_mut().zip(other.dropped.iter()) {
            d.packets += s.packets;
            d.bytes += s.bytes;
        }
        for (k, c) in &other.per_link {
            let e = self.per_link.entry(*k).or_default();
            e.packets += c.packets;
            e.bytes += c.bytes;
        }
        for (k, c) in &other.per_node_rx {
            let e = self.per_node_rx.entry(*k).or_default();
            e.packets += c.packets;
            e.bytes += c.bytes;
        }
    }

    /// Reset all counters (used to scope measurements to a window).
    pub fn reset(&mut self) {
        self.delivered = Default::default();
        self.dropped = Default::default();
        self.per_link.clear();
        self.per_node_rx.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use swishmem_wire::swish::{Heartbeat, SyncUpdate, WriteAck, WriteOp, WriteRequest};
    use swishmem_wire::{DataPacket, FlowKey};

    fn data() -> Packet {
        Packet::data(
            NodeId(0),
            NodeId(1),
            DataPacket::udp(
                FlowKey::udp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 2),
                0,
                10,
            ),
        )
    }

    #[test]
    fn classification_covers_message_kinds() {
        let w = Packet::swish(
            NodeId(0),
            NodeId(1),
            SwishMsg::Write(WriteRequest {
                write_id: 1,
                writer: NodeId(0),
                epoch: 0,
                reg: 0,
                key: 0,
                seq: 0,
                op: WriteOp::Set(1),
                trace: swishmem_wire::TraceId::NONE,
            }),
        );
        let a = Packet::swish(
            NodeId(1),
            NodeId(0),
            SwishMsg::Ack(WriteAck {
                write_id: 1,
                writer: NodeId(0),
                reg: 0,
                key: 0,
                seq: 1,
                trace: swishmem_wire::TraceId::NONE,
            }),
        );
        let s = Packet::swish(
            NodeId(0),
            NodeId(1),
            SwishMsg::Sync(SyncUpdate {
                reg: 0,
                origin: NodeId(0),
                trace: swishmem_wire::TraceId::NONE,
                entries: vec![].into(),
            }),
        );
        let h = Packet::swish(
            NodeId(0),
            NodeId::CONTROLLER,
            SwishMsg::Heartbeat(Heartbeat {
                from: NodeId(0),
                epoch: 0,
            }),
        );
        assert_eq!(TrafficClass::of(&data()), TrafficClass::Data);
        assert_eq!(TrafficClass::of(&w), TrafficClass::SroWrite);
        assert_eq!(TrafficClass::of(&a), TrafficClass::SroControl);
        assert_eq!(TrafficClass::of(&s), TrafficClass::EwoSync);
        assert_eq!(TrafficClass::of(&h), TrafficClass::Management);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let mut st = NetStats::default();
        let p = data();
        st.record_delivery(&p, p.dst, 100);
        st.record_delivery(&p, p.dst, 50);
        st.record_drop(DropReason::Loss, 60);

        assert_eq!(
            st.delivered(TrafficClass::Data),
            Counter {
                packets: 2,
                bytes: 150
            }
        );
        assert_eq!(st.delivered_total().bytes, 150);
        assert_eq!(
            st.dropped(DropReason::Loss),
            Counter {
                packets: 1,
                bytes: 60
            }
        );
        assert_eq!(st.link(NodeId(0), NodeId(1)).packets, 2);
        assert_eq!(st.node_rx(NodeId(1)).bytes, 150);

        st.reset();
        assert_eq!(st.delivered_total().packets, 0);
    }
}

//! Engine observer hooks.
//!
//! Observers are notified synchronously from `Simulator::process` as
//! events are applied; they see deliveries and fault-plane transitions
//! but cannot influence the run (no RNG access, no event injection), so
//! attaching or detaching an observer never perturbs the determinism
//! fingerprint. The online consistency oracles in `swishmem-core` are
//! the primary consumer.

use crate::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;
use swishmem_wire::{NodeId, Packet};

/// One observable engine transition.
#[derive(Debug)]
pub enum NetEvent<'a> {
    /// A packet was delivered intact to `to` (about to be dispatched).
    Delivered {
        /// Receiving node.
        to: NodeId,
        /// The packet, borrowed from the engine for the callback only.
        pkt: &'a Packet,
    },
    /// A node failed (fail-stop: state wiped, traffic dropped).
    NodeFailed {
        /// The victim.
        node: NodeId,
    },
    /// A failed node restarted with fresh state.
    NodeRecovered {
        /// The node.
        node: NodeId,
    },
    /// The duplex link `a <-> b` changed administrative state.
    LinkChanged {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// True when the link went down, false when it came back.
        down: bool,
    },
    /// The duplex link `a <-> b` was degraded by the fault plane.
    LinkDegraded {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The duplex link `a <-> b` was restored to pristine parameters.
    LinkRestored {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
}

/// An owned [`NetEvent`], buffered by the sharded engine's worker cores
/// (which cannot call `Rc`-held observers from other threads) and
/// replayed through [`NetObserver::on_net_event`] on the control thread
/// after each run segment.
#[derive(Debug, Clone)]
pub(crate) enum OwnedNetEvent {
    Delivered { to: NodeId, pkt: Packet },
    NodeFailed { node: NodeId },
    NodeRecovered { node: NodeId },
    LinkChanged { a: NodeId, b: NodeId, down: bool },
    LinkDegraded { a: NodeId, b: NodeId },
    LinkRestored { a: NodeId, b: NodeId },
}

impl OwnedNetEvent {
    /// Borrowed view, for replay through the observer trait.
    pub(crate) fn as_net_event(&self) -> NetEvent<'_> {
        match self {
            OwnedNetEvent::Delivered { to, pkt } => NetEvent::Delivered { to: *to, pkt },
            OwnedNetEvent::NodeFailed { node } => NetEvent::NodeFailed { node: *node },
            OwnedNetEvent::NodeRecovered { node } => NetEvent::NodeRecovered { node: *node },
            OwnedNetEvent::LinkChanged { a, b, down } => NetEvent::LinkChanged {
                a: *a,
                b: *b,
                down: *down,
            },
            OwnedNetEvent::LinkDegraded { a, b } => NetEvent::LinkDegraded { a: *a, b: *b },
            OwnedNetEvent::LinkRestored { a, b } => NetEvent::LinkRestored { a: *a, b: *b },
        }
    }
}

/// Passive observer of engine transitions.
pub trait NetObserver {
    /// Called synchronously for each observable transition at `now`.
    fn on_net_event(&mut self, now: SimTime, ev: &NetEvent<'_>);
}

/// Shared handle to an observer, registered with `Simulator::add_observer`.
pub type ObserverHandle = Rc<RefCell<dyn NetObserver>>;

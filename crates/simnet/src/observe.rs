//! Engine observer hooks.
//!
//! Observers are notified synchronously from `Simulator::process` as
//! events are applied; they see deliveries and fault-plane transitions
//! but cannot influence the run (no RNG access, no event injection), so
//! attaching or detaching an observer never perturbs the determinism
//! fingerprint. The online consistency oracles in `swishmem-core` are
//! the primary consumer.

use crate::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;
use swishmem_wire::{NodeId, Packet};

/// One observable engine transition.
#[derive(Debug)]
pub enum NetEvent<'a> {
    /// A packet was delivered intact to `to` (about to be dispatched).
    Delivered {
        /// Receiving node.
        to: NodeId,
        /// The packet, borrowed from the engine for the callback only.
        pkt: &'a Packet,
    },
    /// A node failed (fail-stop: state wiped, traffic dropped).
    NodeFailed {
        /// The victim.
        node: NodeId,
    },
    /// A failed node restarted with fresh state.
    NodeRecovered {
        /// The node.
        node: NodeId,
    },
    /// The duplex link `a <-> b` changed administrative state.
    LinkChanged {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// True when the link went down, false when it came back.
        down: bool,
    },
    /// The duplex link `a <-> b` was degraded by the fault plane.
    LinkDegraded {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The duplex link `a <-> b` was restored to pristine parameters.
    LinkRestored {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
}

/// Passive observer of engine transitions.
pub trait NetObserver {
    /// Called synchronously for each observable transition at `now`.
    fn on_net_event(&mut self, now: SimTime, ev: &NetEvent<'_>);
}

/// Shared handle to an observer, registered with `Simulator::add_observer`.
pub type ObserverHandle = Rc<RefCell<dyn NetObserver>>;

//! The node abstraction: anything attached to the simulated network
//! (switches, hosts, the controller) implements [`Node`].

use crate::ctx::Ctx;
use swishmem_wire::Packet;

pub use swishmem_wire::NodeId;

/// A pure forwarder (a spine/aggregation switch carrying no NF): any
/// frame not addressed to it is re-sent toward its wire destination.
pub struct RelayNode;

impl Node for RelayNode {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut crate::ctx::Ctx<'_>) {
        if pkt.dst != ctx.self_id() {
            ctx.send(pkt.dst, pkt.body);
        }
    }
}

/// A simulated network element.
///
/// The engine calls these hooks with a [`Ctx`] through which the node can
/// send packets, join multicast groups' traffic, set timers, and draw
/// deterministic randomness. A node must never block; all waiting is
/// expressed through timers.
pub trait Node {
    /// Called once when the simulation starts (or when the node recovers
    /// from a failure with fresh state). Use it to arm periodic timers.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// A packet addressed to this node arrived.
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>);

    /// A timer armed via [`Ctx::set_timer`] fired. `token` is the value
    /// passed when arming.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}

    /// The node failed (fail-stop). State is conceptually lost; the engine
    /// stops delivering events. Implementations may clear internal state
    /// here so that a later recovery starts fresh.
    fn on_fail(&mut self) {}

    /// A corrupted frame arrived. Default behaviour mirrors a real switch:
    /// drop it silently (the engine has already counted it).
    fn on_corrupt_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
}

//! Sharded parallel simulation: conservative PDES over time-window
//! barriers.
//!
//! [`ShardedEngine`] partitions the topology into shards that each own a
//! slice of nodes and run a private event heap (optionally on a dedicated
//! worker thread), exchanging cross-shard frames at deterministic
//! time-window barriers. The lookahead bound is the minimum one-way link
//! latency Δ over the whole topology: a frame sent at `t` cannot arrive
//! before `t + Δ`, so shards that process windows `[kΔ, (k+1)Δ)` in
//! lockstep and trade mail between windows never receive an event behind
//! their local clock — the classic conservative-PDES argument, with the
//! window grid anchored at absolute zero so it is identical for every
//! shard count.
//!
//! # Determinism contract
//!
//! * **Shard count is a pure performance knob.** For `S ≥ 2` every node
//!   owns an RNG stream forked from the run seed via splitmix64 and every
//!   scheduled event carries a globally unique `(time, key)` pair whose
//!   key encodes its origin, so the processing order seen by any one node
//!   — and the merged stats/trace/span/observer output — is identical for
//!   `S = 2, 4, 8, …` and for any worker-thread count.
//! * **`S = 1` is bit-exact with [`crate::sim::Simulator`].** The single
//!   shard runs the legacy algorithm verbatim: one global RNG seeded
//!   `seed_from_u64(seed)` and one global insertion sequence, reproducing
//!   the golden determinism fingerprint unchanged.
//!
//! The two regimes necessarily differ from each other (a global RNG
//! cannot be partitioned), which is why the contract is stated this way:
//! `S = 1` preserves history, `S ≥ 2` are mutually identical.
//!
//! # Event keys
//!
//! In PDES mode a node-originated event gets the key
//! `(origin_id + 1) << 47 | per-origin-counter`; externally scheduled
//! events (injections, fault schedules) draw from an engine-level counter
//! and stay below `2^47`. Keys are unique across shards, so the event
//! heap's pop order is insertion-independent ([`crate::events`] pins
//! this) and the barrier's mailbox drain order is irrelevant.

use crate::ctx::{Command, Ctx, GroupId};
use crate::events::{EventKind, EventQueue};
use crate::fault::{FaultAction, FaultSchedule, LinkOverlay};
use crate::journal::{JournalCollector, JournalRecord};
use crate::observe::{ObserverHandle, OwnedNetEvent};
use crate::sim::NodeObj;
use crate::span::{SpanCollector, SpanEvent};
use crate::stats::{DropReason, NetStats};
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use crate::trace::TraceHandle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;
use swishmem_wire::{NodeId, Packet, PacketBody};

/// External events keep keys below this bit; node-origin keys sit above,
/// so the two spaces never collide.
const ORIGIN_SHIFT: u32 = 47;

/// splitmix64 finalizer — the standard seed-stream splitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-node RNG seed: a splitmix64 fork of the run seed by node id. A
/// pure function of `(seed, id)`, so it is independent of the partition.
fn node_seed(seed: u64, id: NodeId) -> u64 {
    splitmix64(seed ^ splitmix64(0x5157_4d45_4d00_0000 | u64::from(id.0)))
}

/// Node-id → shard lookup, shared by all shard cores.
#[derive(Default)]
struct ShardMap {
    /// `NodeId.index()` → shard. Unregistered ids map to shard 0, which
    /// makes their `NoRoute` accounting land deterministically.
    of: Vec<u32>,
}

impl ShardMap {
    #[inline]
    fn shard_of(&self, id: NodeId) -> u32 {
        self.of.get(id.index()).copied().unwrap_or(0)
    }
}

/// A cross-shard frame in flight, parked in a mailbox until the barrier.
struct Mail {
    time: u64,
    key: u64,
    to: NodeId,
    pkt: Packet,
    corrupt: bool,
}

/// A deferred multicast-group update (PDES mode): collected at the
/// barrier, sorted by `(time, key)`, and applied to every shard's
/// topology copy uniformly, so group membership is replicated and takes
/// effect from the next window regardless of which shard issued it.
#[derive(Clone)]
struct GroupCmd {
    time: u64,
    key: u64,
    group: GroupId,
    members: Vec<NodeId>,
}

/// How a shard core allocates event keys and randomness.
enum Mode {
    /// `S = 1`: the legacy algorithm — one global RNG, one global
    /// insertion sequence shared by external and internal events.
    Legacy { rng: StdRng, seq: u64 },
    /// `S ≥ 2`: per-node RNG streams and per-origin key counters,
    /// indexed by local slot.
    Pdes { rngs: Vec<StdRng>, ctrs: Vec<u64> },
}

struct ShardSlot {
    id: NodeId,
    node: Box<dyn NodeObj + Send>,
    failed: bool,
}

/// Sentinel in the id → slot table.
const ABSENT: u32 = u32::MAX;

/// One shard core: a self-contained event loop over the nodes it owns.
/// `Send`, so the windowed run loop can hand cores to worker threads.
struct Engine {
    shard: u32,
    now: SimTime,
    queue: EventQueue,
    node_index: Vec<u32>,
    nodes: Vec<ShardSlot>,
    topo: Topology,
    mode: Mode,
    stats: NetStats,
    events_processed: u64,
    peak_queue_depth: usize,
    /// Delivered-frame buffer `(time, key, pkt)`, when a trace handle is
    /// attached upstream; merged into it after each run segment.
    trace_buf: Option<Vec<(u64, u64, Packet)>>,
    /// Owned span sink, when a span handle is attached upstream.
    spans: Option<RefCell<SpanCollector>>,
    /// Owned journal sink, when a journal handle is attached upstream.
    journal: Option<RefCell<JournalCollector>>,
    /// Observer-event buffer `(time, key, event)`, when observers are
    /// registered upstream; replayed through them after each run segment.
    obs_buf: Option<Vec<(u64, u64, OwnedNetEvent)>>,
    /// Per-destination-shard mailboxes, drained at window barriers.
    outbox: Vec<Vec<Mail>>,
    /// Deferred group updates (PDES mode).
    group_out: Vec<GroupCmd>,
    cmd_scratch: Vec<Command>,
    member_scratch: Vec<NodeId>,
    map: Arc<ShardMap>,
    wire_check: bool,
}

impl Engine {
    fn new(
        shard: u32,
        shards: usize,
        topo: Topology,
        legacy_seed: Option<u64>,
        map: Arc<ShardMap>,
    ) -> Engine {
        Engine {
            shard,
            now: SimTime::ZERO,
            queue: EventQueue::default(),
            node_index: Vec::new(),
            nodes: Vec::new(),
            topo,
            mode: match legacy_seed {
                Some(seed) => Mode::Legacy {
                    rng: StdRng::seed_from_u64(seed),
                    seq: 0,
                },
                None => Mode::Pdes {
                    rngs: Vec::new(),
                    ctrs: Vec::new(),
                },
            },
            stats: NetStats::default(),
            events_processed: 0,
            peak_queue_depth: 0,
            trace_buf: None,
            spans: None,
            journal: None,
            obs_buf: None,
            outbox: (0..shards).map(|_| Vec::new()).collect(),
            group_out: Vec::new(),
            cmd_scratch: Vec::new(),
            member_scratch: Vec::new(),
            map,
            wire_check: false,
        }
    }

    fn add_node(&mut self, id: NodeId, node: Box<dyn NodeObj + Send>, run_seed: u64) {
        let i = id.index();
        if i >= self.node_index.len() {
            self.node_index.resize(i + 1, ABSENT);
        }
        assert!(self.node_index[i] == ABSENT, "duplicate node id {id}");
        self.node_index[i] = self.nodes.len() as u32;
        self.nodes.push(ShardSlot {
            id,
            node,
            failed: false,
        });
        if let Mode::Pdes { rngs, ctrs } = &mut self.mode {
            rngs.push(StdRng::seed_from_u64(node_seed(run_seed, id)));
            ctrs.push(0);
        }
    }

    #[inline]
    fn slot_of(&self, id: NodeId) -> Option<usize> {
        match self.node_index.get(id.index()) {
            Some(&s) if s != ABSENT => Some(s as usize),
            _ => None,
        }
    }

    fn node<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.slot_of(id)
            .and_then(|s| (*self.nodes[s].node).as_any().downcast_ref())
    }

    fn node_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        let s = self.slot_of(id)?;
        (*self.nodes[s].node).as_any_mut().downcast_mut()
    }

    /// Allocate the key for an event originated by the node in
    /// `origin_slot`. Legacy mode draws the global sequence; PDES mode
    /// draws the origin's counter, which advances identically under any
    /// partition because a node's processing is partition-invariant.
    fn alloc_key(&mut self, origin_slot: usize) -> u64 {
        match &mut self.mode {
            Mode::Legacy { seq, .. } => {
                let k = *seq;
                *seq += 1;
                k
            }
            Mode::Pdes { ctrs, .. } => {
                let c = ctrs[origin_slot];
                ctrs[origin_slot] += 1;
                (u64::from(self.nodes[origin_slot].id.0) + 1) << ORIGIN_SHIFT | c
            }
        }
    }

    #[inline]
    fn push(&mut self, time: SimTime, key: u64, kind: EventKind) {
        self.queue.push(time, key, kind);
        self.peak_queue_depth = self.peak_queue_depth.max(self.queue.len());
    }

    /// Schedule an externally keyed event. Legacy mode substitutes its
    /// global sequence so `S = 1` reproduces the sequential engine's
    /// key stream bit-for-bit.
    fn push_ext(&mut self, time: SimTime, key: u64, kind: EventKind) {
        match &mut self.mode {
            Mode::Legacy { seq, .. } => {
                let k = *seq;
                *seq += 1;
                self.queue.push(time, k, kind);
            }
            Mode::Pdes { .. } => self.queue.push(time, key, kind),
        }
        self.peak_queue_depth = self.peak_queue_depth.max(self.queue.len());
    }

    #[inline]
    fn push_mail(&mut self, m: Mail) {
        self.push(
            SimTime(m.time),
            m.key,
            EventKind::Deliver {
                to: m.to,
                pkt: m.pkt,
                corrupt: m.corrupt,
            },
        );
    }

    /// `on_start` for every owned node, in id order (matches the
    /// sequential engine's sorted start order when `S = 1`).
    fn start(&mut self) {
        let mut order: Vec<(NodeId, usize)> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(s, n)| (n.id, s))
            .collect();
        order.sort();
        for (_, slot) in order {
            self.dispatch(slot, |node, ctx| node.on_start(ctx));
        }
    }

    /// Process every pending event strictly before `end_excl`.
    fn run_window(&mut self, end_excl: u64) {
        while let Some(t) = self.queue.peek_time() {
            if t.0 >= end_excl {
                break;
            }
            let (time, key, kind) = self.queue.pop().expect("peeked");
            self.process(time, key, kind);
        }
    }

    fn process(&mut self, time: SimTime, key: u64, kind: EventKind) {
        debug_assert!(time >= self.now, "time went backwards");
        self.now = time;
        // Link events are replicated to both endpoint-owning shards; only
        // the observable copy (`notify`) counts, so `events_processed`
        // tallies logical events and stays shard-count-invariant.
        let replica = matches!(
            kind,
            EventKind::LinkSet { notify: false, .. }
                | EventKind::LinkDegrade { notify: false, .. }
                | EventKind::LinkRestore { notify: false, .. }
        );
        if !replica {
            self.events_processed += 1;
        }
        match kind {
            EventKind::Deliver { to, pkt, corrupt } => match self.slot_of(to) {
                None => {
                    self.stats.record_drop(DropReason::NoRoute, pkt.wire_len());
                }
                Some(slot) if self.nodes[slot].failed => {
                    self.stats.record_drop(DropReason::NodeDown, pkt.wire_len());
                }
                Some(slot) if corrupt => {
                    self.stats.record_drop(DropReason::Corrupt, pkt.wire_len());
                    self.dispatch(slot, |node, ctx| node.on_corrupt_packet(pkt, ctx));
                }
                Some(slot) => {
                    self.stats.record_delivery(&pkt, to, pkt.wire_len());
                    if self.wire_check {
                        let bytes = pkt.to_bytes();
                        assert_eq!(bytes.len(), pkt.wire_len(), "wire_len drift: {pkt:?}");
                        let mut reparsed = Packet::from_bytes(&bytes)
                            .unwrap_or_else(|e| panic!("undecodable frame {pkt:?}: {e}"));
                        if let (PacketBody::Data(a), PacketBody::Data(b)) =
                            (&pkt.body, &mut reparsed.body)
                        {
                            if a.flow.proto == 17 {
                                b.flow_seq = a.flow_seq;
                            }
                        }
                        assert_eq!(reparsed, pkt, "codec round-trip drift");
                    }
                    if let Some(buf) = &mut self.trace_buf {
                        buf.push((time.0, key, pkt.clone()));
                    }
                    if let Some(buf) = &mut self.obs_buf {
                        buf.push((
                            time.0,
                            key,
                            OwnedNetEvent::Delivered {
                                to,
                                pkt: pkt.clone(),
                            },
                        ));
                    }
                    self.dispatch(slot, |node, ctx| node.on_packet(pkt, ctx));
                }
            },
            EventKind::Timer { node, token } => {
                if let Some(slot) = self.slot_of(node) {
                    if !self.nodes[slot].failed {
                        self.dispatch(slot, |n, ctx| n.on_timer(token, ctx));
                    }
                }
            }
            EventKind::Fail { node } => {
                if let Some(slot) = self.slot_of(node) {
                    let s = &mut self.nodes[slot];
                    if !s.failed {
                        s.failed = true;
                        s.node.on_fail();
                        if let Some(buf) = &mut self.obs_buf {
                            buf.push((time.0, key, OwnedNetEvent::NodeFailed { node }));
                        }
                    }
                }
            }
            EventKind::Recover { node } => {
                if let Some(slot) = self.slot_of(node) {
                    if std::mem::replace(&mut self.nodes[slot].failed, false) {
                        if let Some(buf) = &mut self.obs_buf {
                            buf.push((time.0, key, OwnedNetEvent::NodeRecovered { node }));
                        }
                        self.dispatch(slot, |n, ctx| n.on_start(ctx));
                    }
                }
            }
            EventKind::LinkSet { a, b, down, notify } => {
                self.topo.set_link_down(a, b, down);
                if notify {
                    if let Some(buf) = &mut self.obs_buf {
                        buf.push((time.0, key, OwnedNetEvent::LinkChanged { a, b, down }));
                    }
                }
            }
            EventKind::LinkDegrade {
                a,
                b,
                overlay,
                notify,
            } => {
                self.topo.degrade_link(a, b, &overlay);
                if notify {
                    if let Some(buf) = &mut self.obs_buf {
                        buf.push((time.0, key, OwnedNetEvent::LinkDegraded { a, b }));
                    }
                }
            }
            EventKind::LinkRestore { a, b, notify } => {
                self.topo.restore_link(a, b);
                if notify {
                    if let Some(buf) = &mut self.obs_buf {
                        buf.push((time.0, key, OwnedNetEvent::LinkRestored { a, b }));
                    }
                }
            }
            EventKind::Vacant => unreachable!("vacant slab slot in the event queue"),
        }
    }

    fn dispatch<F>(&mut self, slot: usize, f: F)
    where
        F: FnOnce(&mut dyn NodeObj, &mut Ctx<'_>),
    {
        let mut commands = std::mem::take(&mut self.cmd_scratch);
        debug_assert!(commands.is_empty());
        let id = self.nodes[slot].id;
        {
            let rng = match &mut self.mode {
                Mode::Legacy { rng, .. } => rng,
                Mode::Pdes { rngs, .. } => &mut rngs[slot],
            };
            let mut ctx = Ctx {
                now: self.now,
                node: id,
                rng,
                commands: &mut commands,
                spans: self.spans.as_ref(),
                journal: self.journal.as_ref(),
            };
            f(self.nodes[slot].node.as_mut(), &mut ctx);
        }
        for cmd in commands.drain(..) {
            self.apply(id, slot, cmd);
        }
        self.cmd_scratch = commands;
    }

    fn take_members(&mut self, group: GroupId, from: NodeId) -> Vec<NodeId> {
        let mut members = std::mem::take(&mut self.member_scratch);
        members.clear();
        members.extend(
            self.topo
                .group(group)
                .iter()
                .copied()
                .filter(|&m| m != from),
        );
        members
    }

    fn apply(&mut self, from: NodeId, from_slot: usize, cmd: Command) {
        match cmd {
            Command::Send { to, body } => self.transmit(from, from_slot, to, body),
            Command::Multicast { group, body } => {
                let members = self.take_members(group, from);
                for &m in &members {
                    self.transmit(from, from_slot, m, body.clone());
                }
                self.member_scratch = members;
            }
            Command::Timer { delay, token } => {
                let t = self.now + delay;
                let key = self.alloc_key(from_slot);
                self.push(t, key, EventKind::Timer { node: from, token });
            }
            Command::SendRandom { group, body } => {
                let candidates = self.take_members(group, from);
                if !candidates.is_empty() {
                    let rng = match &mut self.mode {
                        Mode::Legacy { rng, .. } => rng,
                        Mode::Pdes { rngs, .. } => &mut rngs[from_slot],
                    };
                    let pick = candidates[rng.gen_range(0..candidates.len())];
                    self.member_scratch = candidates;
                    self.transmit(from, from_slot, pick, body);
                } else {
                    self.member_scratch = candidates;
                }
            }
            Command::SetGroup { group, members } => match &mut self.mode {
                Mode::Legacy { .. } => self.topo.set_group(group, members),
                Mode::Pdes { .. } => {
                    let key = self.alloc_key(from_slot);
                    self.group_out.push(GroupCmd {
                        time: self.now.0,
                        key,
                        group,
                        members,
                    });
                }
            },
        }
    }

    fn transmit(&mut self, from: NodeId, from_slot: usize, to: NodeId, body: PacketBody) {
        let pkt = Packet {
            src: from,
            dst: to,
            body,
        };
        let bytes = pkt.wire_len();
        if self.nodes[from_slot].failed {
            self.stats.record_drop(DropReason::NodeDown, bytes);
            return;
        }
        let (hop, link_ref) = match self.topo.resolve(from, to) {
            Some(r) => r,
            None => {
                self.stats.record_drop(DropReason::NoRoute, bytes);
                return;
            }
        };
        let link = self.topo.link_at(link_ref);
        if link.state.down {
            self.stats.record_drop(DropReason::LinkDown, bytes);
            return;
        }
        let params = link.params;
        // RNG draw order mirrors the sequential engine exactly.
        let rng = match &mut self.mode {
            Mode::Legacy { rng, .. } => rng,
            Mode::Pdes { rngs, .. } => &mut rngs[from_slot],
        };
        if params.drop_prob > 0.0 && rng.gen::<f64>() < params.drop_prob {
            self.stats.record_drop(DropReason::Loss, bytes);
            return;
        }
        let jitter = if params.jitter.as_nanos() > 0 {
            SimDuration::nanos(rng.gen_range(0..=params.jitter.as_nanos()))
        } else {
            SimDuration::ZERO
        };
        let corrupt = params.corrupt_prob > 0.0 && rng.gen::<f64>() < params.corrupt_prob;
        if let Some(arrival) = self
            .topo
            .link_at_mut(link_ref)
            .transmit(self.now, bytes, jitter)
        {
            let key = self.alloc_key(from_slot);
            let dest = self.map.shard_of(hop);
            if dest == self.shard {
                self.push(
                    arrival,
                    key,
                    EventKind::Deliver {
                        to: hop,
                        pkt,
                        corrupt,
                    },
                );
            } else {
                self.outbox[dest as usize].push(Mail {
                    time: arrival.0,
                    key,
                    to: hop,
                    pkt,
                    corrupt,
                });
            }
        } else {
            self.stats.record_drop(DropReason::LinkDown, bytes);
        }
    }
}

/// Barrier decision shared between worker threads.
#[derive(Clone, Copy)]
enum Decision {
    /// Run the window ending (exclusive) at the given time.
    Window(u64),
    /// No events remain at or below the bound.
    Done,
}

fn decide(peeks: &[AtomicU64], window: u64, bound: u64) -> Decision {
    let next = peeks
        .iter()
        .map(|p| p.load(Ordering::SeqCst))
        .min()
        .unwrap_or(u64::MAX);
    if next == u64::MAX || next > bound {
        return Decision::Done;
    }
    let w = next / window;
    let end = w
        .saturating_add(1)
        .saturating_mul(window)
        .min(bound.saturating_add(1));
    Decision::Window(end)
}

/// The sharded simulation engine.
///
/// Drop-in counterpart to [`crate::sim::Simulator`] for `Send` node
/// types: build nodes and topology, schedule external events, run. The
/// topology and node set freeze at the first schedule/inject/run call
/// (the partition is computed then); after that `add_node`,
/// `topology_mut` and `assign_shard` panic.
pub struct ShardedEngine {
    seed: u64,
    shards_req: usize,
    workers: usize,
    master_topo: Topology,
    pending: Vec<(NodeId, Box<dyn NodeObj + Send>)>,
    pins: Vec<(NodeId, u32)>,
    engines: Vec<Engine>,
    map: Arc<ShardMap>,
    /// The lookahead bound Δ, in nanoseconds (window width).
    window: u64,
    now: SimTime,
    ext_ctr: u64,
    started: bool,
    frozen: bool,
    trace: Option<TraceHandle>,
    spans: Option<SpanHandle>,
    journal: Option<JournalHandle>,
    observers: Vec<ObserverHandle>,
    wire_check: bool,
    crit_ns: u64,
}

use crate::journal::JournalHandle;
use crate::span::SpanHandle;

impl ShardedEngine {
    /// Create an engine that will partition its nodes into (at most)
    /// `shards` shards. `shards = 1` selects the legacy bit-exact mode.
    pub fn new(seed: u64, shards: usize) -> ShardedEngine {
        ShardedEngine {
            seed,
            shards_req: shards.max(1),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            master_topo: Topology::new(),
            pending: Vec::new(),
            pins: Vec::new(),
            engines: Vec::new(),
            map: Arc::new(ShardMap::default()),
            window: 1,
            now: SimTime::ZERO,
            ext_ctr: 0,
            started: false,
            frozen: false,
            trace: None,
            spans: None,
            journal: None,
            observers: Vec::new(),
            wire_check: false,
            crit_ns: 0,
        }
    }

    /// Cap the number of worker threads the windowed run loop uses.
    /// Purely a performance knob: results are identical for any value
    /// (1 selects the sequential round-robin loop).
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Register a node. Panics after the engine has frozen.
    pub fn add_node(&mut self, id: NodeId, node: Box<dyn NodeObj + Send>) {
        assert!(!self.frozen, "cannot add nodes after the engine froze");
        assert!(
            !self.pending.iter().any(|(i, _)| *i == id),
            "duplicate node id {id}"
        );
        self.pending.push((id, node));
    }

    /// Pin `id` to a specific shard, overriding the partitioner (useful
    /// for tests that need a known cross-shard placement). Panics after
    /// the engine has frozen.
    pub fn assign_shard(&mut self, id: NodeId, shard: u32) {
        assert!(!self.frozen, "cannot pin shards after the engine froze");
        self.pins.push((id, shard));
    }

    /// Mutable topology access (links, groups, routes). Panics after the
    /// engine has frozen — per-shard copies would silently diverge.
    pub fn topology_mut(&mut self) -> &mut Topology {
        assert!(
            !self.frozen,
            "topology is frozen after the first schedule/inject/run"
        );
        &mut self.master_topo
    }

    /// Read access to the topology. After freezing this reflects shard
    /// 0's copy: group membership is replicated across shards, but
    /// transient link state is only authoritative on the shard owning
    /// the link's source node.
    pub fn topology(&self) -> &Topology {
        if self.frozen {
            &self.engines[0].topo
        } else {
            &self.master_topo
        }
    }

    /// See [`crate::sim::Simulator::set_wire_check`].
    pub fn set_wire_check(&mut self, on: bool) {
        self.wire_check = on;
    }

    /// Attach a packet trace; per-shard buffers are merged into it in
    /// deterministic `(time, key, shard)` order after each run call.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// Attach a span collector (merged deterministically per run call).
    pub fn set_spans(&mut self, spans: SpanHandle) {
        self.spans = Some(spans);
    }

    /// Attach a journal collector (merged deterministically per run
    /// call, like the span collector).
    pub fn set_journal(&mut self, journal: JournalHandle) {
        self.journal = Some(journal);
    }

    /// Attach a passive observer. Events are buffered per shard during a
    /// run and replayed through the observer in deterministic
    /// `(time, key)` order after each run call — the same contract as
    /// the sequential engine except for the deferred delivery, which the
    /// passivity rule (observers cannot influence the run) makes
    /// equivalent.
    pub fn add_observer(&mut self, obs: ObserverHandle) {
        self.observers.push(obs);
    }

    /// Number of shards (after freezing; the requested count before).
    pub fn shards(&self) -> usize {
        if self.frozen {
            self.engines.len()
        } else {
            self.shards_req
        }
    }

    /// The barrier window width Δ (the lookahead bound).
    pub fn window(&self) -> SimDuration {
        SimDuration(self.window)
    }

    /// The shard owning `id` (meaningful after freezing).
    pub fn shard_of(&self, id: NodeId) -> u32 {
        self.map.shard_of(id)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed across all shards.
    pub fn events_processed(&self) -> u64 {
        self.engines.iter().map(|e| e.events_processed).sum()
    }

    /// Highest pending-queue depth any shard reached.
    pub fn peak_queue_depth(&self) -> usize {
        self.engines
            .iter()
            .map(|e| e.peak_queue_depth)
            .max()
            .unwrap_or(0)
    }

    /// Merged statistics (per-shard counters summed).
    pub fn stats(&self) -> NetStats {
        let mut out = NetStats::default();
        for e in &self.engines {
            out.merge_from(&e.stats);
        }
        out
    }

    /// Accumulated critical-path compute time: Σ over windows of the
    /// slowest shard's processing time for that window. The
    /// hardware-independent parallel-runtime lower bound — what the wall
    /// clock converges to with one core per shard (plus barrier costs).
    pub fn critical_path_ns(&self) -> u64 {
        self.crit_ns
    }

    /// Typed read access to a node.
    pub fn node<T: 'static>(&self, id: NodeId) -> Option<&T> {
        if !self.frozen {
            return self
                .pending
                .iter()
                .find(|(i, _)| *i == id)
                .and_then(|(_, n)| (**n).as_any().downcast_ref());
        }
        self.engines[self.map.shard_of(id) as usize].node(id)
    }

    /// Typed mutable access to a node.
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        if !self.frozen {
            return self
                .pending
                .iter_mut()
                .find(|(i, _)| *i == id)
                .and_then(|(_, n)| (**n).as_any_mut().downcast_mut());
        }
        self.engines[self.map.shard_of(id) as usize].node_mut(id)
    }

    /// Whether `id` is currently failed.
    pub fn is_failed(&self, id: NodeId) -> bool {
        if !self.frozen {
            return false;
        }
        self.engines[self.map.shard_of(id) as usize]
            .slot_of(id)
            .map(|s| self.engines[self.map.shard_of(id) as usize].nodes[s].failed)
            .unwrap_or(false)
    }

    /// Compute the partition, the lookahead bound, and the shard cores.
    /// Idempotent; called by the first schedule/inject/run.
    fn freeze(&mut self) {
        if self.frozen {
            return;
        }
        self.frozen = true;
        let n = self.pending.len();
        let shards = self.shards_req.clamp(1, n.max(1));
        let ids: Vec<NodeId> = self.pending.iter().map(|(id, _)| *id).collect();
        let mut assign: Vec<u32> = if shards <= 1 {
            vec![0; n]
        } else {
            self.master_topo.partition(&ids, shards)
        };
        for &(id, shard) in &self.pins {
            if let Some(i) = ids.iter().position(|&x| x == id) {
                assign[i] = shard.min(shards as u32 - 1);
            }
        }
        let max_idx = ids.iter().map(|id| id.index() + 1).max().unwrap_or(0);
        let mut of = vec![0u32; max_idx];
        for (i, id) in ids.iter().enumerate() {
            of[id.index()] = assign[i];
        }
        self.map = Arc::new(ShardMap { of });

        let delta = self
            .master_topo
            .min_latency()
            .map(|d| d.as_nanos())
            .unwrap_or(1_000);
        assert!(
            shards == 1 || delta > 0,
            "sharded runs need a positive minimum link latency (the lookahead bound); \
             use 1 shard for zero-latency topologies"
        );
        self.window = delta.max(1);

        let legacy = shards == 1;
        self.engines = (0..shards)
            .map(|s| {
                Engine::new(
                    s as u32,
                    shards,
                    self.master_topo.clone(),
                    legacy.then_some(self.seed),
                    self.map.clone(),
                )
            })
            .collect();
        let seed = self.seed;
        for (i, (id, node)) in self.pending.drain(..).enumerate() {
            self.engines[assign[i] as usize].add_node(id, node, seed);
        }
    }

    fn next_ext_key(&mut self) -> u64 {
        let k = self.ext_ctr;
        self.ext_ctr += 1;
        debug_assert!(k < 1 << ORIGIN_SHIFT, "external key space exhausted");
        k
    }

    /// Schedule delivery of `pkt` to `pkt.dst` at `t`, bypassing links.
    pub fn inject(&mut self, t: SimTime, pkt: Packet) {
        self.freeze();
        assert!(t >= self.now, "cannot inject into the past");
        let key = self.next_ext_key();
        let shard = self.map.shard_of(pkt.dst) as usize;
        let to = pkt.dst;
        self.engines[shard].push_ext(
            t,
            key,
            EventKind::Deliver {
                to,
                pkt,
                corrupt: false,
            },
        );
    }

    /// Schedule a fail-stop failure of `node` at `t` (owner shard).
    pub fn schedule_fail(&mut self, t: SimTime, node: NodeId) {
        self.freeze();
        let key = self.next_ext_key();
        let shard = self.map.shard_of(node) as usize;
        self.engines[shard].push_ext(t, key, EventKind::Fail { node });
    }

    /// Schedule recovery of `node` at `t` (owner shard).
    pub fn schedule_recover(&mut self, t: SimTime, node: NodeId) {
        self.freeze();
        let key = self.next_ext_key();
        let shard = self.map.shard_of(node) as usize;
        self.engines[shard].push_ext(t, key, EventKind::Recover { node });
    }

    /// Fire timer `token` on `node` at `t` (owner shard).
    pub fn schedule_trigger(&mut self, t: SimTime, node: NodeId, token: u64) {
        self.freeze();
        let key = self.next_ext_key();
        let shard = self.map.shard_of(node) as usize;
        self.engines[shard].push_ext(t, key, EventKind::Timer { node, token });
    }

    /// Route one link event into both endpoint-owning shards under the
    /// same external key; exactly one copy (the first endpoint's owner)
    /// carries the observer notification.
    fn push_link_event(
        &mut self,
        t: SimTime,
        a: NodeId,
        b: NodeId,
        make: impl Fn(bool) -> EventKind,
    ) {
        let key = self.next_ext_key();
        let sa = self.map.shard_of(a) as usize;
        let sb = self.map.shard_of(b) as usize;
        self.engines[sa].push_ext(t, key, make(true));
        if sb != sa {
            self.engines[sb].push_ext(t, key, make(false));
        }
    }

    /// Schedule the duplex link `a <-> b` going down (or up) at `t`.
    pub fn schedule_link_set(&mut self, t: SimTime, a: NodeId, b: NodeId, down: bool) {
        self.freeze();
        self.push_link_event(t, a, b, |notify| EventKind::LinkSet { a, b, down, notify });
    }

    /// Schedule a parameter overlay on the duplex link `a <-> b` at `t`.
    ///
    /// In PDES mode an overlay may not lower a link's latency below the
    /// lookahead bound Δ — that would let a frame arrive inside the
    /// window it was sent in, behind a peer shard's clock. Such overlays
    /// panic; raise the overlay latency or run single-shard.
    pub fn schedule_degrade(&mut self, t: SimTime, a: NodeId, b: NodeId, overlay: LinkOverlay) {
        self.freeze();
        if self.engines.len() > 1 {
            if let Some(l) = overlay.latency {
                assert!(
                    l.as_nanos() >= self.window,
                    "degrade overlay latency {l} is below the lookahead bound {} — \
                     cross-shard causality would break",
                    SimDuration(self.window)
                );
            }
        }
        self.push_link_event(t, a, b, |notify| EventKind::LinkDegrade {
            a,
            b,
            overlay,
            notify,
        });
    }

    /// Schedule restoration of the duplex link `a <-> b` at `t`.
    pub fn schedule_restore(&mut self, t: SimTime, a: NodeId, b: NodeId) {
        self.freeze();
        self.push_link_event(t, a, b, |notify| EventKind::LinkRestore { a, b, notify });
    }

    /// Install a [`FaultSchedule`]: every action lands on the shard that
    /// owns its target node (link events land on both endpoint owners),
    /// at the same `(time, key)` under any shard count.
    pub fn schedule_faults(&mut self, base: SimTime, sched: &FaultSchedule) {
        self.freeze();
        for ev in sched.events() {
            let t = base + ev.at;
            match ev.action {
                FaultAction::Crash { node } => self.schedule_fail(t, node),
                FaultAction::Restart { node } => self.schedule_recover(t, node),
                FaultAction::LinkDown { a, b } => self.schedule_link_set(t, a, b, true),
                FaultAction::LinkUp { a, b } => self.schedule_link_set(t, a, b, false),
                FaultAction::Degrade { a, b, overlay } => self.schedule_degrade(t, a, b, overlay),
                FaultAction::Restore { a, b } => self.schedule_restore(t, a, b),
                FaultAction::Trigger { node, token } => self.schedule_trigger(t, node, token),
            }
        }
    }

    /// Replace a multicast group's membership (replicated to every
    /// shard's topology copy once frozen).
    pub fn set_group(&mut self, group: GroupId, members: Vec<NodeId>) {
        if !self.frozen {
            self.master_topo.set_group(group, members);
            return;
        }
        for e in &mut self.engines {
            e.topo.set_group(group, members.clone());
        }
    }

    fn sync_sinks(&mut self) {
        let trace_on = self.trace.is_some();
        let spans_on = self.spans.is_some();
        let journal_on = self.journal.is_some();
        let obs_on = !self.observers.is_empty();
        let wc = self.wire_check;
        for e in &mut self.engines {
            if trace_on && e.trace_buf.is_none() {
                e.trace_buf = Some(Vec::new());
            }
            if spans_on && e.spans.is_none() {
                // Per-shard collectors are unbounded; the attached handle
                // enforces its own capacity at merge time.
                e.spans = Some(RefCell::new(SpanCollector::detached(usize::MAX)));
            }
            if journal_on && e.journal.is_none() {
                e.journal = Some(RefCell::new(JournalCollector::detached(usize::MAX)));
            }
            if obs_on && e.obs_buf.is_none() {
                e.obs_buf = Some(Vec::new());
            }
            e.wire_check = wc;
        }
    }

    fn start_once(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for e in &mut self.engines {
            e.start();
        }
        // on_start sends have arrivals ≥ Δ, i.e. beyond window 0's end;
        // exchanging here keeps them ahead of the first windowed run.
        self.exchange();
    }

    /// Move cross-shard mail and deferred group updates between shard
    /// cores (the sequential-loop barrier).
    fn exchange(&mut self) {
        let s = self.engines.len();
        let mut groups: Vec<GroupCmd> = Vec::new();
        for e in &mut self.engines {
            groups.append(&mut e.group_out);
        }
        groups.sort_by_key(|a| (a.time, a.key));
        for g in &groups {
            for e in &mut self.engines {
                e.topo.set_group(g.group, g.members.clone());
            }
        }
        for src in 0..s {
            for dst in 0..s {
                if src == dst {
                    continue;
                }
                let mail = std::mem::take(&mut self.engines[src].outbox[dst]);
                for m in mail {
                    self.engines[dst].push_mail(m);
                }
            }
        }
    }

    fn run_span(&mut self, bound: u64) {
        if self.workers > 1 && self.engines.len() > 1 {
            self.run_span_parallel(bound);
        } else {
            self.run_span_seq(bound);
        }
    }

    fn run_span_seq(&mut self, bound: u64) {
        if self.engines.len() == 1 {
            // Single shard: no barriers needed, one pass to the bound.
            let e = &mut self.engines[0];
            let t0 = Instant::now();
            e.run_window(bound.saturating_add(1));
            self.crit_ns += t0.elapsed().as_nanos() as u64;
            return;
        }
        loop {
            let next = self
                .engines
                .iter()
                .filter_map(|e| e.queue.peek_time())
                .map(|t| t.0)
                .min();
            let Some(next) = next else { break };
            if next > bound {
                break;
            }
            let w = next / self.window;
            let end = w
                .saturating_add(1)
                .saturating_mul(self.window)
                .min(bound.saturating_add(1));
            let mut worst = 0u64;
            for e in &mut self.engines {
                // An idle shard (next event beyond this window) does no
                // work and contributes nothing to the critical path.
                if e.queue.peek_time().map(|t| t.0 >= end).unwrap_or(true) {
                    continue;
                }
                let t0 = Instant::now();
                e.run_window(end);
                worst = worst.max(t0.elapsed().as_nanos() as u64);
            }
            self.crit_ns += worst;
            self.exchange();
        }
    }

    fn run_span_parallel(&mut self, bound: u64) {
        let s = self.engines.len();
        let nw = self.workers.min(s).max(1);
        let window = self.window;
        let barrier = Barrier::new(nw);
        let decision = Mutex::new(Decision::Done);
        let peeks: Vec<AtomicU64> = (0..s).map(|_| AtomicU64::new(u64::MAX)).collect();
        let grid: Vec<Vec<Mutex<Vec<Mail>>>> = (0..s)
            .map(|_| (0..s).map(|_| Mutex::new(Vec::new())).collect())
            .collect();
        let groups: Mutex<Vec<GroupCmd>> = Mutex::new(Vec::new());
        let win_ns = AtomicU64::new(0);
        let crit = AtomicU64::new(0);

        // Round-robin shard → worker buckets; worker 0 (the calling
        // thread) is the leader that computes window decisions.
        let mut buckets: Vec<Vec<&mut Engine>> = (0..nw).map(|_| Vec::new()).collect();
        for (i, e) in self.engines.iter_mut().enumerate() {
            buckets[i % nw].push(e);
        }

        let work = |leader: bool, mut bucket: Vec<&mut Engine>| {
            for e in bucket.iter() {
                peeks[e.shard as usize].store(
                    e.queue.peek_time().map(|t| t.0).unwrap_or(u64::MAX),
                    Ordering::SeqCst,
                );
            }
            barrier.wait();
            if leader {
                *decision.lock().unwrap() = decide(&peeks, window, bound);
            }
            barrier.wait();
            loop {
                let end = match *decision.lock().unwrap() {
                    Decision::Window(e) => e,
                    Decision::Done => break,
                };
                for e in bucket.iter_mut() {
                    // Idle shards (next event beyond this window) skip
                    // straight to the barrier: no work, no new outbound
                    // mail, zero critical-path contribution.
                    if e.queue.peek_time().map(|t| t.0 >= end).unwrap_or(true) {
                        continue;
                    }
                    let t0 = Instant::now();
                    e.run_window(end);
                    win_ns.fetch_max(t0.elapsed().as_nanos() as u64, Ordering::SeqCst);
                    let src = e.shard as usize;
                    for (dst, out) in e.outbox.iter_mut().enumerate() {
                        if !out.is_empty() {
                            grid[src][dst].lock().unwrap().append(out);
                        }
                    }
                    if !e.group_out.is_empty() {
                        groups.lock().unwrap().append(&mut e.group_out);
                    }
                }
                barrier.wait(); // all outboxes and group updates published
                if leader {
                    groups.lock().unwrap().sort_by_key(|a| (a.time, a.key));
                }
                barrier.wait(); // sorted group list readable
                let sorted: Vec<GroupCmd> = groups.lock().unwrap().clone();
                for e in bucket.iter_mut() {
                    for g in &sorted {
                        e.topo.set_group(g.group, g.members.clone());
                    }
                    let dst = e.shard as usize;
                    for row in grid.iter() {
                        let mail = std::mem::take(&mut *row[dst].lock().unwrap());
                        for m in mail {
                            e.push_mail(m);
                        }
                    }
                    peeks[dst].store(
                        e.queue.peek_time().map(|t| t.0).unwrap_or(u64::MAX),
                        Ordering::SeqCst,
                    );
                }
                barrier.wait(); // mail drained, peeks published
                if leader {
                    crit.fetch_add(win_ns.swap(0, Ordering::SeqCst), Ordering::SeqCst);
                    groups.lock().unwrap().clear();
                    *decision.lock().unwrap() = decide(&peeks, window, bound);
                }
                barrier.wait(); // decision readable
            }
        };

        std::thread::scope(|scope| {
            let mut iter = buckets.into_iter();
            let first = iter.next().expect("at least one bucket");
            for bucket in iter {
                let work = &work;
                scope.spawn(move || work(false, bucket));
            }
            work(true, first);
        });

        self.crit_ns += crit.load(Ordering::SeqCst);
    }

    /// Merge per-shard trace/span/observer buffers into the attached
    /// handles, in deterministic order.
    fn drain_sinks(&mut self) {
        let single = self.engines.len() == 1;
        if let Some(handle) = &self.trace {
            let mut all: Vec<(u64, u64, u32, Packet)> = Vec::new();
            for e in &mut self.engines {
                if let Some(buf) = &mut e.trace_buf {
                    let shard = e.shard;
                    all.extend(buf.drain(..).map(|(t, k, p)| (t, k, shard, p)));
                }
            }
            if !single {
                all.sort_by_key(|a| (a.0, a.1, a.2));
            }
            let mut tr = handle.borrow_mut();
            for (t, _, _, p) in &all {
                tr.record(SimTime(*t), p);
            }
        }
        if let Some(handle) = &self.spans {
            let mut all: Vec<SpanEvent> = Vec::new();
            for e in &mut self.engines {
                if let Some(col) = &e.spans {
                    all.append(&mut col.borrow_mut().take_events());
                }
            }
            if !single {
                // Span events carry no key; sort on all fields (exact
                // duplicates are interchangeable, so this is still a
                // shard-count-invariant order). Single-shard runs keep
                // emission order — bit-exact with the sequential engine.
                all.sort_by_key(|e| (e.time, e.trace.0, e.node.0, e.phase));
            }
            let mut sp = handle.borrow_mut();
            for e in &all {
                sp.record(e.time, e.trace, e.node, e.phase);
            }
        }
        if let Some(handle) = &self.journal {
            let mut all: Vec<JournalRecord> = Vec::new();
            for e in &mut self.engines {
                if let Some(col) = &e.journal {
                    all.append(&mut col.borrow_mut().take_records());
                }
            }
            if !single {
                // Journal records carry no key; sort on all fields (exact
                // duplicates are interchangeable, so this order is still
                // shard-count-invariant). Single-shard runs keep emission
                // order — bit-exact with the sequential engine.
                all.sort();
            }
            let mut j = handle.borrow_mut();
            for r in &all {
                j.record(*r);
            }
        }
        if !self.observers.is_empty() {
            let mut all: Vec<(u64, u64, u32, OwnedNetEvent)> = Vec::new();
            for e in &mut self.engines {
                if let Some(buf) = &mut e.obs_buf {
                    let shard = e.shard;
                    all.extend(buf.drain(..).map(|(t, k, ev)| (t, k, shard, ev)));
                }
            }
            if !single {
                all.sort_by_key(|a| (a.0, a.1, a.2));
            }
            for (t, _, _, ev) in &all {
                let view = ev.as_net_event();
                for obs in &self.observers {
                    obs.borrow_mut().on_net_event(SimTime(*t), &view);
                }
            }
        }
    }

    /// Run until simulated time reaches `t` (inclusive of events at `t`).
    pub fn run_until(&mut self, t: SimTime) {
        self.freeze();
        self.sync_sinks();
        self.start_once();
        self.run_span(t.0);
        for e in &mut self.engines {
            e.now = e.now.max(t);
        }
        self.now = self.now.max(t);
        self.drain_sinks();
    }

    /// Run for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now + d;
        self.run_until(t);
    }

    /// Run until every shard's queue drains or `limit` is reached;
    /// returns the final simulated time.
    pub fn run_until_quiescent(&mut self, limit: SimTime) -> SimTime {
        self.freeze();
        self.sync_sinks();
        self.start_once();
        self.run_span(limit.0);
        let remaining = self.engines.iter().any(|e| !e.queue.is_empty());
        if remaining {
            self.now = limit;
            for e in &mut self.engines {
                e.now = e.now.max(limit);
            }
        } else {
            let last = self.engines.iter().map(|e| e.now).max().unwrap_or(self.now);
            self.now = self.now.max(last);
        }
        self.drain_sinks();
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_seeds_are_distinct_and_stable() {
        let a = node_seed(1234, NodeId(0));
        let b = node_seed(1234, NodeId(1));
        let c = node_seed(1235, NodeId(0));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, node_seed(1234, NodeId(0)));
    }

    #[test]
    fn shard_map_defaults_unknown_ids_to_zero() {
        let m = ShardMap { of: vec![2, 1] };
        assert_eq!(m.shard_of(NodeId(0)), 2);
        assert_eq!(m.shard_of(NodeId(1)), 1);
        assert_eq!(m.shard_of(NodeId(999)), 0);
    }
}

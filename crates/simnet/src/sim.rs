//! The discrete-event simulation engine.
//!
//! Determinism contract: given the same seed, node set, topology, and
//! schedule of external events, two runs produce identical event orders,
//! identical RNG draws, and therefore identical statistics. This is
//! guaranteed by (a) a total order on events — `(time, insertion seq)` —
//! and (b) a single engine-owned RNG consumed only during deterministic
//! event processing.
//!
//! Hot-path layout: event payloads live in a slab and the priority queue
//! orders flat `(time, seq, slab index)` triples, so heap sifts move
//! 24-byte entries instead of full packets; node ids resolve through a
//! dense index table instead of a hash map; and per-dispatch command
//! buffers are pooled. See DESIGN.md's "Performance model" for the
//! measurements behind these choices.

use crate::capture::CaptureHandle;
use crate::ctx::{Command, Ctx, GroupId};
use crate::events::{EventKind, EventQueue};
use crate::fault::{FaultAction, FaultSchedule, LinkOverlay};
use crate::journal::JournalHandle;
use crate::node::Node;
use crate::observe::{NetEvent, ObserverHandle};
use crate::span::SpanHandle;
use crate::stats::{DropReason, NetStats};
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use crate::trace::TraceHandle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use swishmem_wire::{NodeId, Packet, PacketBody};

/// Blanket `Any`-access helper so the engine can hand out typed references
/// to nodes after a run (e.g. to read a switch's registers or metrics).
pub trait AsAny {
    /// Upcast to `&dyn Any`.
    fn as_any(&self) -> &dyn Any;
    /// Upcast to `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: 'static> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct NodeSlot {
    id: NodeId,
    node: Box<dyn NodeObj>,
    failed: bool,
}

/// Sentinel in the id -> slot table.
const ABSENT: u32 = u32::MAX;

/// Object-safe supertrait combining [`Node`] and [`AsAny`].
pub trait NodeObj: Node + AsAny {}
impl<T: Node + AsAny> NodeObj for T {}

/// The simulation engine.
pub struct Simulator {
    now: SimTime,
    seq: u64,
    queue: EventQueue,
    /// `NodeId.0` -> slot in `nodes` (`ABSENT` when unregistered).
    node_index: Vec<u32>,
    nodes: Vec<NodeSlot>,
    topo: Topology,
    rng: StdRng,
    stats: NetStats,
    started: bool,
    events_processed: u64,
    peak_queue_depth: usize,
    trace: Option<TraceHandle>,
    spans: Option<SpanHandle>,
    journal: Option<JournalHandle>,
    capture: Option<CaptureHandle>,
    observers: Vec<ObserverHandle>,
    wire_check: bool,
    /// Pooled command buffer reused across dispatches.
    cmd_scratch: Vec<Command>,
    /// Pooled member buffer reused across multicast/anycast fan-outs.
    member_scratch: Vec<NodeId>,
}

impl Simulator {
    /// Create a simulator with a deterministic seed.
    pub fn new(seed: u64) -> Simulator {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            queue: EventQueue::default(),
            node_index: Vec::new(),
            nodes: Vec::new(),
            topo: Topology::new(),
            rng: StdRng::seed_from_u64(seed),
            stats: NetStats::default(),
            started: false,
            events_processed: 0,
            peak_queue_depth: 0,
            trace: None,
            spans: None,
            journal: None,
            capture: None,
            observers: Vec::new(),
            wire_check: false,
            cmd_scratch: Vec::new(),
            member_scratch: Vec::new(),
        }
    }

    /// Enable wire-fidelity checking: every delivered frame is serialized
    /// through the real codecs and re-parsed; a mismatch panics. Catches
    /// any drift between the structured fast path and the byte encodings.
    /// (UDP data packets legitimately drop their simulator-side `flow_seq`
    /// on the wire, which the check accounts for.)
    pub fn set_wire_check(&mut self, on: bool) {
        self.wire_check = on;
    }

    /// Attach a packet trace: every delivered frame is recorded into it.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// Attach an ingress capture tap: every externally [`Simulator::inject`]ed
    /// packet is recorded (scheduled time + clone). Strictly passive,
    /// like the trace/span/journal collectors — attaching it never
    /// changes the event order or the RNG stream.
    pub fn set_capture(&mut self, capture: CaptureHandle) {
        self.capture = Some(capture);
    }

    /// Detach the capture tap.
    pub fn clear_capture(&mut self) {
        self.capture = None;
    }

    /// The attached capture tap, if any.
    pub fn capture(&self) -> Option<&CaptureHandle> {
        self.capture.as_ref()
    }

    /// Attach a span collector: [`Ctx::span`] markers emitted by nodes
    /// are recorded into it. Like the packet trace and observers this is
    /// strictly passive — attaching it never changes the event order or
    /// the RNG stream (`tests/determinism.rs` pins this).
    pub fn set_spans(&mut self, spans: SpanHandle) {
        self.spans = Some(spans);
    }

    /// Detach the span collector (span emission becomes a no-op again).
    pub fn clear_spans(&mut self) {
        self.spans = None;
    }

    /// The attached span collector, if any.
    pub fn spans(&self) -> Option<&SpanHandle> {
        self.spans.as_ref()
    }

    /// Attach a journal collector: [`Ctx::journal`] records emitted by
    /// nodes are recorded into it. Strictly passive, exactly like the
    /// span collector — attaching it never changes the event order or
    /// the RNG stream (`tests/determinism.rs` pins this).
    pub fn set_journal(&mut self, journal: JournalHandle) {
        self.journal = Some(journal);
    }

    /// Detach the journal collector (journal emission becomes a no-op).
    pub fn clear_journal(&mut self) {
        self.journal = None;
    }

    /// The attached journal collector, if any.
    pub fn journal(&self) -> Option<&JournalHandle> {
        self.journal.as_ref()
    }

    /// Attach a passive observer notified of deliveries and fault-plane
    /// transitions. Observers cannot influence the run; attaching one
    /// never changes the event order or RNG stream.
    pub fn add_observer(&mut self, obs: ObserverHandle) {
        self.observers.push(obs);
    }

    #[inline]
    fn notify(&self, ev: &NetEvent<'_>) {
        for obs in &self.observers {
            obs.borrow_mut().on_net_event(self.now, ev);
        }
    }

    /// Register a node under `id`. Panics if `id` is already taken.
    pub fn add_node(&mut self, id: NodeId, node: Box<dyn NodeObj>) {
        let i = id.index();
        if i >= self.node_index.len() {
            self.node_index.resize(i + 1, ABSENT);
        }
        assert!(self.node_index[i] == ABSENT, "duplicate node id {id}");
        self.node_index[i] = self.nodes.len() as u32;
        self.nodes.push(NodeSlot {
            id,
            node,
            failed: false,
        });
    }

    /// Slot index of `id`, if registered.
    #[inline]
    fn slot_of(&self, id: NodeId) -> Option<usize> {
        match self.node_index.get(id.index()) {
            Some(&s) if s != ABSENT => Some(s as usize),
            _ => None,
        }
    }

    /// Mutable access to the topology (add links/groups before or during a
    /// run).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    /// Read access to the topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// High-water mark of the pending event queue.
    pub fn peak_queue_depth(&self) -> usize {
        self.peak_queue_depth
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Mutable statistics (for windowed measurements via `reset`).
    pub fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    /// Typed read access to a node (post-run inspection).
    pub fn node<T: 'static>(&self, id: NodeId) -> Option<&T> {
        // Deref through the Box explicitly: the blanket AsAny impl would
        // otherwise resolve on `Box<dyn NodeObj>` itself.
        self.slot_of(id)
            .and_then(|s| (*self.nodes[s].node).as_any().downcast_ref())
    }

    /// Typed mutable access to a node.
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        let s = self.slot_of(id)?;
        (*self.nodes[s].node).as_any_mut().downcast_mut()
    }

    /// Whether `id` is currently failed.
    pub fn is_failed(&self, id: NodeId) -> bool {
        self.slot_of(id)
            .map(|s| self.nodes[s].failed)
            .unwrap_or(false)
    }

    fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(time, seq, kind);
        self.peak_queue_depth = self.peak_queue_depth.max(self.queue.len());
    }

    /// Schedule delivery of `pkt` to `pkt.dst` at absolute time `t`,
    /// bypassing links. Used to inject external (ingress) traffic.
    pub fn inject(&mut self, t: SimTime, pkt: Packet) {
        assert!(t >= self.now, "cannot inject into the past");
        if let Some(cap) = &self.capture {
            cap.borrow_mut().record(t, &pkt);
        }
        let to = pkt.dst;
        self.push(
            t,
            EventKind::Deliver {
                to,
                pkt,
                corrupt: false,
            },
        );
    }

    /// Schedule a fail-stop failure of `node` at time `t`.
    pub fn schedule_fail(&mut self, t: SimTime, node: NodeId) {
        self.push(t, EventKind::Fail { node });
    }

    /// Schedule recovery (fresh state) of `node` at time `t`.
    pub fn schedule_recover(&mut self, t: SimTime, node: NodeId) {
        self.push(t, EventKind::Recover { node });
    }

    /// Schedule the duplex link `a <-> b` going down (or up) at time `t`.
    pub fn schedule_link_set(&mut self, t: SimTime, a: NodeId, b: NodeId, down: bool) {
        self.push(
            t,
            EventKind::LinkSet {
                a,
                b,
                down,
                notify: true,
            },
        );
    }

    /// Schedule a parameter overlay on the duplex link `a <-> b` at `t`
    /// (loss/jitter/corruption burst or gray-failure slowness).
    pub fn schedule_degrade(&mut self, t: SimTime, a: NodeId, b: NodeId, overlay: LinkOverlay) {
        self.push(
            t,
            EventKind::LinkDegrade {
                a,
                b,
                overlay,
                notify: true,
            },
        );
    }

    /// Schedule restoration of the duplex link `a <-> b` to its pristine
    /// parameters at `t`.
    pub fn schedule_restore(&mut self, t: SimTime, a: NodeId, b: NodeId) {
        self.push(t, EventKind::LinkRestore { a, b, notify: true });
    }

    /// Install a [`FaultSchedule`]: each action becomes an ordinary engine
    /// event at `base + offset`, so the `(time, seq)` total order and the
    /// single engine RNG are untouched — the same seed plus the same
    /// schedule replays bit-for-bit, and an empty schedule changes nothing.
    pub fn schedule_faults(&mut self, base: SimTime, sched: &FaultSchedule) {
        for ev in sched.events() {
            let t = base + ev.at;
            match ev.action {
                FaultAction::Crash { node } => self.schedule_fail(t, node),
                FaultAction::Restart { node } => self.schedule_recover(t, node),
                FaultAction::LinkDown { a, b } => self.schedule_link_set(t, a, b, true),
                FaultAction::LinkUp { a, b } => self.schedule_link_set(t, a, b, false),
                FaultAction::Degrade { a, b, overlay } => self.schedule_degrade(t, a, b, overlay),
                FaultAction::Restore { a, b } => self.schedule_restore(t, a, b),
                FaultAction::Trigger { node, token } => {
                    self.push(t, EventKind::Timer { node, token })
                }
            }
        }
    }

    /// Call `on_start` on every node (idempotent; run methods call it
    /// automatically).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let mut order: Vec<(NodeId, usize)> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(s, n)| (n.id, s))
            .collect();
        order.sort(); // deterministic start order
        for (_, slot) in order {
            self.dispatch(slot, |node, ctx| node.on_start(ctx));
        }
    }

    /// Run until simulated time reaches `t` (inclusive of events at `t`).
    pub fn run_until(&mut self, t: SimTime) {
        self.start();
        while let Some(et) = self.queue.peek_time() {
            if et > t {
                break;
            }
            let (time, _, kind) = self.queue.pop().expect("peeked");
            self.process(time, kind);
        }
        self.now = self.now.max(t);
    }

    /// Run for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now + d;
        self.run_until(t);
    }

    /// Run until the event queue drains or `limit` is reached; returns the
    /// final simulated time.
    pub fn run_until_quiescent(&mut self, limit: SimTime) -> SimTime {
        self.start();
        while let Some(et) = self.queue.peek_time() {
            if et > limit {
                self.now = limit;
                return self.now;
            }
            let (time, _, kind) = self.queue.pop().expect("peeked");
            self.process(time, kind);
        }
        self.now
    }

    fn process(&mut self, time: SimTime, kind: EventKind) {
        debug_assert!(time >= self.now, "time went backwards");
        self.now = time;
        self.events_processed += 1;
        match kind {
            EventKind::Deliver { to, pkt, corrupt } => {
                match self.slot_of(to) {
                    None => {
                        self.stats.record_drop(DropReason::NoRoute, pkt.wire_len());
                    }
                    Some(slot) if self.nodes[slot].failed => {
                        self.stats.record_drop(DropReason::NodeDown, pkt.wire_len());
                    }
                    Some(slot) if corrupt => {
                        self.stats.record_drop(DropReason::Corrupt, pkt.wire_len());
                        self.dispatch(slot, |node, ctx| node.on_corrupt_packet(pkt, ctx));
                    }
                    Some(slot) => {
                        self.stats.record_delivery(&pkt, to, pkt.wire_len());
                        if self.wire_check {
                            let bytes = pkt.to_bytes();
                            assert_eq!(bytes.len(), pkt.wire_len(), "wire_len drift: {pkt:?}");
                            let mut reparsed = Packet::from_bytes(&bytes)
                                .unwrap_or_else(|e| panic!("undecodable frame {pkt:?}: {e}"));
                            // UDP has no sequence field on the wire.
                            if let (PacketBody::Data(a), PacketBody::Data(b)) =
                                (&pkt.body, &mut reparsed.body)
                            {
                                if a.flow.proto == 17 {
                                    b.flow_seq = a.flow_seq;
                                }
                            }
                            assert_eq!(reparsed, pkt, "codec round-trip drift");
                        }
                        if let Some(trace) = &self.trace {
                            trace.borrow_mut().record(self.now, &pkt);
                        }
                        if !self.observers.is_empty() {
                            self.notify(&NetEvent::Delivered { to, pkt: &pkt });
                        }
                        self.dispatch(slot, |node, ctx| node.on_packet(pkt, ctx));
                    }
                }
            }
            EventKind::Timer { node, token } => {
                if let Some(slot) = self.slot_of(node) {
                    if !self.nodes[slot].failed {
                        self.dispatch(slot, |n, ctx| n.on_timer(token, ctx));
                    }
                }
            }
            EventKind::Fail { node } => {
                if let Some(slot) = self.slot_of(node) {
                    let s = &mut self.nodes[slot];
                    if !s.failed {
                        s.failed = true;
                        s.node.on_fail();
                        self.notify(&NetEvent::NodeFailed { node });
                    }
                }
            }
            EventKind::Recover { node } => {
                if let Some(slot) = self.slot_of(node) {
                    if std::mem::replace(&mut self.nodes[slot].failed, false) {
                        self.notify(&NetEvent::NodeRecovered { node });
                        self.dispatch(slot, |n, ctx| n.on_start(ctx));
                    }
                }
            }
            EventKind::LinkSet { a, b, down, .. } => {
                self.topo.set_link_down(a, b, down);
                self.notify(&NetEvent::LinkChanged { a, b, down });
            }
            EventKind::LinkDegrade { a, b, overlay, .. } => {
                self.topo.degrade_link(a, b, &overlay);
                self.notify(&NetEvent::LinkDegraded { a, b });
            }
            EventKind::LinkRestore { a, b, .. } => {
                self.topo.restore_link(a, b);
                self.notify(&NetEvent::LinkRestored { a, b });
            }
            EventKind::Vacant => unreachable!("vacant slab slot in the event queue"),
        }
    }

    /// Run a node callback and apply the commands it issued. The command
    /// buffer is pooled: steady-state dispatches allocate nothing.
    fn dispatch<F>(&mut self, slot: usize, f: F)
    where
        F: FnOnce(&mut dyn NodeObj, &mut Ctx<'_>),
    {
        let mut commands = std::mem::take(&mut self.cmd_scratch);
        debug_assert!(commands.is_empty());
        let id = self.nodes[slot].id;
        {
            let mut ctx = Ctx {
                now: self.now,
                node: id,
                rng: &mut self.rng,
                commands: &mut commands,
                spans: self.spans.as_deref(),
                journal: self.journal.as_deref(),
            };
            f(self.nodes[slot].node.as_mut(), &mut ctx);
        }
        for cmd in commands.drain(..) {
            self.apply(id, cmd);
        }
        self.cmd_scratch = commands;
    }

    /// Collect `group` members other than `from` into the pooled member
    /// buffer; the caller must hand the buffer back afterwards.
    fn take_members(&mut self, group: GroupId, from: NodeId) -> Vec<NodeId> {
        let mut members = std::mem::take(&mut self.member_scratch);
        members.clear();
        members.extend(
            self.topo
                .group(group)
                .iter()
                .copied()
                .filter(|&m| m != from),
        );
        members
    }

    fn apply(&mut self, from: NodeId, cmd: Command) {
        match cmd {
            Command::Send { to, body } => self.transmit(from, to, body),
            Command::Multicast { group, body } => {
                let members = self.take_members(group, from);
                for &m in &members {
                    // Fan-out clones are reference-count bumps for the
                    // shared message bodies (see `swishmem_wire::Shared`).
                    self.transmit(from, m, body.clone());
                }
                self.member_scratch = members;
            }
            Command::Timer { delay, token } => {
                let t = self.now + delay;
                self.push(t, EventKind::Timer { node: from, token });
            }
            Command::SendRandom { group, body } => {
                let candidates = self.take_members(group, from);
                if !candidates.is_empty() {
                    let pick = candidates[self.rng.gen_range(0..candidates.len())];
                    self.member_scratch = candidates;
                    self.transmit(from, pick, body);
                } else {
                    self.member_scratch = candidates;
                }
            }
            Command::SetGroup { group, members } => {
                self.topo.set_group(group, members);
            }
        }
    }

    /// Update a multicast group's membership (also reachable from node
    /// context via the deployment layer's controller).
    pub fn set_group(&mut self, group: GroupId, members: Vec<NodeId>) {
        self.topo.set_group(group, members);
    }

    fn transmit(&mut self, from: NodeId, to: NodeId, body: PacketBody) {
        let pkt = Packet {
            src: from,
            dst: to,
            body,
        };
        let bytes = pkt.wire_len();
        // A failed source cannot transmit (its events shouldn't fire, but a
        // command applied the instant of failure is also suppressed).
        if self
            .slot_of(from)
            .map(|s| self.nodes[s].failed)
            .unwrap_or(false)
        {
            self.stats.record_drop(DropReason::NodeDown, bytes);
            return;
        }
        // Resolve the next hop (direct link, or a static route through a
        // relay in leaf-spine fabrics) and the outgoing link in one pass.
        let (hop, link_ref) = match self.topo.resolve(from, to) {
            Some(r) => r,
            None => {
                self.stats.record_drop(DropReason::NoRoute, bytes);
                return;
            }
        };
        let link = self.topo.link_at(link_ref);
        if link.state.down {
            self.stats.record_drop(DropReason::LinkDown, bytes);
            return;
        }
        let params = link.params;
        // Sample faults deterministically from the engine RNG.
        if params.drop_prob > 0.0 && self.rng.gen::<f64>() < params.drop_prob {
            self.stats.record_drop(DropReason::Loss, bytes);
            return;
        }
        let jitter = if params.jitter.as_nanos() > 0 {
            SimDuration::nanos(self.rng.gen_range(0..=params.jitter.as_nanos()))
        } else {
            SimDuration::ZERO
        };
        let corrupt = params.corrupt_prob > 0.0 && self.rng.gen::<f64>() < params.corrupt_prob;
        if let Some(arrival) = self
            .topo
            .link_at_mut(link_ref)
            .transmit(self.now, bytes, jitter)
        {
            self.push(
                arrival,
                EventKind::Deliver {
                    to: hop,
                    pkt,
                    corrupt,
                },
            );
        } else {
            self.stats.record_drop(DropReason::LinkDown, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkParams;
    use std::net::Ipv4Addr;
    use std::rc::Rc;
    use swishmem_wire::{DataPacket, FlowKey};

    /// Echoes every received data packet back to its source.
    struct Echo;
    impl Node for Echo {
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
            if let PacketBody::Data(d) = pkt.body {
                if d.flow_seq < 4 {
                    let mut d2 = d;
                    d2.flow_seq += 1;
                    ctx.send(pkt.src, PacketBody::Data(d2));
                }
            }
        }
    }

    /// Counts timer firings; re-arms until 5.
    #[derive(Default)]
    struct Ticker {
        fired: u64,
    }
    impl Node for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::millis(1), 7);
        }
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
        fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
            assert_eq!(token, 7);
            self.fired += 1;
            if self.fired < 5 {
                ctx.set_timer(SimDuration::millis(1), 7);
            }
        }
    }

    fn pkt(src: u16, dst: u16, seq: u32) -> Packet {
        Packet::data(
            NodeId(src),
            NodeId(dst),
            DataPacket::udp(
                FlowKey::udp(Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 0, 0, 2), 2),
                seq,
                64,
            ),
        )
    }

    #[test]
    fn ping_pong_until_ttl() {
        let mut sim = Simulator::new(1);
        sim.add_node(NodeId(0), Box::new(Echo));
        sim.add_node(NodeId(1), Box::new(Echo));
        sim.topology_mut()
            .connect(NodeId(0), NodeId(1), LinkParams::datacenter());
        sim.inject(SimTime::ZERO, pkt(0, 1, 0));
        let end = sim.run_until_quiescent(SimTime(1_000_000_000));
        // seq 0 injected; echoes with seq 1..=4 bounce => 5 deliveries total.
        assert_eq!(sim.stats().delivered_total().packets, 5);
        assert!(end.nanos() > 0);
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = Simulator::new(1);
        sim.add_node(NodeId(0), Box::new(Ticker::default()));
        sim.run_until(SimTime(10_000_000));
        assert_eq!(sim.node::<Ticker>(NodeId(0)).unwrap().fired, 5);
    }

    #[test]
    fn failed_node_receives_nothing_until_recovery() {
        let mut sim = Simulator::new(1);
        sim.add_node(NodeId(0), Box::new(Echo));
        sim.add_node(NodeId(1), Box::new(Echo));
        sim.topology_mut()
            .connect(NodeId(0), NodeId(1), LinkParams::datacenter());
        sim.schedule_fail(SimTime(0), NodeId(1));
        sim.inject(SimTime(1000), pkt(0, 1, 0));
        sim.run_until_quiescent(SimTime(1_000_000));
        assert_eq!(sim.stats().delivered_total().packets, 0);
        assert_eq!(sim.stats().dropped(DropReason::NodeDown).packets, 1);

        sim.schedule_recover(SimTime(2_000_000), NodeId(1));
        sim.inject(SimTime(3_000_000), pkt(0, 1, 0));
        sim.run_until_quiescent(SimTime(10_000_000));
        assert!(sim.stats().delivered_total().packets > 0);
    }

    #[test]
    fn lossy_link_drops_fraction() {
        let mut sim = Simulator::new(42);
        sim.add_node(NodeId(0), Box::new(Echo));
        sim.add_node(NodeId(1), Box::new(Echo));
        sim.topology_mut()
            .connect(NodeId(0), NodeId(1), LinkParams::lossy(0.5));
        // Inject 200 packets; each bounces up to 4 times over the lossy
        // link before the echo TTL expires.
        for i in 0..200 {
            sim.inject(SimTime(i * 1_000_000), pkt(0, 1, 0));
        }
        // Injected packets bypass links (delivered); echo replies cross the
        // lossy link.
        sim.run_until_quiescent(SimTime(10_000_000_000));
        let loss = sim.stats().dropped(DropReason::Loss).packets;
        assert!(loss > 0, "expected some loss");
    }

    #[test]
    fn deterministic_across_runs() {
        fn run(seed: u64) -> (u64, u64) {
            let mut sim = Simulator::new(seed);
            sim.add_node(NodeId(0), Box::new(Echo));
            sim.add_node(NodeId(1), Box::new(Echo));
            sim.topology_mut().connect(
                NodeId(0),
                NodeId(1),
                LinkParams::lossy(0.3).with_jitter(SimDuration::micros(5)),
            );
            for i in 0..100 {
                sim.inject(SimTime(i * 10_000), pkt(0, 1, 0));
            }
            sim.run_until_quiescent(SimTime(1_000_000_000));
            (
                sim.stats().delivered_total().packets,
                sim.stats().dropped(DropReason::Loss).packets,
            )
        }
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8)); // loss pattern differs across seeds
    }

    #[test]
    fn no_route_counted() {
        let mut sim = Simulator::new(1);
        sim.add_node(NodeId(0), Box::new(Echo));
        sim.add_node(NodeId(1), Box::new(Echo));
        // No links at all: the echo reply has nowhere to go.
        sim.inject(SimTime::ZERO, pkt(0, 1, 0));
        sim.run_until_quiescent(SimTime(1_000_000));
        assert_eq!(sim.stats().dropped(DropReason::NoRoute).packets, 1);
    }

    #[test]
    fn typed_node_access() {
        let mut sim = Simulator::new(1);
        sim.add_node(NodeId(0), Box::new(Ticker::default()));
        assert!(sim.node::<Ticker>(NodeId(0)).is_some());
        assert!(sim.node::<Echo>(NodeId(0)).is_none());
        sim.node_mut::<Ticker>(NodeId(0)).unwrap().fired = 99;
        assert_eq!(sim.node::<Ticker>(NodeId(0)).unwrap().fired, 99);
    }

    #[test]
    #[should_panic(expected = "duplicate node id")]
    fn duplicate_node_panics() {
        let mut sim = Simulator::new(1);
        sim.add_node(NodeId(0), Box::new(Echo));
        sim.add_node(NodeId(0), Box::new(Echo));
    }

    #[test]
    fn scheduled_link_outage_drops_then_recovers() {
        let mut sim = Simulator::new(1);
        sim.add_node(NodeId(0), Box::new(Echo));
        sim.add_node(NodeId(1), Box::new(Echo));
        sim.topology_mut()
            .connect(NodeId(0), NodeId(1), LinkParams::datacenter());
        // Take the link down for [1ms, 2ms).
        sim.schedule_link_set(SimTime(1_000_000), NodeId(0), NodeId(1), true);
        sim.schedule_link_set(SimTime(2_000_000), NodeId(0), NodeId(1), false);
        // Echo attempts at 0.5ms (up), 1.5ms (down), 2.5ms (up again).
        for t in [500_000u64, 1_500_000, 2_500_000] {
            sim.inject(SimTime(t), pkt(0, 1, 3)); // one echo reply each
        }
        sim.run_until_quiescent(SimTime(10_000_000));
        assert_eq!(sim.stats().dropped(DropReason::LinkDown).packets, 1);
        // 3 injections + 2 successful echo exchanges (4 each)... count:
        // injections always deliver; replies only while the link is up.
        assert!(sim.stats().delivered_total().packets > 3);
    }

    #[test]
    fn multicast_reaches_members_except_sender() {
        struct Caster;
        impl Node for Caster {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.multicast(
                    GroupId(1),
                    PacketBody::Data(DataPacket::udp(
                        FlowKey::udp(Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 0, 0, 2), 2),
                        9,
                        10,
                    )),
                );
            }
            fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
        }
        #[derive(Default)]
        struct Sink {
            got: Rc<std::cell::RefCell<u32>>,
        }
        impl Node for Sink {
            fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {
                *self.got.borrow_mut() += 1;
            }
        }
        let mut sim = Simulator::new(1);
        let got1 = Rc::new(std::cell::RefCell::new(0));
        let got2 = Rc::new(std::cell::RefCell::new(0));
        sim.add_node(NodeId(0), Box::new(Caster));
        sim.add_node(NodeId(1), Box::new(Sink { got: got1.clone() }));
        sim.add_node(NodeId(2), Box::new(Sink { got: got2.clone() }));
        sim.topology_mut()
            .full_mesh(&[NodeId(0), NodeId(1), NodeId(2)], LinkParams::datacenter());
        sim.topology_mut()
            .set_group(GroupId(1), vec![NodeId(0), NodeId(1), NodeId(2)]);
        sim.run_until_quiescent(SimTime(1_000_000));
        assert_eq!(*got1.borrow(), 1);
        assert_eq!(*got2.borrow(), 1);
    }
}

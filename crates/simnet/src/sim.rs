//! The discrete-event simulation engine.
//!
//! Determinism contract: given the same seed, node set, topology, and
//! schedule of external events, two runs produce identical event orders,
//! identical RNG draws, and therefore identical statistics. This is
//! guaranteed by (a) a total order on events — `(time, insertion seq)` —
//! and (b) a single engine-owned RNG consumed only during deterministic
//! event processing.

use crate::ctx::{Command, Ctx, GroupId};
use crate::node::Node;
use crate::stats::{DropReason, NetStats};
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use crate::trace::TraceHandle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use swishmem_wire::{NodeId, Packet, PacketBody};

/// Blanket `Any`-access helper so the engine can hand out typed references
/// to nodes after a run (e.g. to read a switch's registers or metrics).
pub trait AsAny {
    /// Upcast to `&dyn Any`.
    fn as_any(&self) -> &dyn Any;
    /// Upcast to `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: 'static> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[derive(Debug)]
enum EventKind {
    Deliver {
        to: NodeId,
        pkt: Packet,
        corrupt: bool,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    Fail {
        node: NodeId,
    },
    Recover {
        node: NodeId,
    },
    LinkSet {
        a: NodeId,
        b: NodeId,
        down: bool,
    },
}

struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

struct NodeSlot {
    node: Box<dyn NodeObj>,
    failed: bool,
}

/// Object-safe supertrait combining [`Node`] and [`AsAny`].
pub trait NodeObj: Node + AsAny {}
impl<T: Node + AsAny> NodeObj for T {}

/// The simulation engine.
pub struct Simulator {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<Event>>,
    nodes: HashMap<NodeId, NodeSlot>,
    topo: Topology,
    rng: StdRng,
    stats: NetStats,
    started: bool,
    events_processed: u64,
    trace: Option<TraceHandle>,
    wire_check: bool,
}

impl Simulator {
    /// Create a simulator with a deterministic seed.
    pub fn new(seed: u64) -> Simulator {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            nodes: HashMap::new(),
            topo: Topology::new(),
            rng: StdRng::seed_from_u64(seed),
            stats: NetStats::default(),
            started: false,
            events_processed: 0,
            trace: None,
            wire_check: false,
        }
    }

    /// Enable wire-fidelity checking: every delivered frame is serialized
    /// through the real codecs and re-parsed; a mismatch panics. Catches
    /// any drift between the structured fast path and the byte encodings.
    /// (UDP data packets legitimately drop their simulator-side `flow_seq`
    /// on the wire, which the check accounts for.)
    pub fn set_wire_check(&mut self, on: bool) {
        self.wire_check = on;
    }

    /// Attach a packet trace: every delivered frame is recorded into it.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// Register a node under `id`. Panics if `id` is already taken.
    pub fn add_node(&mut self, id: NodeId, node: Box<dyn NodeObj>) {
        let prev = self.nodes.insert(
            id,
            NodeSlot {
                node,
                failed: false,
            },
        );
        assert!(prev.is_none(), "duplicate node id {id}");
    }

    /// Mutable access to the topology (add links/groups before or during a
    /// run).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    /// Read access to the topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Mutable statistics (for windowed measurements via `reset`).
    pub fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    /// Typed read access to a node (post-run inspection).
    pub fn node<T: 'static>(&self, id: NodeId) -> Option<&T> {
        // Deref through the Box explicitly: the blanket AsAny impl would
        // otherwise resolve on `Box<dyn NodeObj>` itself.
        self.nodes
            .get(&id)
            .and_then(|s| (*s.node).as_any().downcast_ref())
    }

    /// Typed mutable access to a node.
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes
            .get_mut(&id)
            .and_then(|s| (*s.node).as_any_mut().downcast_mut())
    }

    /// Whether `id` is currently failed.
    pub fn is_failed(&self, id: NodeId) -> bool {
        self.nodes.get(&id).map(|s| s.failed).unwrap_or(false)
    }

    fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Event { time, seq, kind }));
    }

    /// Schedule delivery of `pkt` to `pkt.dst` at absolute time `t`,
    /// bypassing links. Used to inject external (ingress) traffic.
    pub fn inject(&mut self, t: SimTime, pkt: Packet) {
        assert!(t >= self.now, "cannot inject into the past");
        let to = pkt.dst;
        self.push(
            t,
            EventKind::Deliver {
                to,
                pkt,
                corrupt: false,
            },
        );
    }

    /// Schedule a fail-stop failure of `node` at time `t`.
    pub fn schedule_fail(&mut self, t: SimTime, node: NodeId) {
        self.push(t, EventKind::Fail { node });
    }

    /// Schedule recovery (fresh state) of `node` at time `t`.
    pub fn schedule_recover(&mut self, t: SimTime, node: NodeId) {
        self.push(t, EventKind::Recover { node });
    }

    /// Schedule the duplex link `a <-> b` going down (or up) at time `t`.
    pub fn schedule_link_set(&mut self, t: SimTime, a: NodeId, b: NodeId, down: bool) {
        self.push(t, EventKind::LinkSet { a, b, down });
    }

    /// Call `on_start` on every node (idempotent; run methods call it
    /// automatically).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let mut ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        ids.sort(); // deterministic start order
        for id in ids {
            self.dispatch(id, |node, ctx| node.on_start(ctx));
        }
    }

    /// Run until simulated time reaches `t` (inclusive of events at `t`).
    pub fn run_until(&mut self, t: SimTime) {
        self.start();
        while let Some(Reverse(ev)) = self.heap.peek() {
            if ev.time > t {
                break;
            }
            let Reverse(ev) = self.heap.pop().unwrap();
            self.process(ev);
        }
        self.now = self.now.max(t);
    }

    /// Run for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now + d;
        self.run_until(t);
    }

    /// Run until the event queue drains or `limit` is reached; returns the
    /// final simulated time.
    pub fn run_until_quiescent(&mut self, limit: SimTime) -> SimTime {
        self.start();
        while let Some(Reverse(ev)) = self.heap.peek() {
            if ev.time > limit {
                self.now = limit;
                return self.now;
            }
            let Reverse(ev) = self.heap.pop().unwrap();
            self.process(ev);
        }
        self.now
    }

    fn process(&mut self, ev: Event) {
        debug_assert!(ev.time >= self.now, "time went backwards");
        self.now = ev.time;
        self.events_processed += 1;
        match ev.kind {
            EventKind::Deliver { to, pkt, corrupt } => {
                let dst = to;
                match self.nodes.get(&dst) {
                    None => {
                        self.stats.record_drop(DropReason::NoRoute, pkt.wire_len());
                    }
                    Some(slot) if slot.failed => {
                        self.stats.record_drop(DropReason::NodeDown, pkt.wire_len());
                    }
                    Some(_) if corrupt => {
                        self.stats.record_drop(DropReason::Corrupt, pkt.wire_len());
                        self.dispatch(dst, |node, ctx| node.on_corrupt_packet(pkt, ctx));
                    }
                    Some(_) => {
                        self.stats.record_delivery(&pkt, dst, pkt.wire_len());
                        if self.wire_check {
                            let bytes = pkt.to_bytes();
                            assert_eq!(bytes.len(), pkt.wire_len(), "wire_len drift: {pkt:?}");
                            let mut reparsed = Packet::from_bytes(&bytes)
                                .unwrap_or_else(|e| panic!("undecodable frame {pkt:?}: {e}"));
                            // UDP has no sequence field on the wire.
                            if let (PacketBody::Data(a), PacketBody::Data(b)) =
                                (&pkt.body, &mut reparsed.body)
                            {
                                if a.flow.proto == 17 {
                                    b.flow_seq = a.flow_seq;
                                }
                            }
                            assert_eq!(reparsed, pkt, "codec round-trip drift");
                        }
                        if let Some(trace) = &self.trace {
                            trace.borrow_mut().record(self.now, &pkt);
                        }
                        self.dispatch(dst, |node, ctx| node.on_packet(pkt, ctx));
                    }
                }
            }
            EventKind::Timer { node, token } => {
                if self.nodes.get(&node).map(|s| !s.failed).unwrap_or(false) {
                    self.dispatch(node, |n, ctx| n.on_timer(token, ctx));
                }
            }
            EventKind::Fail { node } => {
                if let Some(slot) = self.nodes.get_mut(&node) {
                    if !slot.failed {
                        slot.failed = true;
                        slot.node.on_fail();
                    }
                }
            }
            EventKind::Recover { node } => {
                let was_failed = self
                    .nodes
                    .get_mut(&node)
                    .map(|s| std::mem::replace(&mut s.failed, false));
                if was_failed == Some(true) {
                    self.dispatch(node, |n, ctx| n.on_start(ctx));
                }
            }
            EventKind::LinkSet { a, b, down } => {
                self.topo.set_link_down(a, b, down);
            }
        }
    }

    /// Run a node callback and apply the commands it issued.
    fn dispatch<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut dyn NodeObj, &mut Ctx<'_>),
    {
        let mut commands = Vec::new();
        {
            let slot = match self.nodes.get_mut(&id) {
                Some(s) => s,
                None => return,
            };
            let mut ctx = Ctx {
                now: self.now,
                node: id,
                rng: &mut self.rng,
                commands: &mut commands,
            };
            f(slot.node.as_mut(), &mut ctx);
        }
        for cmd in commands {
            self.apply(id, cmd);
        }
    }

    fn apply(&mut self, from: NodeId, cmd: Command) {
        match cmd {
            Command::Send { to, body } => self.transmit(from, to, body),
            Command::Multicast { group, body } => {
                let members: Vec<NodeId> = self
                    .topo
                    .group(group)
                    .iter()
                    .copied()
                    .filter(|&m| m != from)
                    .collect();
                for m in members {
                    self.transmit(from, m, body.clone());
                }
            }
            Command::Timer { delay, token } => {
                let t = self.now + delay;
                self.push(t, EventKind::Timer { node: from, token });
            }
            Command::SendRandom { group, body } => {
                let candidates: Vec<NodeId> = self
                    .topo
                    .group(group)
                    .iter()
                    .copied()
                    .filter(|&m| m != from)
                    .collect();
                if !candidates.is_empty() {
                    let pick = candidates[self.rng.gen_range(0..candidates.len())];
                    self.transmit(from, pick, body);
                }
            }
            Command::SetGroup { group, members } => {
                self.topo.set_group(group, members);
            }
        }
    }

    /// Update a multicast group's membership (also reachable from node
    /// context via the deployment layer's controller).
    pub fn set_group(&mut self, group: GroupId, members: Vec<NodeId>) {
        self.topo.set_group(group, members);
    }

    fn transmit(&mut self, from: NodeId, to: NodeId, body: PacketBody) {
        let pkt = Packet {
            src: from,
            dst: to,
            body,
        };
        let bytes = pkt.wire_len();
        // A failed source cannot transmit (its events shouldn't fire, but a
        // command applied the instant of failure is also suppressed).
        if self.nodes.get(&from).map(|s| s.failed).unwrap_or(false) {
            self.stats.record_drop(DropReason::NodeDown, bytes);
            return;
        }
        // Resolve the next hop: direct link, or a static route through a
        // relay (leaf-spine fabrics).
        let hop = match self.topo.next_hop(from, to) {
            Some(h) => h,
            None => {
                self.stats.record_drop(DropReason::NoRoute, bytes);
                return;
            }
        };
        let link = match self.topo.link_mut(from, hop) {
            Some(l) => l,
            None => {
                self.stats.record_drop(DropReason::NoRoute, bytes);
                return;
            }
        };
        if link.state.down {
            self.stats.record_drop(DropReason::LinkDown, bytes);
            return;
        }
        let params = link.params;
        // Sample faults deterministically from the engine RNG.
        if params.drop_prob > 0.0 && self.rng.gen::<f64>() < params.drop_prob {
            self.stats.record_drop(DropReason::Loss, bytes);
            return;
        }
        let jitter = if params.jitter.as_nanos() > 0 {
            SimDuration::nanos(self.rng.gen_range(0..=params.jitter.as_nanos()))
        } else {
            SimDuration::ZERO
        };
        let corrupt = params.corrupt_prob > 0.0 && self.rng.gen::<f64>() < params.corrupt_prob;
        let link = self.topo.link_mut(from, hop).expect("link vanished");
        if let Some(arrival) = link.transmit(self.now, bytes, jitter) {
            self.push(
                arrival,
                EventKind::Deliver {
                    to: hop,
                    pkt,
                    corrupt,
                },
            );
        } else {
            self.stats.record_drop(DropReason::LinkDown, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkParams;
    use std::net::Ipv4Addr;
    use std::rc::Rc;
    use swishmem_wire::{DataPacket, FlowKey};

    /// Echoes every received data packet back to its source.
    struct Echo;
    impl Node for Echo {
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
            if let PacketBody::Data(d) = pkt.body {
                if d.flow_seq < 4 {
                    let mut d2 = d;
                    d2.flow_seq += 1;
                    ctx.send(pkt.src, PacketBody::Data(d2));
                }
            }
        }
    }

    /// Counts timer firings; re-arms until 5.
    #[derive(Default)]
    struct Ticker {
        fired: u64,
    }
    impl Node for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::millis(1), 7);
        }
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
        fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
            assert_eq!(token, 7);
            self.fired += 1;
            if self.fired < 5 {
                ctx.set_timer(SimDuration::millis(1), 7);
            }
        }
    }

    fn pkt(src: u16, dst: u16, seq: u32) -> Packet {
        Packet::data(
            NodeId(src),
            NodeId(dst),
            DataPacket::udp(
                FlowKey::udp(Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 0, 0, 2), 2),
                seq,
                64,
            ),
        )
    }

    #[test]
    fn ping_pong_until_ttl() {
        let mut sim = Simulator::new(1);
        sim.add_node(NodeId(0), Box::new(Echo));
        sim.add_node(NodeId(1), Box::new(Echo));
        sim.topology_mut()
            .connect(NodeId(0), NodeId(1), LinkParams::datacenter());
        sim.inject(SimTime::ZERO, pkt(0, 1, 0));
        let end = sim.run_until_quiescent(SimTime(1_000_000_000));
        // seq 0 injected; echoes with seq 1..=4 bounce => 5 deliveries total.
        assert_eq!(sim.stats().delivered_total().packets, 5);
        assert!(end.nanos() > 0);
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = Simulator::new(1);
        sim.add_node(NodeId(0), Box::new(Ticker::default()));
        sim.run_until(SimTime(10_000_000));
        assert_eq!(sim.node::<Ticker>(NodeId(0)).unwrap().fired, 5);
    }

    #[test]
    fn failed_node_receives_nothing_until_recovery() {
        let mut sim = Simulator::new(1);
        sim.add_node(NodeId(0), Box::new(Echo));
        sim.add_node(NodeId(1), Box::new(Echo));
        sim.topology_mut()
            .connect(NodeId(0), NodeId(1), LinkParams::datacenter());
        sim.schedule_fail(SimTime(0), NodeId(1));
        sim.inject(SimTime(1000), pkt(0, 1, 0));
        sim.run_until_quiescent(SimTime(1_000_000));
        assert_eq!(sim.stats().delivered_total().packets, 0);
        assert_eq!(sim.stats().dropped(DropReason::NodeDown).packets, 1);

        sim.schedule_recover(SimTime(2_000_000), NodeId(1));
        sim.inject(SimTime(3_000_000), pkt(0, 1, 0));
        sim.run_until_quiescent(SimTime(10_000_000));
        assert!(sim.stats().delivered_total().packets > 0);
    }

    #[test]
    fn lossy_link_drops_fraction() {
        let mut sim = Simulator::new(42);
        sim.add_node(NodeId(0), Box::new(Echo));
        sim.add_node(NodeId(1), Box::new(Echo));
        sim.topology_mut()
            .connect(NodeId(0), NodeId(1), LinkParams::lossy(0.5));
        // Inject 200 packets; each bounces up to 4 times over the lossy
        // link before the echo TTL expires.
        for i in 0..200 {
            sim.inject(SimTime(i * 1_000_000), pkt(0, 1, 0));
        }
        // Injected packets bypass links (delivered); echo replies cross the
        // lossy link.
        sim.run_until_quiescent(SimTime(10_000_000_000));
        let loss = sim.stats().dropped(DropReason::Loss).packets;
        assert!(loss > 0, "expected some loss");
    }

    #[test]
    fn deterministic_across_runs() {
        fn run(seed: u64) -> (u64, u64) {
            let mut sim = Simulator::new(seed);
            sim.add_node(NodeId(0), Box::new(Echo));
            sim.add_node(NodeId(1), Box::new(Echo));
            sim.topology_mut().connect(
                NodeId(0),
                NodeId(1),
                LinkParams::lossy(0.3).with_jitter(SimDuration::micros(5)),
            );
            for i in 0..100 {
                sim.inject(SimTime(i * 10_000), pkt(0, 1, 0));
            }
            sim.run_until_quiescent(SimTime(1_000_000_000));
            (
                sim.stats().delivered_total().packets,
                sim.stats().dropped(DropReason::Loss).packets,
            )
        }
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8)); // loss pattern differs across seeds
    }

    #[test]
    fn no_route_counted() {
        let mut sim = Simulator::new(1);
        sim.add_node(NodeId(0), Box::new(Echo));
        sim.add_node(NodeId(1), Box::new(Echo));
        // No links at all: the echo reply has nowhere to go.
        sim.inject(SimTime::ZERO, pkt(0, 1, 0));
        sim.run_until_quiescent(SimTime(1_000_000));
        assert_eq!(sim.stats().dropped(DropReason::NoRoute).packets, 1);
    }

    #[test]
    fn typed_node_access() {
        let mut sim = Simulator::new(1);
        sim.add_node(NodeId(0), Box::new(Ticker::default()));
        assert!(sim.node::<Ticker>(NodeId(0)).is_some());
        assert!(sim.node::<Echo>(NodeId(0)).is_none());
        sim.node_mut::<Ticker>(NodeId(0)).unwrap().fired = 99;
        assert_eq!(sim.node::<Ticker>(NodeId(0)).unwrap().fired, 99);
    }

    #[test]
    #[should_panic(expected = "duplicate node id")]
    fn duplicate_node_panics() {
        let mut sim = Simulator::new(1);
        sim.add_node(NodeId(0), Box::new(Echo));
        sim.add_node(NodeId(0), Box::new(Echo));
    }

    #[test]
    fn scheduled_link_outage_drops_then_recovers() {
        let mut sim = Simulator::new(1);
        sim.add_node(NodeId(0), Box::new(Echo));
        sim.add_node(NodeId(1), Box::new(Echo));
        sim.topology_mut()
            .connect(NodeId(0), NodeId(1), LinkParams::datacenter());
        // Take the link down for [1ms, 2ms).
        sim.schedule_link_set(SimTime(1_000_000), NodeId(0), NodeId(1), true);
        sim.schedule_link_set(SimTime(2_000_000), NodeId(0), NodeId(1), false);
        // Echo attempts at 0.5ms (up), 1.5ms (down), 2.5ms (up again).
        for t in [500_000u64, 1_500_000, 2_500_000] {
            sim.inject(SimTime(t), pkt(0, 1, 3)); // one echo reply each
        }
        sim.run_until_quiescent(SimTime(10_000_000));
        assert_eq!(sim.stats().dropped(DropReason::LinkDown).packets, 1);
        // 3 injections + 2 successful echo exchanges (4 each)... count:
        // injections always deliver; replies only while the link is up.
        assert!(sim.stats().delivered_total().packets > 3);
    }

    #[test]
    fn multicast_reaches_members_except_sender() {
        struct Caster;
        impl Node for Caster {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.multicast(
                    GroupId(1),
                    PacketBody::Data(DataPacket::udp(
                        FlowKey::udp(Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 0, 0, 2), 2),
                        9,
                        10,
                    )),
                );
            }
            fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {}
        }
        #[derive(Default)]
        struct Sink {
            got: Rc<std::cell::RefCell<u32>>,
        }
        impl Node for Sink {
            fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx<'_>) {
                *self.got.borrow_mut() += 1;
            }
        }
        let mut sim = Simulator::new(1);
        let got1 = Rc::new(std::cell::RefCell::new(0));
        let got2 = Rc::new(std::cell::RefCell::new(0));
        sim.add_node(NodeId(0), Box::new(Caster));
        sim.add_node(NodeId(1), Box::new(Sink { got: got1.clone() }));
        sim.add_node(NodeId(2), Box::new(Sink { got: got2.clone() }));
        sim.topology_mut()
            .full_mesh(&[NodeId(0), NodeId(1), NodeId(2)], LinkParams::datacenter());
        sim.topology_mut()
            .set_group(GroupId(1), vec![NodeId(0), NodeId(1), NodeId(2)]);
        sim.run_until_quiescent(SimTime(1_000_000));
        assert_eq!(*got1.borrow(), 1);
        assert_eq!(*got2.borrow(), 1);
    }
}

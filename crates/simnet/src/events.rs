//! The event core shared by the sequential [`crate::sim::Simulator`] and
//! the sharded [`crate::shard::ShardedEngine`]: event payloads, flat heap
//! entries, and the slab-backed priority queue.
//!
//! The queue orders events by a 128-bit `(time, key)` pair. The legacy
//! engine uses a single global insertion sequence as the key; the sharded
//! engine uses origin-derived keys (see `shard.rs`), which are unique
//! across shards so the pop order of any queue — and of any merge of
//! per-shard outputs — is a total order independent of insertion order.

use crate::fault::LinkOverlay;
use crate::time::SimTime;
use swishmem_wire::{NodeId, Packet};

/// One scheduled simulation event.
#[derive(Debug)]
pub(crate) enum EventKind {
    Deliver {
        to: NodeId,
        pkt: Packet,
        corrupt: bool,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    Fail {
        node: NodeId,
    },
    Recover {
        node: NodeId,
    },
    LinkSet {
        a: NodeId,
        b: NodeId,
        down: bool,
        /// Whether processing this event reports it to observers. Always
        /// true in the sequential engine; the sharded engine schedules a
        /// link event into both endpoint-owning shards and marks exactly
        /// one copy as the observable one.
        notify: bool,
    },
    LinkDegrade {
        a: NodeId,
        b: NodeId,
        overlay: LinkOverlay,
        notify: bool,
    },
    LinkRestore {
        a: NodeId,
        b: NodeId,
        notify: bool,
    },
    /// Slab slot whose payload was popped (free-listed).
    Vacant,
}

/// Flat heap entry: the payload stays in the slab, so sifting moves 24
/// bytes regardless of how large the packet inside the event is.
#[derive(Clone, Copy)]
struct HeapEntry {
    time: u64,
    key: u64,
    idx: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.time, self.key)
    }
}

/// Binary min-heap over `(time, key)` with slab-allocated payloads.
///
/// Chosen over a timer wheel by measurement: event delays span nanosecond
/// serialization gaps to millisecond CP timers (six orders of magnitude),
/// which a wheel only covers hierarchically, and flattening the heap
/// entries already removes the dominant cost (moving packet-sized events
/// during sifts).
#[derive(Default)]
pub(crate) struct EventQueue {
    heap: Vec<HeapEntry>,
    slab: Vec<EventKind>,
    free: Vec<u32>,
}

impl EventQueue {
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    #[inline]
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| SimTime(e.time))
    }

    pub(crate) fn push(&mut self, time: SimTime, key: u64, kind: EventKind) {
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = kind;
                i
            }
            None => {
                self.slab.push(kind);
                (self.slab.len() - 1) as u32
            }
        };
        self.heap.push(HeapEntry {
            time: time.nanos(),
            key,
            idx,
        });
        self.sift_up(self.heap.len() - 1);
    }

    pub(crate) fn pop(&mut self) -> Option<(SimTime, u64, EventKind)> {
        let n = self.heap.len();
        if n == 0 {
            return None;
        }
        self.heap.swap(0, n - 1);
        let top = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        let kind = std::mem::replace(&mut self.slab[top.idx as usize], EventKind::Vacant);
        self.free.push(top.idx);
        Some((SimTime(top.time), top.key, kind))
    }

    fn sift_up(&mut self, mut i: usize) {
        let e = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[parent].key() <= e.key() {
                break;
            }
            self.heap[i] = self.heap[parent];
            i = parent;
        }
        self.heap[i] = e;
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        let e = self.heap[i];
        loop {
            let mut child = 2 * i + 1;
            if child >= n {
                break;
            }
            if child + 1 < n && self.heap[child + 1].key() < self.heap[child].key() {
                child += 1;
            }
            if e.key() <= self.heap[child].key() {
                break;
            }
            self.heap[i] = self.heap[child];
            i = child;
        }
        self.heap[i] = e;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_key_order() {
        let mut q = EventQueue::default();
        q.push(
            SimTime(30),
            0,
            EventKind::Timer {
                node: NodeId(0),
                token: 3,
            },
        );
        q.push(
            SimTime(10),
            5,
            EventKind::Timer {
                node: NodeId(0),
                token: 1,
            },
        );
        q.push(
            SimTime(10),
            2,
            EventKind::Timer {
                node: NodeId(0),
                token: 0,
            },
        );
        q.push(
            SimTime(20),
            1,
            EventKind::Timer {
                node: NodeId(0),
                token: 2,
            },
        );
        let mut tokens = Vec::new();
        while let Some((_, _, EventKind::Timer { token, .. })) = q.pop() {
            tokens.push(token);
        }
        assert_eq!(tokens, vec![0, 1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_order_is_insertion_independent_for_unique_keys() {
        // The sharded engine relies on this: mail drained from peer
        // mailboxes in arbitrary arrival order still pops identically
        // because `(time, key)` pairs are globally unique.
        let events: Vec<(u64, u64)> = vec![(5, 9), (5, 1), (3, 7), (9, 0), (3, 2)];
        let mut orders = Vec::new();
        for rot in 0..events.len() {
            let mut q = EventQueue::default();
            for i in 0..events.len() {
                let (t, k) = events[(i + rot) % events.len()];
                q.push(
                    SimTime(t),
                    k,
                    EventKind::Timer {
                        node: NodeId(0),
                        token: k,
                    },
                );
            }
            let mut order = Vec::new();
            while let Some((t, k, _)) = q.pop() {
                order.push((t.nanos(), k));
            }
            orders.push(order);
        }
        for w in orders.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}

//! # swishmem-simnet
//!
//! A deterministic discrete-event network simulator: the "multi-switch
//! fabric with lossy links" substrate of the SwiShmem reproduction (see
//! DESIGN.md §2 for the substitution argument).
//!
//! Key properties:
//!
//! * **Deterministic**: a single engine RNG, a total event order
//!   `(time, insertion-seq)`, and sorted node-start order mean identical
//!   seeds produce identical runs — every experiment is replayable.
//! * **Faithful link costs**: links charge serialization delay from the
//!   true encoded frame length (computed by `swishmem-wire`), model
//!   transmitter queueing, and inject loss, jitter (reordering) and
//!   corruption — the failure model of the paper's §5 ("packets can be
//!   dropped, and links and switches may fail").
//! * **Fail-stop failures**: nodes can be failed and recovered on a
//!   schedule; a failed node neither receives nor transmits, and recovery
//!   restarts it with fresh state (§6.3's model).
//! * **Atomic node callbacks**: a node's outputs are applied only after
//!   its callback returns, mirroring PISA's atomic per-packet processing.
//!
//! ```
//! use swishmem_simnet::{Simulator, SimTime, RecorderNode};
//! use swishmem_wire::{NodeId, Packet, DataPacket, FlowKey};
//! use std::net::Ipv4Addr;
//!
//! let mut sim = Simulator::new(42);
//! let (rec, log) = RecorderNode::new();
//! sim.add_node(NodeId(1), Box::new(rec));
//! let pkt = Packet::data(NodeId(0), NodeId(1), DataPacket::udp(
//!     FlowKey::udp(Ipv4Addr::new(10,0,0,1), 1000, Ipv4Addr::new(10,0,0,2), 53), 0, 64));
//! sim.inject(SimTime::ZERO, pkt);
//! sim.run_until_quiescent(SimTime(1_000_000));
//! assert_eq!(log.borrow().len(), 1);
//! ```

pub mod capture;
pub mod ctx;
pub(crate) mod events;
pub mod fault;
pub mod journal;
pub mod link;
pub mod node;
pub mod observe;
pub mod recorder;
pub mod shard;
pub mod sim;
pub mod span;
pub mod stats;
pub mod time;
pub mod topology;
pub mod trace;

pub use capture::{CaptureBuffer, CaptureHandle};
pub use ctx::{Ctx, GroupId};
pub use fault::{FaultAction, FaultEvent, FaultGen, FaultSchedule, LinkOverlay};
pub use journal::{JournalCollector, JournalHandle, JournalRecord};
pub use link::{Link, LinkParams, LinkState};
pub use node::{Node, NodeId, RelayNode};
pub use observe::{NetEvent, NetObserver, ObserverHandle};
pub use recorder::{RecorderNode, Recording};
pub use shard::ShardedEngine;
pub use sim::{AsAny, NodeObj, Simulator};
pub use span::{SpanCollector, SpanEvent, SpanHandle, SpanPhase};
pub use stats::{Counter, DropReason, NetStats, TrafficClass};
pub use time::{SimDuration, SimTime};
pub use topology::Topology;
pub use trace::{Trace, TraceEntry, TraceHandle};

//! The fault plane: declarative, seed-reproducible fault schedules.
//!
//! A [`FaultSchedule`] is a list of `(offset, action)` pairs covering the
//! failure taxonomy of the paper's §5–§6.3 — fail-stop crash/restart,
//! link outages, healing partitions, timed loss/jitter/corruption bursts
//! and gray-failure slow links — which the engine executes as ordinary
//! events, so the determinism contract (total order on `(time, seq)`,
//! single engine-owned RNG) is preserved: the same seed plus the same
//! schedule replays bit-for-bit.
//!
//! [`FaultGen`] samples random schedules from its *own* seeded RNG at
//! construction time; it never touches the engine RNG, so a generated
//! schedule is a pure function of its seed and the target sets.

use crate::link::LinkParams;
use crate::time::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use swishmem_wire::NodeId;

/// A partial override of a link's parameters, applied on degrade and
/// undone on restore. `None` fields keep the link's current value.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkOverlay {
    /// Override drop probability (loss burst).
    pub drop_prob: Option<f64>,
    /// Override jitter bound (reordering burst).
    pub jitter: Option<SimDuration>,
    /// Override corruption probability.
    pub corrupt_prob: Option<f64>,
    /// Override one-way latency (gray-failure slow link).
    pub latency: Option<SimDuration>,
    /// Override bandwidth (gray-failure degraded link).
    pub bandwidth_bps: Option<u64>,
}

impl LinkOverlay {
    /// A loss burst: frames dropped with probability `p`.
    pub fn loss(p: f64) -> LinkOverlay {
        LinkOverlay {
            drop_prob: Some(p),
            ..LinkOverlay::default()
        }
    }

    /// A jitter burst: up to `j` extra random delay per frame.
    pub fn jitter(j: SimDuration) -> LinkOverlay {
        LinkOverlay {
            jitter: Some(j),
            ..LinkOverlay::default()
        }
    }

    /// A corruption burst: frames arrive damaged with probability `p`.
    pub fn corrupt(p: f64) -> LinkOverlay {
        LinkOverlay {
            corrupt_prob: Some(p),
            ..LinkOverlay::default()
        }
    }

    /// A gray failure: the link stays up but becomes slow.
    pub fn slow(latency: SimDuration, bandwidth_bps: u64) -> LinkOverlay {
        LinkOverlay {
            latency: Some(latency),
            bandwidth_bps: Some(bandwidth_bps),
            ..LinkOverlay::default()
        }
    }

    /// Apply this overlay on top of `base`.
    pub fn apply(&self, base: LinkParams) -> LinkParams {
        LinkParams {
            latency: self.latency.unwrap_or(base.latency),
            bandwidth_bps: self.bandwidth_bps.unwrap_or(base.bandwidth_bps),
            drop_prob: self.drop_prob.unwrap_or(base.drop_prob),
            jitter: self.jitter.unwrap_or(base.jitter),
            corrupt_prob: self.corrupt_prob.unwrap_or(base.corrupt_prob),
        }
    }
}

impl fmt::Display for LinkOverlay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if wrote {
                write!(f, " ")?;
            }
            wrote = true;
            Ok(())
        };
        if let Some(p) = self.drop_prob {
            sep(f)?;
            write!(f, "loss={p}")?;
        }
        if let Some(j) = self.jitter {
            sep(f)?;
            write!(f, "jitter={j}")?;
        }
        if let Some(p) = self.corrupt_prob {
            sep(f)?;
            write!(f, "corrupt={p}")?;
        }
        if let Some(l) = self.latency {
            sep(f)?;
            write!(f, "latency={l}")?;
        }
        if let Some(b) = self.bandwidth_bps {
            sep(f)?;
            write!(f, "bw={b}bps")?;
        }
        if !wrote {
            write!(f, "(none)")?;
        }
        Ok(())
    }
}

/// One fault-plane action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Fail-stop crash: the node loses all state and goes silent.
    Crash {
        /// The victim.
        node: NodeId,
    },
    /// Restart a crashed node with fresh state (§6.3's recovery model).
    Restart {
        /// The node to restart.
        node: NodeId,
    },
    /// Take the duplex link `a <-> b` down.
    LinkDown {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Bring the duplex link `a <-> b` back up.
    LinkUp {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Degrade the duplex link `a <-> b`: overlay loss/jitter/corruption
    /// or gray-failure slowness on its parameters (pristine parameters
    /// are saved and restored by [`FaultAction::Restore`]).
    Degrade {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// The parameter overlay.
        overlay: LinkOverlay,
    },
    /// Restore the duplex link `a <-> b` to its pristine parameters.
    Restore {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Fire a timer token on `node` — the hook the reconfiguration
    /// engine uses to interleave planner/migration triggers into fault
    /// schedules. The token is delivered through the node's ordinary
    /// `on_timer` path, so it shares the `(time, seq)` total order with
    /// every other event.
    Trigger {
        /// The node whose timer fires.
        node: NodeId,
        /// The opaque timer token.
        token: u64,
    },
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::Crash { node } => write!(f, "crash    {node}"),
            FaultAction::Restart { node } => write!(f, "restart  {node}"),
            FaultAction::LinkDown { a, b } => write!(f, "linkdown {a}<->{b}"),
            FaultAction::LinkUp { a, b } => write!(f, "linkup   {a}<->{b}"),
            FaultAction::Degrade { a, b, overlay } => {
                write!(f, "degrade  {a}<->{b} [{overlay}]")
            }
            FaultAction::Restore { a, b } => write!(f, "restore  {a}<->{b}"),
            FaultAction::Trigger { node, token } => {
                write!(f, "trigger  {node} token={token:#x}")
            }
        }
    }
}

/// A timed fault action; `at` is an offset from the schedule's base time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Offset from the time the schedule is installed.
    pub at: SimDuration,
    /// What happens.
    pub action: FaultAction,
}

/// A declarative schedule of mid-run faults.
///
/// Build one with the fluent helpers, or sample one from a seed with
/// [`FaultGen`]; install it with `Simulator::schedule_faults` (or the
/// deployment-layer wrapper). The `Display` form is the replay artifact:
/// printing the seed plus this schedule is enough to reproduce a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Offset of the last event: after `base + horizon()` every scheduled
    /// fault has been injected *and healed* (every helper pairs the
    /// breaking action with its heal).
    pub fn horizon(&self) -> SimDuration {
        self.events
            .iter()
            .map(|e| e.at)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Append a raw action at `at`.
    pub fn at(mut self, at: SimDuration, action: FaultAction) -> Self {
        self.push(at, action);
        self
    }

    /// Crash `node` at `at` and restart it `down_for` later.
    pub fn crash_for(mut self, node: NodeId, at: SimDuration, down_for: SimDuration) -> Self {
        self.push(at, FaultAction::Crash { node });
        self.push(at + down_for, FaultAction::Restart { node });
        self
    }

    /// Take the duplex link `a <-> b` down at `at` for `down_for`.
    pub fn link_outage(
        mut self,
        a: NodeId,
        b: NodeId,
        at: SimDuration,
        down_for: SimDuration,
    ) -> Self {
        self.push(at, FaultAction::LinkDown { a, b });
        self.push(at + down_for, FaultAction::LinkUp { a, b });
        self
    }

    /// Degrade the duplex link `a <-> b` with `overlay` for `lasting`,
    /// then restore its pristine parameters (loss/jitter/corruption
    /// bursts and gray-failure slow links).
    pub fn degrade_for(
        mut self,
        a: NodeId,
        b: NodeId,
        at: SimDuration,
        lasting: SimDuration,
        overlay: LinkOverlay,
    ) -> Self {
        self.push(at, FaultAction::Degrade { a, b, overlay });
        self.push(at + lasting, FaultAction::Restore { a, b });
        self
    }

    /// A healing partition: every link between `side_a` and `side_b` goes
    /// down at `at` and comes back `lasting` later.
    pub fn partition(
        mut self,
        side_a: &[NodeId],
        side_b: &[NodeId],
        at: SimDuration,
        lasting: SimDuration,
    ) -> Self {
        for &a in side_a {
            for &b in side_b {
                self.push(at, FaultAction::LinkDown { a, b });
                self.push(at + lasting, FaultAction::LinkUp { a, b });
            }
        }
        self
    }

    /// Fire timer `token` on `node` at `at` (reconfiguration trigger).
    pub fn trigger(mut self, at: SimDuration, node: NodeId, token: u64) -> Self {
        self.push(at, FaultAction::Trigger { node, token });
        self
    }

    fn push(&mut self, at: SimDuration, action: FaultAction) {
        self.events.push(FaultEvent { at, action });
    }

    /// Sort events by offset (stable, so same-time actions keep their
    /// insertion order). Generated schedules are sorted for readability;
    /// execution order is guaranteed by the engine's `(time, seq)` total
    /// order either way.
    pub fn sort(&mut self) {
        self.events.sort_by_key(|e| e.at);
    }
}

impl fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return writeln!(f, "fault schedule: (empty)");
        }
        writeln!(f, "fault schedule ({} events):", self.events.len())?;
        for e in &self.events {
            writeln!(f, "  +{:<12} {}", e.at.to_string(), e.action)?;
        }
        Ok(())
    }
}

/// Relative weights of the episode kinds [`FaultGen`] samples.
const EPISODES: &[(u32, EpisodeKind)] = &[
    (25, EpisodeKind::Crash),
    (15, EpisodeKind::LinkOutage),
    (20, EpisodeKind::LossBurst),
    (10, EpisodeKind::JitterBurst),
    (10, EpisodeKind::CorruptBurst),
    (10, EpisodeKind::GrayLink),
    (10, EpisodeKind::Partition),
];

#[derive(Debug, Clone, Copy)]
enum EpisodeKind {
    Crash,
    LinkOutage,
    LossBurst,
    JitterBurst,
    CorruptBurst,
    GrayLink,
    Partition,
}

/// Samples random [`FaultSchedule`]s from a seed.
///
/// The generator owns its own `StdRng`; schedules are a pure function of
/// `(seed, nodes, links, horizon, episodes)` and independent of the
/// engine RNG, so a printed seed is a complete replay recipe.
pub struct FaultGen {
    seed: u64,
    rng: StdRng,
}

impl FaultGen {
    /// A generator for `seed`.
    pub fn new(seed: u64) -> FaultGen {
        FaultGen {
            seed,
            rng: StdRng::seed_from_u64(seed ^ 0xfa17_fa17_fa17_fa17),
        }
    }

    /// The seed this generator was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sample a schedule of `episodes` fault episodes over `horizon`.
    ///
    /// * `nodes` — crash candidates (never more than half down at once,
    ///   so the system always has survivors to degrade onto).
    /// * `links` — duplex links eligible for outages, bursts, gray
    ///   failures and partition cuts; include controller links to model
    ///   control-plane message delay and drop.
    ///
    /// Every episode heals by 85% of the horizon: after `horizon` the
    /// fault plane is quiescent and the online oracles' convergence
    /// clocks may start.
    pub fn generate(
        &mut self,
        nodes: &[NodeId],
        links: &[(NodeId, NodeId)],
        horizon: SimDuration,
        episodes: usize,
    ) -> FaultSchedule {
        self.generate_impl(nodes, links, horizon, episodes, None, &[])
    }

    /// [`FaultGen::generate`] with controller-replica crash coverage:
    /// `ctrls` joins the crash (and partition) candidate pool, but with
    /// its own concurrency budget — at most `⌊(ctrls.len() - 1) / 2⌋`
    /// replicas down at once, so a quorum (majority) is always alive
    /// and the replicated control plane can keep making decisions. This
    /// mirrors the `⌊nodes.len() / 2⌋` switch-crash guard; an
    /// over-budget pick degrades a link instead, keeping the episode
    /// count deterministic. Partition episodes keep the whole replica
    /// group on one side of the cut, so no schedule can sever two
    /// replicas from each other — switches may lose their controller
    /// path, but the group itself always retains a live, mutually
    /// connected majority. With `ctrls` empty the sampled schedule is
    /// byte-identical to [`FaultGen::generate`] — existing seeds replay
    /// unchanged.
    pub fn generate_with_controllers(
        &mut self,
        nodes: &[NodeId],
        ctrls: &[NodeId],
        links: &[(NodeId, NodeId)],
        horizon: SimDuration,
        episodes: usize,
    ) -> FaultSchedule {
        self.generate_impl(nodes, links, horizon, episodes, None, ctrls)
    }

    /// [`FaultGen::generate`] for a sharded run: `shard_of[i]` is the
    /// shard owning `nodes[i]` (see `Topology::partition`), and partition
    /// episodes cut between whole shards instead of arbitrary node
    /// splits, so a generated cut-set never severs two nodes the sharded
    /// engine co-locates. Other episode kinds are unchanged. With every
    /// node on one shard, partition episodes degrade a link instead
    /// (mirroring the over-budget crash fallback) so the episode count
    /// stays deterministic.
    pub fn generate_for_shards(
        &mut self,
        nodes: &[NodeId],
        shard_of: &[u32],
        links: &[(NodeId, NodeId)],
        horizon: SimDuration,
        episodes: usize,
    ) -> FaultSchedule {
        assert_eq!(
            nodes.len(),
            shard_of.len(),
            "shard_of must be parallel to nodes"
        );
        self.generate_impl(nodes, links, horizon, episodes, Some(shard_of), &[])
    }

    fn generate_impl(
        &mut self,
        nodes: &[NodeId],
        links: &[(NodeId, NodeId)],
        horizon: SimDuration,
        episodes: usize,
        shard_of: Option<&[u32]>,
        ctrls: &[NodeId],
    ) -> FaultSchedule {
        let h = horizon.as_nanos().max(1_000_000); // at least 1 ms
        let heal_by = h * 85 / 100;
        let mut sched = FaultSchedule::new();
        // Crash windows already committed: (node, start, end).
        let mut crashes: Vec<(NodeId, u64, u64)> = Vec::new();
        let max_down = (nodes.len() / 2).max(1);
        let total_weight: u32 = EPISODES.iter().map(|(w, _)| w).sum();

        for _ in 0..episodes {
            let start = self.rng.gen_range(h / 20..=h * 3 / 5);
            let dur = self
                .rng
                .gen_range(h / 20..=h / 4)
                .min(heal_by - start.min(heal_by));
            let end = (start + dur.max(1)).min(heal_by);
            let dur = end.saturating_sub(start).max(1);
            let (at, lasting) = (SimDuration::nanos(start), SimDuration::nanos(dur));

            let mut pick = self.rng.gen_range(0..total_weight);
            let mut kind = EpisodeKind::LossBurst;
            for &(w, k) in EPISODES {
                if pick < w {
                    kind = k;
                    break;
                }
                pick -= w;
            }

            match kind {
                EpisodeKind::Crash => {
                    // Single candidate pool: indices past `nodes` pick a
                    // controller replica. With `ctrls` empty the range
                    // bound is unchanged, so the RNG stream — and every
                    // previously published seed — replays byte-identical.
                    let idx = self.rng.gen_range(0..nodes.len() + ctrls.len());
                    let (node, class): (NodeId, &[NodeId]) = if idx < nodes.len() {
                        (nodes[idx], nodes)
                    } else {
                        (ctrls[idx - nodes.len()], ctrls)
                    };
                    // Controllers budget separately from switches: a
                    // majority (quorum) of the replica group must stay
                    // alive, so at most ⌊(n-1)/2⌋ may be down at once
                    // (0 for a singleton — never crash the only one).
                    let budget = if idx < nodes.len() {
                        max_down
                    } else {
                        ctrls.len().saturating_sub(1) / 2
                    };
                    let overlapping = crashes
                        .iter()
                        .filter(|&&(n, s, e)| {
                            n != node && class.contains(&n) && s < end && start < e
                        })
                        .count();
                    let self_overlap = crashes
                        .iter()
                        .any(|&(n, s, e)| n == node && s <= end && start <= e);
                    if self_overlap || overlapping + 1 > budget {
                        // Too many concurrent crashes: degrade a link
                        // instead so the episode count stays deterministic.
                        if let Some(&(a, b)) = self.pick_link(links) {
                            sched = sched.degrade_for(a, b, at, lasting, LinkOverlay::loss(0.2));
                        }
                    } else {
                        crashes.push((node, start, end));
                        sched = sched.crash_for(node, at, lasting);
                    }
                }
                EpisodeKind::LinkOutage => {
                    if let Some(&(a, b)) = self.pick_link(links) {
                        sched = sched.link_outage(a, b, at, lasting);
                    }
                }
                EpisodeKind::LossBurst => {
                    if let Some(&(a, b)) = self.pick_link(links) {
                        let p = self.rng.gen_range(0.05..0.4);
                        sched = sched.degrade_for(a, b, at, lasting, LinkOverlay::loss(p));
                    }
                }
                EpisodeKind::JitterBurst => {
                    if let Some(&(a, b)) = self.pick_link(links) {
                        let j = SimDuration::micros(self.rng.gen_range(1..=20));
                        sched = sched.degrade_for(a, b, at, lasting, LinkOverlay::jitter(j));
                    }
                }
                EpisodeKind::CorruptBurst => {
                    if let Some(&(a, b)) = self.pick_link(links) {
                        let p = self.rng.gen_range(0.05..0.3);
                        sched = sched.degrade_for(a, b, at, lasting, LinkOverlay::corrupt(p));
                    }
                }
                EpisodeKind::GrayLink => {
                    if let Some(&(a, b)) = self.pick_link(links) {
                        let lat = SimDuration::micros(self.rng.gen_range(10..=100));
                        let bw = 1_000_000_000 / self.rng.gen_range(1..=10u64);
                        sched = sched.degrade_for(a, b, at, lasting, LinkOverlay::slow(lat, bw));
                    }
                }
                EpisodeKind::Partition => match shard_of {
                    None => {
                        // Controller replicas join the cut pool too, so
                        // switches can lose their control-plane path mid-
                        // migration. Empty `ctrls` keeps the draw bounds
                        // (and so the RNG stream) identical to the
                        // pre-replica model.
                        let pool: Vec<NodeId> = nodes.iter().chain(ctrls.iter()).copied().collect();
                        if pool.len() >= 2 {
                            let k = self.rng.gen_range(1..pool.len());
                            let r = self.rng.gen_range(0..pool.len());
                            let rotated: Vec<NodeId> = (0..pool.len())
                                .map(|i| pool[(i + r) % pool.len()])
                                .collect();
                            let (a, b) = rotated.split_at(k);
                            // Re-home the replica group onto one side so a
                            // cut never severs two replicas from each other:
                            // combined with the crash budget this guarantees
                            // a live, mutually connected controller majority
                            // in every sampled schedule. Side with more
                            // replicas wins (ties go to `a`); pure shuffling,
                            // no extra RNG draws, and with `ctrls` empty the
                            // events are byte-identical to the legacy path.
                            let (mut a, mut b) = (a.to_vec(), b.to_vec());
                            if !ctrls.is_empty() {
                                let n_in =
                                    |s: &[NodeId]| s.iter().filter(|n| ctrls.contains(n)).count();
                                let (keep, strip) = if n_in(&a) >= n_in(&b) {
                                    (&mut a, &mut b)
                                } else {
                                    (&mut b, &mut a)
                                };
                                strip.retain(|n| !ctrls.contains(n));
                                for &c in ctrls {
                                    if !keep.contains(&c) {
                                        keep.push(c);
                                    }
                                }
                            }
                            sched = sched.partition(&a, &b, at, lasting);
                        }
                    }
                    Some(map) => {
                        // Group nodes by shard (first-appearance order, so
                        // the grouping is a pure function of the inputs)
                        // and cut between whole shards.
                        let mut groups: Vec<(u32, Vec<NodeId>)> = Vec::new();
                        for (i, &n) in nodes.iter().enumerate() {
                            match groups.iter_mut().find(|(s, _)| *s == map[i]) {
                                Some((_, v)) => v.push(n),
                                None => groups.push((map[i], vec![n])),
                            }
                        }
                        if groups.len() >= 2 {
                            let k = self.rng.gen_range(1..groups.len());
                            let r = self.rng.gen_range(0..groups.len());
                            let side = |range: std::ops::Range<usize>| -> Vec<NodeId> {
                                range
                                    .map(|i| &groups[(i + r) % groups.len()].1)
                                    .flat_map(|v| v.iter().copied())
                                    .collect()
                            };
                            let a = side(0..k);
                            let b = side(k..groups.len());
                            sched = sched.partition(&a, &b, at, lasting);
                        } else if let Some(&(a, b)) = self.pick_link(links) {
                            sched = sched.degrade_for(a, b, at, lasting, LinkOverlay::loss(0.2));
                        }
                    }
                },
            }
        }
        sched.sort();
        sched
    }

    /// Interleave `count` reconfiguration triggers into `sched`: each one
    /// fires a token sampled from `tokens` on `node` at a random offset in
    /// the same window episodes start in, so migrations race crashes,
    /// outages and partitions. The caller supplies the controller node and
    /// the candidate trigger tokens (see `swishmem::reconfig::trigger_token`);
    /// the schedule stays a pure function of the generator seed.
    pub fn interleave_triggers(
        &mut self,
        mut sched: FaultSchedule,
        node: NodeId,
        tokens: &[u64],
        horizon: SimDuration,
        count: usize,
    ) -> FaultSchedule {
        if tokens.is_empty() || count == 0 {
            return sched;
        }
        let h = horizon.as_nanos().max(1_000_000);
        for _ in 0..count {
            let at = SimDuration::nanos(self.rng.gen_range(h / 20..=h * 3 / 5));
            let token = tokens[self.rng.gen_range(0..tokens.len())];
            sched = sched.trigger(at, node, token);
        }
        sched.sort();
        sched
    }

    fn pick_link<'a>(&mut self, links: &'a [(NodeId, NodeId)]) -> Option<&'a (NodeId, NodeId)> {
        if links.is_empty() {
            return None;
        }
        Some(&links[self.rng.gen_range(0..links.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: NodeId = NodeId(0);
    const B: NodeId = NodeId(1);
    const C: NodeId = NodeId(2);

    #[test]
    fn helpers_pair_break_with_heal() {
        let s = FaultSchedule::new()
            .crash_for(A, SimDuration::millis(1), SimDuration::millis(2))
            .link_outage(A, B, SimDuration::millis(2), SimDuration::millis(1))
            .degrade_for(
                B,
                C,
                SimDuration::millis(3),
                SimDuration::millis(4),
                LinkOverlay::loss(0.5),
            );
        assert_eq!(s.len(), 6);
        assert_eq!(s.horizon(), SimDuration::millis(7));
        let crashes = s
            .events()
            .iter()
            .filter(|e| matches!(e.action, FaultAction::Crash { .. }))
            .count();
        let restarts = s
            .events()
            .iter()
            .filter(|e| matches!(e.action, FaultAction::Restart { .. }))
            .count();
        assert_eq!(crashes, restarts);
    }

    #[test]
    fn partition_cuts_every_cross_pair() {
        let s = FaultSchedule::new().partition(
            &[A, B],
            &[C],
            SimDuration::millis(1),
            SimDuration::millis(2),
        );
        // 2 cross pairs, each with a down and an up event.
        assert_eq!(s.len(), 4);
        assert!(s
            .events()
            .iter()
            .any(|e| e.action == FaultAction::LinkDown { a: A, b: C }));
        assert!(s
            .events()
            .iter()
            .any(|e| e.action == FaultAction::LinkUp { a: B, b: C }));
    }

    #[test]
    fn overlay_applies_partially() {
        let base = LinkParams::datacenter();
        let o = LinkOverlay::loss(0.25);
        let p = o.apply(base);
        assert_eq!(p.drop_prob, 0.25);
        assert_eq!(p.latency, base.latency);
        assert_eq!(p.bandwidth_bps, base.bandwidth_bps);
        let g = LinkOverlay::slow(SimDuration::micros(50), 1_000_000);
        let p = g.apply(base);
        assert_eq!(p.latency, SimDuration::micros(50));
        assert_eq!(p.bandwidth_bps, 1_000_000);
        assert_eq!(p.drop_prob, base.drop_prob);
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let nodes = [A, B, C];
        let links = [(A, B), (B, C), (A, C)];
        let h = SimDuration::millis(50);
        let s1 = FaultGen::new(7).generate(&nodes, &links, h, 5);
        let s2 = FaultGen::new(7).generate(&nodes, &links, h, 5);
        assert_eq!(s1, s2, "same seed must generate the same schedule");
        let s3 = FaultGen::new(8).generate(&nodes, &links, h, 5);
        assert_ne!(s1, s3, "different seeds should diverge");
        assert!(!s1.is_empty());
    }

    #[test]
    fn generated_schedules_heal_within_horizon() {
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let links: Vec<(NodeId, NodeId)> = (0..4)
            .flat_map(|i| ((i + 1)..4).map(move |j| (NodeId(i), NodeId(j))))
            .collect();
        for seed in 0..20 {
            let h = SimDuration::millis(40);
            let s = FaultGen::new(seed).generate(&nodes, &links, h, 6);
            assert!(
                s.horizon() <= h,
                "seed {seed}: schedule exceeds its horizon\n{s}"
            );
            // Every crash has a matching restart, every down an up, every
            // degrade a restore.
            let count = |f: &dyn Fn(&FaultAction) -> bool| {
                s.events().iter().filter(|e| f(&e.action)).count()
            };
            assert_eq!(
                count(&|a| matches!(a, FaultAction::Crash { .. })),
                count(&|a| matches!(a, FaultAction::Restart { .. })),
                "seed {seed}:\n{s}"
            );
            assert_eq!(
                count(&|a| matches!(a, FaultAction::LinkDown { .. })),
                count(&|a| matches!(a, FaultAction::LinkUp { .. })),
                "seed {seed}:\n{s}"
            );
            assert_eq!(
                count(&|a| matches!(a, FaultAction::Degrade { .. })),
                count(&|a| matches!(a, FaultAction::Restore { .. })),
                "seed {seed}:\n{s}"
            );
        }
    }

    #[test]
    fn triggers_interleave_deterministically() {
        let nodes = [A, B, C];
        let links = [(A, B), (B, C), (A, C)];
        let h = SimDuration::millis(40);
        let mk = |seed| {
            let mut g = FaultGen::new(seed);
            let s = g.generate(&nodes, &links, h, 4);
            g.interleave_triggers(s, NodeId(999), &[0x10, 0x20], h, 3)
        };
        let s1 = mk(5);
        let s2 = mk(5);
        assert_eq!(s1, s2);
        let trig = s1
            .events()
            .iter()
            .filter(|e| matches!(e.action, FaultAction::Trigger { .. }))
            .count();
        assert_eq!(trig, 3);
        assert!(s1.horizon() <= h);
        // Empty token set is a no-op.
        let mut g = FaultGen::new(5);
        let base = g.generate(&nodes, &links, h, 4);
        let same = g.interleave_triggers(base.clone(), NodeId(999), &[], h, 3);
        assert_eq!(base, same);
    }

    #[test]
    fn empty_controller_set_replays_legacy_schedules() {
        // `generate_with_controllers(.., &[], ..)` must be byte-identical
        // to `generate` — published seeds keep replaying unchanged.
        let nodes = [A, B, C];
        let links = [(A, B), (B, C), (A, C)];
        let h = SimDuration::millis(50);
        for seed in 0..20 {
            let legacy = FaultGen::new(seed).generate(&nodes, &links, h, 6);
            let with = FaultGen::new(seed).generate_with_controllers(&nodes, &[], &links, h, 6);
            assert_eq!(legacy, with, "seed {seed}");
        }
    }

    #[test]
    fn controller_crashes_keep_a_quorum_alive() {
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let ctrls: Vec<NodeId> = (0..3).map(|i| NodeId(u16::MAX - i)).collect();
        let links: Vec<(NodeId, NodeId)> = nodes
            .iter()
            .flat_map(|&a| ctrls.iter().map(move |&c| (a, c)))
            .collect();
        let h = SimDuration::millis(60);
        let mut ctrl_crash_seeds = 0;
        for seed in 0..40 {
            let s = FaultGen::new(seed).generate_with_controllers(&nodes, &ctrls, &links, h, 8);
            // Replay crash/restart events and track how many controller
            // replicas are down at once: never more than ⌊(3-1)/2⌋ = 1,
            // so a 2-of-3 quorum is always alive.
            let mut down: Vec<NodeId> = Vec::new();
            let mut any_ctrl = false;
            for e in s.events() {
                match e.action {
                    FaultAction::Crash { node } if ctrls.contains(&node) => {
                        any_ctrl = true;
                        down.push(node);
                        assert!(
                            down.len() <= 1,
                            "seed {seed}: {} controller replicas down at once\n{s}",
                            down.len()
                        );
                    }
                    FaultAction::Restart { node } => down.retain(|&n| n != node),
                    _ => {}
                }
            }
            ctrl_crash_seeds += usize::from(any_ctrl);
        }
        // Controllers must actually be exercised across the seed sweep.
        assert!(
            ctrl_crash_seeds >= 5,
            "only {ctrl_crash_seeds}/40 seeds crashed a controller replica"
        );
    }

    #[test]
    fn no_schedule_degrades_a_controller_majority() {
        // Property sweep: across 64 seeds and two group sizes, no sampled
        // schedule may crash or partition away a controller majority at
        // any instant. Crashes are interval-checked (budget ⌊(n-1)/2⌋
        // concurrently down) and partitions must never cut a link between
        // two replicas — together these leave a live, mutually connected
        // majority at all times.
        let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
        for n_ctrl in [3u16, 5] {
            let ctrls: Vec<NodeId> = (0..n_ctrl).map(|i| NodeId(u16::MAX - i)).collect();
            let links: Vec<(NodeId, NodeId)> = nodes
                .iter()
                .flat_map(|&a| ctrls.iter().map(move |&c| (a, c)))
                .collect();
            let budget = (usize::from(n_ctrl) - 1) / 2;
            let h = SimDuration::millis(60);
            let mut ctrl_cuts = 0;
            for seed in 0..64 {
                let s =
                    FaultGen::new(seed).generate_with_controllers(&nodes, &ctrls, &links, h, 10);
                // Crash intervals per controller replica.
                let mut down: Vec<(NodeId, u64)> = Vec::new(); // (replica, since)
                let mut windows: Vec<(u64, u64)> = Vec::new();
                for e in s.events() {
                    match e.action {
                        FaultAction::Crash { node } if ctrls.contains(&node) => {
                            down.push((node, e.at.as_nanos()));
                        }
                        FaultAction::Restart { node } if ctrls.contains(&node) => {
                            if let Some(i) = down.iter().position(|&(n, _)| n == node) {
                                let (_, since) = down.remove(i);
                                windows.push((since, e.at.as_nanos()));
                            }
                        }
                        FaultAction::LinkDown { a, b }
                            if ctrls.contains(&a) && ctrls.contains(&b) =>
                        {
                            ctrl_cuts += 1;
                        }
                        _ => {}
                    }
                }
                assert!(
                    down.is_empty(),
                    "seed {seed}: unhealed controller crash\n{s}"
                );
                // Sweep the interval boundaries for the true maximum
                // number of concurrently down replicas (restarts apply
                // before crashes at the same instant — touching windows
                // don't overlap).
                let mut bounds: Vec<(u64, i32)> = windows
                    .iter()
                    .flat_map(|&(s, e)| [(s, 1), (e, -1)])
                    .collect();
                bounds.sort_by_key(|&(t, delta)| (t, delta));
                let (mut cur, mut peak) = (0i32, 0i32);
                for (_, delta) in bounds {
                    cur += delta;
                    peak = peak.max(cur);
                }
                assert!(
                    peak as usize <= budget,
                    "seed {seed}: {peak} of {n_ctrl} replicas down at once\n{s}"
                );
            }
            assert_eq!(
                ctrl_cuts, 0,
                "{n_ctrl} replicas: some schedule partitioned the replica group"
            );
        }
    }

    #[test]
    fn shard_aware_cuts_never_split_a_shard() {
        let nodes: Vec<NodeId> = (0..8).map(NodeId).collect();
        // Shards of two nodes each: {0,1} {2,3} {4,5} {6,7}.
        let shard_of: Vec<u32> = (0..8u32).map(|i| i / 2).collect();
        for seed in 0..30 {
            let s = FaultGen::new(seed).generate_for_shards(
                &nodes,
                &shard_of,
                &[],
                SimDuration::millis(40),
                8,
            );
            for e in s.events() {
                if let FaultAction::LinkDown { a, b } = e.action {
                    // Every cut severs two *different* shards: with an
                    // empty link set, LinkDown events only come from
                    // partition episodes.
                    assert_ne!(
                        shard_of[a.0 as usize], shard_of[b.0 as usize],
                        "seed {seed}: cut {a}<->{b} splits a shard\n{s}"
                    );
                }
            }
        }
        // Same seed, same inputs: still deterministic.
        let mk = || {
            FaultGen::new(3).generate_for_shards(&nodes, &shard_of, &[], SimDuration::millis(40), 8)
        };
        assert_eq!(mk(), mk());
        // Single shard: no cut is possible, so no LinkDown ever appears
        // (the node-level generator would still emit partitions here).
        let one: Vec<u32> = vec![0; 8];
        let s = FaultGen::new(3).generate_for_shards(&nodes, &one, &[], SimDuration::millis(40), 8);
        assert!(!s
            .events()
            .iter()
            .any(|e| matches!(e.action, FaultAction::LinkDown { .. })));
    }

    #[test]
    fn display_prints_one_line_per_event() {
        let s = FaultSchedule::new().crash_for(A, SimDuration::millis(1), SimDuration::millis(2));
        let text = s.to_string();
        assert!(text.contains("crash"), "{text}");
        assert!(text.contains("restart"), "{text}");
        assert_eq!(text.lines().count(), 3); // header + 2 events
    }
}

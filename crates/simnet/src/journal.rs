//! Control-plane journal telemetry: a bounded collector of fixed-width
//! structured records that protocol layers emit to narrate state-machine
//! transitions (consensus decrees, leadership changes, migrations).
//!
//! Sits beside the [`crate::span::SpanCollector`] and obeys the same
//! passivity contract: the collector is written to, never read, during a
//! run; it holds no RNG, schedules no events, and every record is
//! stamped with `SimTime` only — so attaching or detaching it cannot
//! perturb the engine's `(time, seq)` event order or its RNG stream. The
//! determinism fingerprint tests (`tests/determinism.rs`,
//! `tests/shard_determinism.rs`) prove this bit-for-bit.
//!
//! The record format is deliberately *untyped* at this layer: `kind`
//! discriminates the event class and `cause`/`a`/`b`/`c` are opaque
//! payload words, so simnet needs no knowledge of the control-plane
//! protocols above it. The `swishmem` core crate defines the typed event
//! vocabulary (`telemetry::journal::CtrlEvent`) and its encode/decode,
//! plus the causal-link reconstruction that turns the flat record stream
//! into a parent-linked narrative. The `cause` word carries a
//! correlation key (not a record index): emitters never read the journal
//! back, which is what keeps emission passive; readers join records on
//! equal correlation keys after the run.

use crate::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;
use swishmem_wire::NodeId;

/// One journal record: a SimTime-stamped, fixed-width structured event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JournalRecord {
    /// When the transition happened, in simulated time.
    pub time: SimTime,
    /// The node (e.g. controller replica) the transition happened on.
    pub node: NodeId,
    /// Event-class discriminant (typed by the layer above).
    pub kind: u16,
    /// Causal correlation key: records describing the same logical
    /// operation (one decree slot, one migration epoch) carry the same
    /// key, letting readers reconstruct parent links post-hoc.
    pub cause: u64,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Third payload word.
    pub c: u64,
}

/// A bounded in-memory journal collector.
///
/// Mirrors [`crate::span::SpanCollector`]: at most `capacity` records
/// are kept, later ones are counted in `overflowed()` and discarded, so
/// long runs stay bounded.
#[derive(Debug)]
pub struct JournalCollector {
    records: Vec<JournalRecord>,
    capacity: usize,
    dropped: u64,
}

/// Shared handle to a [`JournalCollector`] (the simulator holds one side).
pub type JournalHandle = Rc<RefCell<JournalCollector>>;

impl JournalCollector {
    /// A collector keeping at most `capacity` records.
    pub fn new(capacity: usize) -> JournalHandle {
        Rc::new(RefCell::new(JournalCollector::detached(capacity)))
    }

    /// An owned (non-shared) collector. The sharded engine gives each
    /// shard core one of these; their contents are merged into the
    /// attached [`JournalHandle`] after each run.
    pub fn detached(capacity: usize) -> JournalCollector {
        JournalCollector {
            records: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Take all recorded records out of the collector, leaving it empty
    /// (the overflow counter is reset too).
    pub fn take_records(&mut self) -> Vec<JournalRecord> {
        self.dropped = 0;
        std::mem::take(&mut self.records)
    }

    /// Record one transition.
    pub fn record(&mut self, rec: JournalRecord) {
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            self.dropped += 1;
        }
    }

    /// All recorded records, in emission order.
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// Records not kept because the collector was full.
    pub fn overflowed(&self) -> u64 {
        self.dropped
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the collector holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Clear all records and the overflow counter.
    pub fn clear(&mut self) {
        self.records.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, kind: u16) -> JournalRecord {
        JournalRecord {
            time: SimTime(t),
            node: NodeId(7),
            kind,
            cause: 42,
            a: 1,
            b: 2,
            c: 3,
        }
    }

    #[test]
    fn records_and_bounds() {
        let h = JournalCollector::new(2);
        let mut c = h.borrow_mut();
        c.record(rec(1, 0));
        c.record(rec(2, 1));
        c.record(rec(3, 2));
        assert_eq!(c.len(), 2);
        assert_eq!(c.overflowed(), 1);
        assert_eq!(c.records()[1].kind, 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.overflowed(), 0);
    }

    #[test]
    fn take_records_resets() {
        let h = JournalCollector::new(1);
        let mut c = h.borrow_mut();
        c.record(rec(1, 0));
        c.record(rec(2, 1));
        assert_eq!(c.overflowed(), 1);
        let out = c.take_records();
        assert_eq!(out.len(), 1);
        assert!(c.is_empty());
        assert_eq!(c.overflowed(), 0);
    }
}

//! Network topology: the directed-link table and multicast groups.

use crate::ctx::GroupId;
use crate::link::{Link, LinkParams};
use std::collections::HashMap;
use swishmem_wire::NodeId;

/// The set of links and multicast groups of a simulation.
#[derive(Debug, Default)]
pub struct Topology {
    links: HashMap<(NodeId, NodeId), Link>,
    groups: HashMap<GroupId, Vec<NodeId>>,
    /// Static next-hop routes for node pairs without a direct link:
    /// `(src, dst) -> via`. The frame is transmitted over `src -> via`
    /// with its final destination intact; a relay node at `via` forwards.
    routes: HashMap<(NodeId, NodeId), NodeId>,
}

impl Topology {
    /// Create an empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Add a one-directional link `src -> dst`. Replaces any existing link.
    pub fn add_link(&mut self, src: NodeId, dst: NodeId, params: LinkParams) {
        self.links.insert((src, dst), Link::new(params));
    }

    /// Add links in both directions with the same parameters.
    pub fn connect(&mut self, a: NodeId, b: NodeId, params: LinkParams) {
        self.add_link(a, b, params);
        self.add_link(b, a, params);
    }

    /// Connect every pair of `nodes` bidirectionally.
    pub fn full_mesh(&mut self, nodes: &[NodeId], params: LinkParams) {
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                self.connect(a, b, params);
            }
        }
    }

    /// Connect `nodes` in a line: `n0 <-> n1 <-> n2 ...` (chain topology).
    pub fn chain(&mut self, nodes: &[NodeId], params: LinkParams) {
        for w in nodes.windows(2) {
            self.connect(w[0], w[1], params);
        }
    }

    /// Connect `hub` bidirectionally to each of `spokes` (star topology).
    pub fn star(&mut self, hub: NodeId, spokes: &[NodeId], params: LinkParams) {
        for &s in spokes {
            self.connect(hub, s, params);
        }
    }

    /// Look up the directed link `src -> dst`.
    pub fn link_mut(&mut self, src: NodeId, dst: NodeId) -> Option<&mut Link> {
        self.links.get_mut(&(src, dst))
    }

    /// Look up the directed link `src -> dst` (read-only).
    pub fn link(&self, src: NodeId, dst: NodeId) -> Option<&Link> {
        self.links.get(&(src, dst))
    }

    /// Mark the duplex link between `a` and `b` up or down.
    pub fn set_link_down(&mut self, a: NodeId, b: NodeId, down: bool) {
        if let Some(l) = self.links.get_mut(&(a, b)) {
            l.state.down = down;
        }
        if let Some(l) = self.links.get_mut(&(b, a)) {
            l.state.down = down;
        }
    }

    /// Define (or redefine) a multicast group's membership.
    pub fn set_group(&mut self, group: GroupId, members: Vec<NodeId>) {
        self.groups.insert(group, members);
    }

    /// Current members of a group (empty if undefined).
    pub fn group(&self, group: GroupId) -> &[NodeId] {
        self.groups.get(&group).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Remove one member from a group (e.g. a failed switch, §6.3).
    pub fn remove_from_group(&mut self, group: GroupId, node: NodeId) {
        if let Some(members) = self.groups.get_mut(&group) {
            members.retain(|&m| m != node);
        }
    }

    /// Install a static route: frames from `src` to `dst` take the link
    /// toward `via` (which must itself have a link or route onward).
    pub fn set_route(&mut self, src: NodeId, dst: NodeId, via: NodeId) {
        self.routes.insert((src, dst), via);
    }

    /// Next hop for `src -> dst`: the direct link if present, else the
    /// configured route, else `None`.
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        if self.links.contains_key(&(src, dst)) {
            Some(dst)
        } else {
            self.routes.get(&(src, dst)).copied()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u16) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn full_mesh_has_all_directed_pairs() {
        let mut t = Topology::new();
        let nodes = ids(4);
        t.full_mesh(&nodes, LinkParams::datacenter());
        for &a in &nodes {
            for &b in &nodes {
                if a != b {
                    assert!(t.link(a, b).is_some(), "{a}->{b} missing");
                }
            }
        }
        assert!(t.link(NodeId(0), NodeId(0)).is_none());
    }

    #[test]
    fn chain_links_only_neighbors() {
        let mut t = Topology::new();
        t.chain(&ids(3), LinkParams::datacenter());
        assert!(t.link(NodeId(0), NodeId(1)).is_some());
        assert!(t.link(NodeId(1), NodeId(0)).is_some());
        assert!(t.link(NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn star_connects_hub() {
        let mut t = Topology::new();
        t.star(NodeId(9), &ids(2), LinkParams::datacenter());
        assert!(t.link(NodeId(9), NodeId(0)).is_some());
        assert!(t.link(NodeId(0), NodeId(9)).is_some());
        assert!(t.link(NodeId(0), NodeId(1)).is_none());
    }

    #[test]
    fn groups_update() {
        let mut t = Topology::new();
        let g = GroupId(1);
        t.set_group(g, ids(3));
        assert_eq!(t.group(g).len(), 3);
        t.remove_from_group(g, NodeId(1));
        assert_eq!(t.group(g), &[NodeId(0), NodeId(2)]);
        assert!(t.group(GroupId(99)).is_empty());
    }

    #[test]
    fn link_down_is_duplex() {
        let mut t = Topology::new();
        t.connect(NodeId(0), NodeId(1), LinkParams::datacenter());
        t.set_link_down(NodeId(0), NodeId(1), true);
        assert!(t.link(NodeId(0), NodeId(1)).unwrap().state.down);
        assert!(t.link(NodeId(1), NodeId(0)).unwrap().state.down);
    }
}

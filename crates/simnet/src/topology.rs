//! Network topology: the directed-link table and multicast groups.
//!
//! Node ids are interned into dense indices on first use, and links hang
//! off a per-source adjacency row, so the per-transmit lookups the engine
//! does (`resolve` + `link_at_mut`) are array indexing plus a short scan
//! of the source's neighbors — no hashing on the hot path. The public
//! API is expressed entirely in `NodeId`s; the dense scheme is an
//! internal representation.

use crate::ctx::GroupId;
use crate::fault::LinkOverlay;
use crate::link::{Link, LinkParams};
use crate::time::SimDuration;
use swishmem_wire::NodeId;

/// Sentinel in the id -> dense-index table.
const ABSENT: u32 = u32::MAX;

/// A resolved position of a directed link: the source's dense index and
/// the slot within its adjacency row. Lets the engine re-access the same
/// link in O(1) after RNG draws without repeating the search.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LinkRef {
    src: u32,
    slot: u32,
}

/// The set of links and multicast groups of a simulation.
///
/// `Clone` exists for the sharded engine: every shard holds a full copy
/// (the link table is small relative to event state) and only the copy
/// owned by a directed link's *source* shard is authoritative for that
/// link's transient state (`busy_until`).
#[derive(Debug, Default, Clone)]
pub struct Topology {
    /// `NodeId.0` -> dense index (`ABSENT` when the id was never seen).
    index: Vec<u32>,
    /// Dense index -> `NodeId` (reverse of `index`).
    ids: Vec<NodeId>,
    /// Per-source adjacency row: `(dense dst, link)`.
    adj: Vec<Vec<(u32, Link)>>,
    /// Static next-hop routes for node pairs without a direct link, per
    /// source: `(dense dst, dense via)`. The frame is transmitted over
    /// `src -> via` with its final destination intact; a relay node at
    /// `via` forwards.
    routes: Vec<Vec<(u32, u32)>>,
    /// Multicast groups (few per simulation; linear scan).
    groups: Vec<(GroupId, Vec<NodeId>)>,
}

impl Topology {
    /// Create an empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Intern `id`, growing the tables as needed.
    fn dense(&mut self, id: NodeId) -> u32 {
        let i = id.index();
        if i >= self.index.len() {
            self.index.resize(i + 1, ABSENT);
        }
        if self.index[i] != ABSENT {
            return self.index[i];
        }
        let d = self.ids.len() as u32;
        self.index[i] = d;
        self.ids.push(id);
        self.adj.push(Vec::new());
        self.routes.push(Vec::new());
        d
    }

    #[inline]
    fn lookup(&self, id: NodeId) -> Option<u32> {
        match self.index.get(id.index()) {
            Some(&d) if d != ABSENT => Some(d),
            _ => None,
        }
    }

    /// Add a one-directional link `src -> dst`. Replaces any existing link.
    pub fn add_link(&mut self, src: NodeId, dst: NodeId, params: LinkParams) {
        let s = self.dense(src);
        let d = self.dense(dst);
        let row = &mut self.adj[s as usize];
        match row.iter_mut().find(|(x, _)| *x == d) {
            Some((_, l)) => *l = Link::new(params),
            None => row.push((d, Link::new(params))),
        }
    }

    /// Add links in both directions with the same parameters.
    pub fn connect(&mut self, a: NodeId, b: NodeId, params: LinkParams) {
        self.add_link(a, b, params);
        self.add_link(b, a, params);
    }

    /// Connect every pair of `nodes` bidirectionally.
    pub fn full_mesh(&mut self, nodes: &[NodeId], params: LinkParams) {
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                self.connect(a, b, params);
            }
        }
    }

    /// Connect `nodes` in a line: `n0 <-> n1 <-> n2 ...` (chain topology).
    pub fn chain(&mut self, nodes: &[NodeId], params: LinkParams) {
        for w in nodes.windows(2) {
            self.connect(w[0], w[1], params);
        }
    }

    /// Connect `hub` bidirectionally to each of `spokes` (star topology).
    pub fn star(&mut self, hub: NodeId, spokes: &[NodeId], params: LinkParams) {
        for &s in spokes {
            self.connect(hub, s, params);
        }
    }

    /// Look up the directed link `src -> dst`.
    pub fn link_mut(&mut self, src: NodeId, dst: NodeId) -> Option<&mut Link> {
        let s = self.lookup(src)?;
        let d = self.lookup(dst)?;
        self.adj[s as usize]
            .iter_mut()
            .find(|(x, _)| *x == d)
            .map(|(_, l)| l)
    }

    /// Look up the directed link `src -> dst` (read-only).
    pub fn link(&self, src: NodeId, dst: NodeId) -> Option<&Link> {
        let s = self.lookup(src)?;
        let d = self.lookup(dst)?;
        self.adj[s as usize]
            .iter()
            .find(|(x, _)| *x == d)
            .map(|(_, l)| l)
    }

    /// Mark the duplex link between `a` and `b` up or down.
    pub fn set_link_down(&mut self, a: NodeId, b: NodeId, down: bool) {
        let (sa, sb) = match (self.lookup(a), self.lookup(b)) {
            (Some(sa), Some(sb)) => (sa, sb),
            _ => return,
        };
        if let Some((_, l)) = self.adj[sa as usize].iter_mut().find(|(x, _)| *x == sb) {
            l.state.down = down;
        }
        if let Some((_, l)) = self.adj[sb as usize].iter_mut().find(|(x, _)| *x == sa) {
            l.state.down = down;
        }
    }

    /// Overlay fault parameters on the duplex link between `a` and `b`
    /// (both directions); pristine parameters are saved for
    /// [`Topology::restore_link`]. No-op when no such link exists.
    pub fn degrade_link(&mut self, a: NodeId, b: NodeId, overlay: &LinkOverlay) {
        let (sa, sb) = match (self.lookup(a), self.lookup(b)) {
            (Some(sa), Some(sb)) => (sa, sb),
            _ => return,
        };
        if let Some((_, l)) = self.adj[sa as usize].iter_mut().find(|(x, _)| *x == sb) {
            l.degrade(overlay);
        }
        if let Some((_, l)) = self.adj[sb as usize].iter_mut().find(|(x, _)| *x == sa) {
            l.degrade(overlay);
        }
    }

    /// Restore the duplex link between `a` and `b` (both directions) to
    /// its pristine parameters. No-op on missing or undegraded links.
    pub fn restore_link(&mut self, a: NodeId, b: NodeId) {
        let (sa, sb) = match (self.lookup(a), self.lookup(b)) {
            (Some(sa), Some(sb)) => (sa, sb),
            _ => return,
        };
        if let Some((_, l)) = self.adj[sa as usize].iter_mut().find(|(x, _)| *x == sb) {
            l.restore();
        }
        if let Some((_, l)) = self.adj[sb as usize].iter_mut().find(|(x, _)| *x == sa) {
            l.restore();
        }
    }

    /// Define (or redefine) a multicast group's membership.
    pub fn set_group(&mut self, group: GroupId, members: Vec<NodeId>) {
        match self.groups.iter_mut().find(|(g, _)| *g == group) {
            Some((_, m)) => *m = members,
            None => self.groups.push((group, members)),
        }
    }

    /// Current members of a group (empty if undefined).
    pub fn group(&self, group: GroupId) -> &[NodeId] {
        self.groups
            .iter()
            .find(|(g, _)| *g == group)
            .map(|(_, m)| m.as_slice())
            .unwrap_or(&[])
    }

    /// Remove one member from a group (e.g. a failed switch, §6.3).
    pub fn remove_from_group(&mut self, group: GroupId, node: NodeId) {
        if let Some((_, members)) = self.groups.iter_mut().find(|(g, _)| *g == group) {
            members.retain(|&m| m != node);
        }
    }

    /// Install a static route: frames from `src` to `dst` take the link
    /// toward `via` (which must itself have a link or route onward).
    pub fn set_route(&mut self, src: NodeId, dst: NodeId, via: NodeId) {
        let s = self.dense(src);
        let d = self.dense(dst);
        let v = self.dense(via);
        let row = &mut self.routes[s as usize];
        match row.iter_mut().find(|(x, _)| *x == d) {
            Some((_, r)) => *r = v,
            None => row.push((d, v)),
        }
    }

    /// Next hop for `src -> dst`: the direct link if present, else the
    /// configured route, else `None`.
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        self.resolve(src, dst).map(|(hop, _)| hop).or_else(|| {
            // `resolve` additionally requires the src->via link to exist;
            // `next_hop` reports the configured route regardless (the
            // caller's link lookup then fails, as before).
            let s = self.lookup(src)?;
            let d = self.lookup(dst)?;
            self.routes[s as usize]
                .iter()
                .find(|(x, _)| *x == d)
                .map(|&(_, v)| self.ids[v as usize])
        })
    }

    /// Resolve `src -> dst` to the next hop plus the position of the
    /// outgoing link, in a single pass (engine fast path).
    pub(crate) fn resolve(&self, src: NodeId, dst: NodeId) -> Option<(NodeId, LinkRef)> {
        let s = self.lookup(src)?;
        let d = self.lookup(dst)?;
        let row = &self.adj[s as usize];
        if let Some(slot) = row.iter().position(|(x, _)| *x == d) {
            return Some((
                dst,
                LinkRef {
                    src: s,
                    slot: slot as u32,
                },
            ));
        }
        let via = self.routes[s as usize]
            .iter()
            .find(|(x, _)| *x == d)
            .map(|&(_, v)| v)?;
        let slot = row.iter().position(|(x, _)| *x == via)?;
        Some((
            self.ids[via as usize],
            LinkRef {
                src: s,
                slot: slot as u32,
            },
        ))
    }

    /// O(1) access to a link previously located by [`Topology::resolve`].
    #[inline]
    pub(crate) fn link_at(&self, r: LinkRef) -> &Link {
        &self.adj[r.src as usize][r.slot as usize].1
    }

    /// O(1) mutable access to a link previously located by
    /// [`Topology::resolve`].
    #[inline]
    pub(crate) fn link_at_mut(&mut self, r: LinkRef) -> &mut Link {
        &mut self.adj[r.src as usize][r.slot as usize].1
    }

    /// Minimum one-way latency over all configured directed links
    /// (self-loops excluded). This is the conservative-PDES lookahead
    /// bound: a cross-shard frame sent at `t` cannot arrive before
    /// `t + min_latency`, so shards synchronized on a `min_latency`-wide
    /// window grid never receive an event in their own window. Computed
    /// from the *pristine* parameters only, which faults cannot lower
    /// (degrade overlays may raise latency, never reduce it below the
    /// pristine floor — `ShardedEngine` enforces this at schedule time).
    pub fn min_latency(&self) -> Option<SimDuration> {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(s, row)| {
                row.iter()
                    .filter(move |(d, _)| *d != s as u32)
                    .map(|(_, l)| l.params.latency)
            })
            .min()
    }

    /// Partition `nodes` into `shards` groups, returning a shard index
    /// per node (parallel to `nodes`). Greedy edge-cut minimization:
    /// regions are grown one at a time from an unassigned seed (lowest
    /// degree breaks toward the fabric edge, then lowest id), each step
    /// absorbing the unassigned neighbor with the most links into the
    /// region (ties to the lowest id). Falls back to round-robin when the
    /// nodes have no links among themselves. Sizes are balanced to within
    /// one node. Fully deterministic: no RNG, no hash iteration.
    pub fn partition(&self, nodes: &[NodeId], shards: usize) -> Vec<u32> {
        let n = nodes.len();
        if n == 0 {
            return Vec::new();
        }
        let shards = shards.clamp(1, n);
        // Local adjacency among `nodes` only (positions into `nodes`).
        let mut pos_of = std::collections::HashMap::new();
        for (i, &id) in nodes.iter().enumerate() {
            pos_of.insert(id, i);
        }
        let mut neigh: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut any_edge = false;
        for (i, &id) in nodes.iter().enumerate() {
            if let Some(s) = self.lookup(id) {
                for (d, _) in &self.adj[s as usize] {
                    let peer = self.ids[*d as usize];
                    if let Some(&j) = pos_of.get(&peer) {
                        if j != i && !neigh[i].contains(&j) {
                            neigh[i].push(j);
                            any_edge = true;
                        }
                    }
                }
            }
            neigh[i].sort_unstable();
        }
        if !any_edge {
            return (0..n).map(|i| (i % shards) as u32).collect();
        }
        let mut assign: Vec<u32> = vec![u32::MAX; n];
        for shard in 0..shards {
            let target = n / shards + usize::from(shard < n % shards);
            // Seed: unassigned node with the fewest links, lowest id.
            let seed = (0..n)
                .filter(|&i| assign[i] == u32::MAX)
                .min_by_key(|&i| (neigh[i].len(), nodes[i].0))
                .expect("sizes sum to n");
            assign[seed] = shard as u32;
            let mut size = 1;
            // Gain: links from a candidate into the growing region.
            let mut gain: Vec<u32> = vec![0; n];
            for &j in &neigh[seed] {
                gain[j] += 1;
            }
            while size < target {
                let pick = (0..n)
                    .filter(|&i| assign[i] == u32::MAX && gain[i] > 0)
                    .max_by_key(|&i| (gain[i], std::cmp::Reverse(nodes[i].0)))
                    .or_else(|| {
                        // Region has no unassigned frontier (disconnected
                        // remainder): restart from the best fresh seed.
                        (0..n)
                            .filter(|&i| assign[i] == u32::MAX)
                            .min_by_key(|&i| (neigh[i].len(), nodes[i].0))
                    });
                let Some(pick) = pick else { break };
                assign[pick] = shard as u32;
                size += 1;
                for &j in &neigh[pick] {
                    gain[j] += 1;
                }
            }
        }
        // Any stragglers (only possible via the `break` above) round-robin.
        let mut next = 0u32;
        for a in assign.iter_mut() {
            if *a == u32::MAX {
                *a = next % shards as u32;
                next += 1;
            }
        }
        assign
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u16) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn full_mesh_has_all_directed_pairs() {
        let mut t = Topology::new();
        let nodes = ids(4);
        t.full_mesh(&nodes, LinkParams::datacenter());
        for &a in &nodes {
            for &b in &nodes {
                if a != b {
                    assert!(t.link(a, b).is_some(), "{a}->{b} missing");
                }
            }
        }
        assert!(t.link(NodeId(0), NodeId(0)).is_none());
    }

    #[test]
    fn chain_links_only_neighbors() {
        let mut t = Topology::new();
        t.chain(&ids(3), LinkParams::datacenter());
        assert!(t.link(NodeId(0), NodeId(1)).is_some());
        assert!(t.link(NodeId(1), NodeId(0)).is_some());
        assert!(t.link(NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn star_connects_hub() {
        let mut t = Topology::new();
        t.star(NodeId(9), &ids(2), LinkParams::datacenter());
        assert!(t.link(NodeId(9), NodeId(0)).is_some());
        assert!(t.link(NodeId(0), NodeId(9)).is_some());
        assert!(t.link(NodeId(0), NodeId(1)).is_none());
    }

    #[test]
    fn groups_update() {
        let mut t = Topology::new();
        let g = GroupId(1);
        t.set_group(g, ids(3));
        assert_eq!(t.group(g).len(), 3);
        t.remove_from_group(g, NodeId(1));
        assert_eq!(t.group(g), &[NodeId(0), NodeId(2)]);
        assert!(t.group(GroupId(99)).is_empty());
    }

    #[test]
    fn link_down_is_duplex() {
        let mut t = Topology::new();
        t.connect(NodeId(0), NodeId(1), LinkParams::datacenter());
        t.set_link_down(NodeId(0), NodeId(1), true);
        assert!(t.link(NodeId(0), NodeId(1)).unwrap().state.down);
        assert!(t.link(NodeId(1), NodeId(0)).unwrap().state.down);
    }

    #[test]
    fn routes_resolve_via_relay() {
        let mut t = Topology::new();
        t.connect(NodeId(0), NodeId(9), LinkParams::datacenter());
        t.connect(NodeId(9), NodeId(1), LinkParams::datacenter());
        t.set_route(NodeId(0), NodeId(1), NodeId(9));
        assert_eq!(t.next_hop(NodeId(0), NodeId(1)), Some(NodeId(9)));
        let (hop, r) = t.resolve(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(hop, NodeId(9));
        assert!(!t.link_at(r).state.down);
        // Direct links win over routes.
        assert_eq!(t.next_hop(NodeId(0), NodeId(9)), Some(NodeId(9)));
        // Unknown destinations resolve to nothing.
        assert_eq!(t.next_hop(NodeId(0), NodeId(42)), None);
        assert!(t.resolve(NodeId(0), NodeId(42)).is_none());
    }

    #[test]
    fn min_latency_ignores_self_loops() {
        let mut t = Topology::new();
        assert_eq!(t.min_latency(), None);
        t.add_link(
            NodeId(0),
            NodeId(0),
            LinkParams::datacenter().with_latency(SimDuration(1)),
        );
        assert_eq!(t.min_latency(), None);
        t.connect(NodeId(0), NodeId(1), LinkParams::datacenter());
        t.connect(
            NodeId(1),
            NodeId(2),
            LinkParams::datacenter().with_latency(SimDuration(250)),
        );
        assert_eq!(t.min_latency(), Some(SimDuration(250)));
    }

    #[test]
    fn partition_balances_and_is_deterministic() {
        let mut t = Topology::new();
        let nodes = ids(10);
        // Two 5-node cliques joined by one bridge link: the greedy grower
        // should keep each clique whole.
        t.full_mesh(&nodes[..5], LinkParams::datacenter());
        t.full_mesh(&nodes[5..], LinkParams::datacenter());
        t.connect(NodeId(4), NodeId(5), LinkParams::datacenter());
        let p = t.partition(&nodes, 2);
        assert_eq!(p, t.partition(&nodes, 2));
        assert_eq!(p.iter().filter(|&&s| s == 0).count(), 5);
        assert_eq!(p.iter().filter(|&&s| s == 1).count(), 5);
        // Each clique lands wholly in one shard (cut = the bridge only).
        assert!(p[..5].windows(2).all(|w| w[0] == w[1]));
        assert!(p[5..].windows(2).all(|w| w[0] == w[1]));
        assert_ne!(p[0], p[5]);
    }

    #[test]
    fn partition_falls_back_to_round_robin_without_edges() {
        let t = Topology::new();
        let nodes = ids(5);
        assert_eq!(t.partition(&nodes, 2), vec![0, 1, 0, 1, 0]);
        // More shards than nodes clamps to one node per shard.
        assert_eq!(t.partition(&nodes[..2], 8), vec![0, 1]);
    }

    #[test]
    fn replacing_a_link_resets_its_state() {
        let mut t = Topology::new();
        t.add_link(NodeId(0), NodeId(1), LinkParams::datacenter());
        t.link_mut(NodeId(0), NodeId(1)).unwrap().state.down = true;
        t.add_link(NodeId(0), NodeId(1), LinkParams::lossy(0.5));
        let l = t.link(NodeId(0), NodeId(1)).unwrap();
        assert!(!l.state.down);
        assert_eq!(l.params.drop_prob, 0.5);
    }
}

//! Causal span telemetry: a bounded collector of phase markers that
//! cross-switch protocol layers emit against a [`TraceId`].
//!
//! Sits beside the packet [`crate::trace::Trace`] tap and the
//! [`crate::observe::NetObserver`] hook and obeys the same passivity
//! contract: the collector is written to, never read, during a run; it
//! holds no RNG, schedules no events, and every marker is stamped with
//! `SimTime` only — so attaching or detaching it cannot perturb the
//! engine's `(time, seq)` event order or its RNG stream. The determinism
//! fingerprint test (`tests/determinism.rs`) proves this bit-for-bit.
//!
//! A *span* here is a point marker, not an interval: one logical
//! operation (one `TraceId`) accumulates a time-ordered sequence of
//! markers (ingress, punt, CP dequeue, retries, chain hops, ack,
//! release), and interval durations fall out of consecutive-marker gaps.
//! Point markers telescope — the per-phase durations of a completed
//! operation always sum to exactly its end-to-end latency, which is what
//! lets `trace_explain` reconcile its breakdown against the
//! `write_latency` histogram with zero slack.

use crate::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;
use swishmem_wire::{NodeId, TraceId};

/// A phase marker within a logical operation's lifetime.
///
/// The variants mirror the SwiShmem §6 protocol steps; payload-carrying
/// variants record *which* retry / chain position fired so the explain
/// tool can attribute time to individual attempts and hops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpanPhase {
    /// NF ingress: the data packet that originated the operation arrived
    /// and the NF staged a replicated write (or redirected read).
    Ingress,
    /// The packet (plus write job) left the data plane toward the local
    /// control plane. Stamped with the CPU-arrival time (PCIe/DMA cost).
    Punt,
    /// The job reached the front of the serial CP service queue.
    CpDequeue,
    /// The CP finished admitting the job and issued its first write sends.
    JobStart,
    /// Retry attempt `n` (1-based) fired for a still-unacked write.
    Retry(u16),
    /// The write request was applied at chain position `i` (0 = head).
    ChainHop(u8),
    /// The tail acked the write (and multicast the pending-bit clear).
    Ack,
    /// The writer's CP matched the ack and released the buffered packet.
    Release,
    /// The job was shed at admission (CP overload).
    Shed,
    /// The write exhausted its retry budget and was abandoned.
    Abandon,
    /// A read hit a pending register and was redirected to the tail.
    RedirectToTail,
    /// The tail served a redirected read.
    TailServe,
    /// An EWO periodic sync round started at its originating switch.
    SyncRound,
    /// A sync batch was merged at a receiving switch.
    SyncMerge,
}

impl SpanPhase {
    /// Stable lowercase name (payload not included; see [`Self::label`]).
    pub fn name(&self) -> &'static str {
        match self {
            SpanPhase::Ingress => "ingress",
            SpanPhase::Punt => "punt",
            SpanPhase::CpDequeue => "cp_dequeue",
            SpanPhase::JobStart => "job_start",
            SpanPhase::Retry(_) => "retry",
            SpanPhase::ChainHop(_) => "chain_hop",
            SpanPhase::Ack => "ack",
            SpanPhase::Release => "release",
            SpanPhase::Shed => "shed",
            SpanPhase::Abandon => "abandon",
            SpanPhase::RedirectToTail => "redirect_to_tail",
            SpanPhase::TailServe => "tail_serve",
            SpanPhase::SyncRound => "sync_round",
            SpanPhase::SyncMerge => "sync_merge",
        }
    }

    /// Display label including the payload (`retry[2]`, `chain_hop[0]`).
    pub fn label(&self) -> String {
        match self {
            SpanPhase::Retry(n) => format!("retry[{n}]"),
            SpanPhase::ChainHop(i) => format!("chain_hop[{i}]"),
            p => p.name().to_string(),
        }
    }
}

/// One recorded marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// When the phase happened, in simulated time. May lie slightly in
    /// the future of the emitting callback (the PISA CP queue model emits
    /// `punt`/`cp_dequeue` markers at their modeled times), so consumers
    /// must sort per trace rather than assume emission order.
    pub time: SimTime,
    /// The logical operation this marker belongs to.
    pub trace: TraceId,
    /// The node the phase happened on.
    pub node: NodeId,
    /// Which phase.
    pub phase: SpanPhase,
}

/// A bounded in-memory span collector.
///
/// Mirrors [`crate::trace::Trace`]: at most `capacity` events are kept,
/// later ones are counted in `overflowed()` and discarded, so long runs
/// stay bounded.
#[derive(Debug)]
pub struct SpanCollector {
    events: Vec<SpanEvent>,
    capacity: usize,
    dropped: u64,
}

/// Shared handle to a [`SpanCollector`] (the simulator holds one side).
pub type SpanHandle = Rc<RefCell<SpanCollector>>;

impl SpanCollector {
    /// A collector keeping at most `capacity` events.
    pub fn new(capacity: usize) -> SpanHandle {
        Rc::new(RefCell::new(SpanCollector::detached(capacity)))
    }

    /// An owned (non-shared) collector. The sharded engine gives each
    /// shard core one of these; their contents are merged into the
    /// attached [`SpanHandle`] after each run.
    pub fn detached(capacity: usize) -> SpanCollector {
        SpanCollector {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Take all recorded events out of the collector, leaving it empty
    /// (the overflow counter is reset too).
    pub fn take_events(&mut self) -> Vec<SpanEvent> {
        self.dropped = 0;
        std::mem::take(&mut self.events)
    }

    /// Record one marker. Untraced markers ([`TraceId::NONE`]) are the
    /// caller's responsibility to filter (the `Ctx` helpers do).
    pub fn record(&mut self, time: SimTime, trace: TraceId, node: NodeId, phase: SpanPhase) {
        if self.events.len() < self.capacity {
            self.events.push(SpanEvent {
                time,
                trace,
                node,
                phase,
            });
        } else {
            self.dropped += 1;
        }
    }

    /// All recorded events, in emission order.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Events not recorded because the collector was full.
    pub fn overflowed(&self) -> u64 {
        self.dropped
    }

    /// Number of distinct trace ids recorded.
    pub fn trace_count(&self) -> usize {
        let mut ids: Vec<u64> = self.events.iter().map(|e| e.trace.0).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Events of one trace, sorted by time (ties keep emission order).
    pub fn by_trace(&self, trace: TraceId) -> Vec<SpanEvent> {
        let mut out: Vec<SpanEvent> = self
            .events
            .iter()
            .copied()
            .filter(|e| e.trace == trace)
            .collect();
        out.sort_by_key(|e| e.time);
        out
    }

    /// Clear all events and the overflow counter.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_filters_and_bounds() {
        let h = SpanCollector::new(3);
        let mut c = h.borrow_mut();
        let t1 = TraceId::new(NodeId(0), 1);
        let t2 = TraceId::new(NodeId(1), 1);
        c.record(SimTime(5), t1, NodeId(0), SpanPhase::Punt);
        c.record(SimTime(1), t1, NodeId(0), SpanPhase::Ingress);
        c.record(SimTime(2), t2, NodeId(1), SpanPhase::Ingress);
        c.record(SimTime(9), t2, NodeId(1), SpanPhase::Release);
        assert_eq!(c.events().len(), 3);
        assert_eq!(c.overflowed(), 1);
        assert_eq!(c.trace_count(), 2);
        // by_trace sorts by time even when emission order differed.
        let t1_events = c.by_trace(t1);
        assert_eq!(t1_events[0].phase, SpanPhase::Ingress);
        assert_eq!(t1_events[1].phase, SpanPhase::Punt);
        c.clear();
        assert!(c.events().is_empty());
        assert_eq!(c.overflowed(), 0);
    }

    #[test]
    fn labels_carry_payloads() {
        assert_eq!(SpanPhase::Retry(2).label(), "retry[2]");
        assert_eq!(SpanPhase::ChainHop(0).label(), "chain_hop[0]");
        assert_eq!(SpanPhase::Release.label(), "release");
        assert_eq!(SpanPhase::Retry(2).name(), "retry");
    }
}

//! Point-to-point link model: propagation latency, serialization delay
//! derived from bandwidth, and fault injection (loss, jitter-induced
//! reordering, corruption) in the style of smoltcp's example fault
//! injectors.

use crate::fault::LinkOverlay;
use crate::time::{SimDuration, SimTime};

/// Immutable link characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Link rate in bits per second; determines serialization delay and
    /// back-to-back queueing. `0` disables serialization modeling.
    pub bandwidth_bps: u64,
    /// Probability in [0, 1] that a frame is silently dropped.
    pub drop_prob: f64,
    /// Maximum extra random delay added per frame. Nonzero jitter lets
    /// frames overtake each other (reordering), which the SRO in-order
    /// apply rule must tolerate.
    pub jitter: SimDuration,
    /// Probability in [0, 1] that a frame arrives corrupted. Corrupted
    /// frames are delivered flagged so receivers can drop them the way a
    /// real switch drops bad-FCS frames.
    pub corrupt_prob: f64,
}

impl LinkParams {
    /// A fast, lossless data-center-style link: 100 Gbps, 1 µs one-way.
    pub fn datacenter() -> LinkParams {
        LinkParams {
            latency: SimDuration::micros(1),
            bandwidth_bps: 100_000_000_000,
            drop_prob: 0.0,
            jitter: SimDuration::ZERO,
            corrupt_prob: 0.0,
        }
    }

    /// A lossy variant of [`LinkParams::datacenter`].
    pub fn lossy(drop_prob: f64) -> LinkParams {
        LinkParams {
            drop_prob,
            ..LinkParams::datacenter()
        }
    }

    /// Builder-style: set latency.
    pub fn with_latency(mut self, latency: SimDuration) -> Self {
        self.latency = latency;
        self
    }

    /// Builder-style: set drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Builder-style: set jitter bound.
    pub fn with_jitter(mut self, j: SimDuration) -> Self {
        self.jitter = j;
        self
    }

    /// Builder-style: set bandwidth.
    pub fn with_bandwidth(mut self, bps: u64) -> Self {
        self.bandwidth_bps = bps;
        self
    }

    /// Serialization delay for a frame of `bytes` bytes.
    pub fn serialization(&self, bytes: usize) -> SimDuration {
        if self.bandwidth_bps == 0 {
            return SimDuration::ZERO;
        }
        // ns = bits * 1e9 / bps
        SimDuration::nanos((bytes as u64 * 8).saturating_mul(1_000_000_000) / self.bandwidth_bps)
    }
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams::datacenter()
    }
}

/// Mutable per-link state.
#[derive(Debug, Clone, Default)]
pub struct LinkState {
    /// Time the transmitter finishes serializing the frame currently on
    /// the wire; the next frame queues behind it.
    pub busy_until: SimTime,
    /// True while the link is administratively or physically down.
    pub down: bool,
}

/// A directed link: parameters plus live state.
#[derive(Debug, Clone)]
pub struct Link {
    /// Characteristics.
    pub params: LinkParams,
    /// Live state.
    pub state: LinkState,
    /// Pristine parameters saved by the first fault-plane degrade, restored
    /// by [`Link::restore`]. `None` while the link is undegraded.
    saved: Option<LinkParams>,
}

impl Link {
    /// Create a link with the given parameters.
    pub fn new(params: LinkParams) -> Link {
        Link {
            params,
            state: LinkState::default(),
            saved: None,
        }
    }

    /// Overlay fault parameters on this link, saving the pristine ones on
    /// the first degrade (overlapping degrades stack; restore undoes all).
    pub fn degrade(&mut self, overlay: &LinkOverlay) {
        if self.saved.is_none() {
            self.saved = Some(self.params);
        }
        self.params = overlay.apply(self.params);
    }

    /// Restore the parameters saved by the first [`Link::degrade`]; no-op
    /// on an undegraded link.
    pub fn restore(&mut self) {
        if let Some(p) = self.saved.take() {
            self.params = p;
        }
    }

    /// True while fault-plane degradation is in effect.
    pub fn is_degraded(&self) -> bool {
        self.saved.is_some()
    }

    /// Compute the arrival time of a frame of `bytes` bytes transmitted at
    /// `now` (with `jitter_extra` already sampled by the caller), updating
    /// the transmitter-busy state. Returns `None` if the link is down.
    pub fn transmit(
        &mut self,
        now: SimTime,
        bytes: usize,
        jitter_extra: SimDuration,
    ) -> Option<SimTime> {
        if self.state.down {
            return None;
        }
        let start = now.max(self.state.busy_until);
        let tx_done = start + self.params.serialization(bytes);
        self.state.busy_until = tx_done;
        Some(tx_done + self.params.latency + jitter_extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_delay() {
        let p = LinkParams::datacenter(); // 100 Gbps
                                          // 1250 bytes = 10_000 bits => 100 ns at 100 Gbps.
        assert_eq!(p.serialization(1250), SimDuration::nanos(100));
        let zero_bw = LinkParams {
            bandwidth_bps: 0,
            ..p
        };
        assert_eq!(zero_bw.serialization(1250), SimDuration::ZERO);
    }

    #[test]
    fn back_to_back_frames_queue() {
        let mut link = Link::new(LinkParams::datacenter());
        let t0 = SimTime::ZERO;
        let a1 = link.transmit(t0, 1250, SimDuration::ZERO).unwrap();
        let a2 = link.transmit(t0, 1250, SimDuration::ZERO).unwrap();
        // Second frame serializes after the first: arrives 100 ns later.
        assert_eq!(a2 - a1, SimDuration::nanos(100));
    }

    #[test]
    fn idle_link_does_not_queue() {
        let mut link = Link::new(LinkParams::datacenter());
        let a1 = link
            .transmit(SimTime::ZERO, 1250, SimDuration::ZERO)
            .unwrap();
        // Transmit long after the first finished: only latency + serialization.
        let t = SimTime(1_000_000);
        let a2 = link.transmit(t, 1250, SimDuration::ZERO).unwrap();
        assert_eq!(a2, t + SimDuration::nanos(100) + SimDuration::micros(1));
        assert!(a1 < a2);
    }

    #[test]
    fn down_link_drops() {
        let mut link = Link::new(LinkParams::datacenter());
        link.state.down = true;
        assert!(link
            .transmit(SimTime::ZERO, 100, SimDuration::ZERO)
            .is_none());
    }

    #[test]
    fn jitter_adds_delay() {
        let mut link = Link::new(LinkParams::datacenter());
        let a = link
            .transmit(SimTime::ZERO, 1250, SimDuration::nanos(37))
            .unwrap();
        assert_eq!(
            a,
            SimTime::ZERO
                + SimDuration::nanos(100)
                + SimDuration::micros(1)
                + SimDuration::nanos(37)
        );
    }
}

//! A generic sink node that records everything it receives.
//!
//! Hosts at the edge of the simulated fabric (traffic destinations, the
//! experiment harness's observation points) are `RecorderNode`s; the
//! harness keeps the shared [`Recording`] handle and inspects it after the
//! run.

use crate::ctx::Ctx;
use crate::node::Node;
use crate::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;
use swishmem_wire::Packet;

/// Shared handle to the packets a [`RecorderNode`] received.
pub type Recording = Rc<RefCell<Vec<(SimTime, Packet)>>>;

/// A node that stores every delivered packet with its arrival time.
pub struct RecorderNode {
    log: Recording,
}

impl RecorderNode {
    /// Create a recorder and the shared handle to its log.
    pub fn new() -> (RecorderNode, Recording) {
        let log: Recording = Rc::new(RefCell::new(Vec::new()));
        (RecorderNode { log: log.clone() }, log)
    }
}

impl Node for RecorderNode {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        self.log.borrow_mut().push((ctx.now(), pkt));
    }

    fn on_fail(&mut self) {
        // A failed recorder keeps its history: the harness still wants to
        // see what arrived before the failure.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkParams;
    use crate::sim::Simulator;
    use std::net::Ipv4Addr;
    use swishmem_wire::{DataPacket, FlowKey, NodeId};

    #[test]
    fn records_arrivals_with_time() {
        let mut sim = Simulator::new(1);
        let (rec, log) = RecorderNode::new();
        sim.add_node(NodeId(5), Box::new(rec));
        sim.topology_mut()
            .connect(NodeId(4), NodeId(5), LinkParams::datacenter());
        let p = Packet::data(
            NodeId(4),
            NodeId(5),
            DataPacket::udp(
                FlowKey::udp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 2),
                3,
                16,
            ),
        );
        sim.inject(SimTime(500), p.clone());
        sim.run_until_quiescent(SimTime(1_000_000));
        let log = log.borrow();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].0, SimTime(500));
        assert_eq!(log[0].1, p);
    }
}

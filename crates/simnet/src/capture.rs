//! Ingress capture tap: records externally injected packets so a run's
//! input stream can be exported as a replayable trace.
//!
//! Like the packet trace, span, and journal collectors, the tap is
//! **strictly passive**: it observes [`crate::sim::Simulator::inject`]
//! calls (the scheduled time and a clone of the packet) and never
//! touches the event queue or the engine RNG, so attaching it cannot
//! perturb a deterministic run. Capacity is bounded — once full, further
//! packets are counted as dropped rather than grown into.

use crate::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;
use swishmem_wire::Packet;

/// Shared handle to a capture buffer.
pub type CaptureHandle = Rc<RefCell<CaptureBuffer>>;

/// A bounded buffer of `(scheduled time, packet)` ingress records.
#[derive(Debug)]
pub struct CaptureBuffer {
    records: Vec<(SimTime, Packet)>,
    capacity: usize,
    dropped: u64,
}

impl CaptureBuffer {
    /// A buffer holding at most `capacity` records.
    pub fn handle(capacity: usize) -> CaptureHandle {
        Rc::new(RefCell::new(CaptureBuffer {
            records: Vec::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }))
    }

    /// Record one injected packet (called by the simulator).
    pub fn record(&mut self, t: SimTime, pkt: &Packet) {
        if self.records.len() < self.capacity {
            self.records.push((t, pkt.clone()));
        } else {
            self.dropped += 1;
        }
    }

    /// The captured records, in injection order.
    pub fn records(&self) -> &[(SimTime, Packet)] {
        &self.records
    }

    /// Records turned away after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records captured.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use swishmem_wire::{DataPacket, FlowKey, NodeId};

    fn pkt(seq: u32) -> Packet {
        Packet::data(
            NodeId(1000),
            NodeId(0),
            DataPacket::udp(
                FlowKey::udp(
                    Ipv4Addr::new(10, 0, 0, 1),
                    1000,
                    Ipv4Addr::new(20, 0, 0, 1),
                    53,
                ),
                seq,
                64,
            ),
        )
    }

    #[test]
    fn bounded_capture_counts_overflow() {
        let h = CaptureBuffer::handle(2);
        {
            let mut b = h.borrow_mut();
            b.record(SimTime(1), &pkt(0));
            b.record(SimTime(2), &pkt(1));
            b.record(SimTime(3), &pkt(2));
        }
        let b = h.borrow();
        assert_eq!(b.len(), 2);
        assert_eq!(b.dropped(), 1);
        assert_eq!(b.records()[0].0, SimTime(1));
    }
}

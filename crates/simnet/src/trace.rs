//! Packet tracing: an optional tap that records delivered frames for
//! offline inspection — the smoltcp `--pcap` idiom adapted to the
//! simulator. Traces render as human-readable text and can be filtered
//! by traffic class or endpoint.

use crate::stats::TrafficClass;
use crate::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;
use swishmem_wire::{NodeId, Packet};

/// One traced delivery.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Delivery time.
    pub time: SimTime,
    /// The delivered frame.
    pub pkt: Packet,
}

/// A bounded in-memory packet trace.
#[derive(Debug)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    capacity: usize,
    dropped: u64,
}

/// Shared handle to a [`Trace`] (the simulator holds one side).
pub type TraceHandle = Rc<RefCell<Trace>>;

impl Trace {
    /// A trace keeping at most `capacity` entries (older entries are
    /// counted but discarded once full — bounded memory for long runs).
    pub fn new(capacity: usize) -> TraceHandle {
        Rc::new(RefCell::new(Trace {
            entries: Vec::new(),
            capacity,
            dropped: 0,
        }))
    }

    /// Record a delivery.
    pub fn record(&mut self, time: SimTime, pkt: &Packet) {
        if self.entries.len() < self.capacity {
            self.entries.push(TraceEntry {
                time,
                pkt: pkt.clone(),
            });
        } else {
            self.dropped += 1;
        }
    }

    /// All recorded entries.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries not recorded because the trace was full.
    pub fn overflowed(&self) -> u64 {
        self.dropped
    }

    /// Entries matching a traffic class.
    pub fn by_class(&self, class: TrafficClass) -> Vec<&TraceEntry> {
        self.entries
            .iter()
            .filter(|e| TrafficClass::of(&e.pkt) == class)
            .collect()
    }

    /// Entries to or from a node.
    pub fn by_endpoint(&self, node: NodeId) -> Vec<&TraceEntry> {
        self.entries
            .iter()
            .filter(|e| e.pkt.src == node || e.pkt.dst == node)
            .collect()
    }

    /// Render as text, one line per frame (tcpdump-style).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!(
                "{} {} -> {} [{}] {} B {:?}\n",
                e.time,
                e.pkt.src,
                e.pkt.dst,
                class_tag(TrafficClass::of(&e.pkt)),
                e.pkt.wire_len(),
                short(&e.pkt),
            ));
        }
        if self.dropped > 0 {
            out.push_str(&format!(
                "... {} more frames not recorded (trace full)\n",
                self.dropped
            ));
        }
        out
    }

    /// Clear the trace.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.dropped = 0;
    }
}

fn class_tag(c: TrafficClass) -> &'static str {
    match c {
        TrafficClass::Data => "data",
        TrafficClass::SroWrite => "sro-write",
        TrafficClass::SroControl => "sro-ctl",
        TrafficClass::EwoSync => "ewo-sync",
        TrafficClass::Snapshot => "snapshot",
        TrafficClass::ReadForward => "read-fwd",
        TrafficClass::Migration => "migrate",
        TrafficClass::Management => "mgmt",
    }
}

fn short(pkt: &Packet) -> String {
    match &pkt.body {
        swishmem_wire::PacketBody::Data(d) => format!("{}", d.flow),
        swishmem_wire::PacketBody::Swish(m) => {
            let s = format!("{m:?}");
            s.chars().take(60).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use swishmem_wire::swish::Heartbeat;
    use swishmem_wire::{DataPacket, FlowKey, SwishMsg};

    fn data(src: u16, dst: u16) -> Packet {
        Packet::data(
            NodeId(src),
            NodeId(dst),
            DataPacket::udp(
                FlowKey::udp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 2),
                0,
                10,
            ),
        )
    }

    #[test]
    fn records_and_filters() {
        let h = Trace::new(10);
        let mut t = h.borrow_mut();
        t.record(SimTime(1), &data(0, 1));
        t.record(
            SimTime(2),
            &Packet::swish(
                NodeId(2),
                NodeId::CONTROLLER,
                SwishMsg::Heartbeat(Heartbeat {
                    from: NodeId(2),
                    epoch: 1,
                }),
            ),
        );
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.by_class(TrafficClass::Data).len(), 1);
        assert_eq!(t.by_class(TrafficClass::Management).len(), 1);
        assert_eq!(t.by_endpoint(NodeId(1)).len(), 1);
        assert_eq!(t.by_endpoint(NodeId(2)).len(), 1);
    }

    #[test]
    fn capacity_bounds_memory() {
        let h = Trace::new(2);
        let mut t = h.borrow_mut();
        for i in 0..5 {
            t.record(SimTime(i), &data(0, 1));
        }
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.overflowed(), 3);
        let text = t.render();
        assert!(text.contains("3 more frames"));
        t.clear();
        assert!(t.entries().is_empty());
        assert_eq!(t.overflowed(), 0);
    }

    /// End-to-end drop accounting: when a live engine delivers more
    /// frames than the trace capacity, every delivery is either recorded
    /// or counted as overflow — none vanish.
    #[test]
    fn engine_overflow_accounts_for_every_delivery() {
        use crate::ctx::Ctx;
        use crate::link::LinkParams;
        use crate::node::Node;
        use crate::sim::Simulator;
        use swishmem_wire::PacketBody;

        struct Echo;
        impl Node for Echo {
            fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
                if let PacketBody::Data(d) = pkt.body {
                    if d.flow_seq < 10 {
                        let mut d2 = d;
                        d2.flow_seq += 1;
                        ctx.send(pkt.src, PacketBody::Data(d2));
                    }
                }
            }
        }

        let mut sim = Simulator::new(7);
        let trace = Trace::new(4);
        sim.set_trace(trace.clone());
        sim.add_node(NodeId(0), Box::new(Echo));
        sim.add_node(NodeId(1), Box::new(Echo));
        sim.topology_mut()
            .connect(NodeId(0), NodeId(1), LinkParams::datacenter());
        sim.inject(SimTime(0), data(0, 1));
        sim.run_until_quiescent(SimTime(1_000_000_000));

        let delivered = sim.stats().delivered_total().packets;
        let t = trace.borrow();
        assert!(delivered > 4, "scenario must exceed trace capacity");
        assert_eq!(t.entries().len(), 4);
        assert_eq!(t.entries().len() as u64 + t.overflowed(), delivered);
    }

    #[test]
    fn render_is_line_per_frame() {
        let h = Trace::new(10);
        let mut t = h.borrow_mut();
        t.record(SimTime(1_000), &data(3, 4));
        let text = t.render();
        assert!(text.contains("n3 -> n4"));
        assert!(text.contains("[data]"));
        assert!(text.contains("1.1.1.1:1 -> 2.2.2.2:2"));
    }
}

//! The per-callback context handed to nodes.

use crate::journal::{JournalCollector, JournalRecord};
use crate::span::{SpanCollector, SpanPhase};
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;
use std::cell::RefCell;
use swishmem_wire::{NodeId, PacketBody, TraceId};

/// A multicast group identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u16);

/// Deferred actions a node requests during a callback; the engine applies
/// them after the callback returns (this is what makes node processing
/// atomic with respect to the rest of the simulation, mirroring PISA's
/// atomic per-packet processing guarantee).
#[derive(Debug)]
pub(crate) enum Command {
    /// Unicast a payload to another node over the configured link.
    Send { to: NodeId, body: PacketBody },
    /// Send a payload to every member of a multicast group (except the
    /// sender itself).
    Multicast { group: GroupId, body: PacketBody },
    /// Arm a one-shot timer for the calling node.
    Timer { delay: SimDuration, token: u64 },
    /// Send a payload to one uniformly-random member of a group (excluding
    /// the sender). Used by EWO's periodic sync, which forwards each
    /// update "to a randomly-selected switch in the replica group" (§7).
    SendRandom { group: GroupId, body: PacketBody },
    /// Replace a multicast group's membership. Issued by the controller
    /// when reconfiguring the replica group after failures (§6.3).
    SetGroup {
        group: GroupId,
        members: Vec<NodeId>,
    },
}

/// Context passed to every [`crate::node::Node`] callback.
pub struct Ctx<'a> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) commands: &'a mut Vec<Command>,
    /// The span sink, when one is attached. A plain `&RefCell` so both
    /// engines can supply it: the sequential simulator derefs its shared
    /// `SpanHandle` (an `Rc<RefCell<..>>`), a shard core lends its owned
    /// collector.
    pub(crate) spans: Option<&'a RefCell<SpanCollector>>,
    /// The control-plane journal sink, when one is attached. Same
    /// lending scheme as `spans`.
    pub(crate) journal: Option<&'a RefCell<JournalCollector>>,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node being called.
    #[inline]
    pub fn self_id(&self) -> NodeId {
        self.node
    }

    /// Unicast `body` to `to`. The frame is stamped with this node as
    /// source and travels the configured link (subject to its latency,
    /// bandwidth, loss and jitter). Sending to a node without a configured
    /// link counts as a no-route drop.
    pub fn send(&mut self, to: NodeId, body: PacketBody) {
        self.commands.push(Command::Send { to, body });
    }

    /// Send `body` to every current member of `group` except this node.
    /// Models the switch multicast engine: one copy per egress link.
    pub fn multicast(&mut self, group: GroupId, body: PacketBody) {
        self.commands.push(Command::Multicast { group, body });
    }

    /// Arm a one-shot timer that fires `delay` from now with `token`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.commands.push(Command::Timer { delay, token });
    }

    /// Send `body` to one uniformly-random member of `group` other than
    /// this node (the EWO periodic-sync pattern, §7).
    pub fn send_random(&mut self, group: GroupId, body: PacketBody) {
        self.commands.push(Command::SendRandom { group, body });
    }

    /// Replace `group`'s membership (controller privilege: the SDN
    /// controller owns the multicast tree).
    pub fn set_group(&mut self, group: GroupId, members: Vec<NodeId>) {
        self.commands.push(Command::SetGroup { group, members });
    }

    /// Deterministic randomness (seeded at simulator construction).
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut *self.rng
    }

    /// Emit a span phase marker for `trace` at the current time.
    ///
    /// A pure observation: the marker goes to the attached
    /// [`crate::span::SpanCollector`] (if any) and nowhere else — no
    /// event is scheduled and no RNG is consumed, so emitting spans never
    /// perturbs the deterministic event order. No-op when `trace` is
    /// [`TraceId::NONE`] or no collector is attached.
    #[inline]
    pub fn span(&mut self, trace: TraceId, phase: SpanPhase) {
        self.span_at(self.now, trace, phase);
    }

    /// Emit a span phase marker stamped with an explicit time (used by
    /// queue models that know *when* a phase will happen — e.g. the PISA
    /// CP punt path stamps `punt`/`cp_dequeue` with their modeled times).
    #[inline]
    pub fn span_at(&mut self, at: SimTime, trace: TraceId, phase: SpanPhase) {
        if trace.is_some() {
            if let Some(s) = self.spans {
                s.borrow_mut().record(at, trace, self.node, phase);
            }
        }
    }

    /// Whether a span collector is attached (lets callers skip building
    /// expensive span payloads when nobody is listening).
    #[inline]
    pub fn tracing(&self) -> bool {
        self.spans.is_some()
    }

    /// Emit a journal record stamped at the current time.
    ///
    /// A pure observation, exactly like [`Self::span`]: the record goes
    /// to the attached [`crate::journal::JournalCollector`] (if any) and
    /// nowhere else — no event is scheduled and no RNG is consumed, so
    /// journaling never perturbs the deterministic event order.
    #[inline]
    pub fn journal(&mut self, kind: u16, cause: u64, a: u64, b: u64, c: u64) {
        self.journal_at(self.now, kind, cause, a, b, c);
    }

    /// Emit a journal record stamped with an explicit time.
    #[inline]
    pub fn journal_at(&mut self, at: SimTime, kind: u16, cause: u64, a: u64, b: u64, c: u64) {
        if let Some(j) = self.journal {
            j.borrow_mut().record(JournalRecord {
                time: at,
                node: self.node,
                kind,
                cause,
                a,
                b,
                c,
            });
        }
    }

    /// Whether a journal collector is attached (lets callers skip
    /// assembling payload words when nobody is listening).
    #[inline]
    pub fn journaling(&self) -> bool {
        self.journal.is_some()
    }
}

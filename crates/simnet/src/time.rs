//! Simulated time: nanosecond-resolution instants and durations.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`; saturates at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn nanos(n: u64) -> SimDuration {
        SimDuration(n)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn micros(n: u64) -> SimDuration {
        SimDuration(n * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn millis(n: u64) -> SimDuration {
        SimDuration(n * 1_000_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn secs(n: u64) -> SimDuration {
        SimDuration(n * 1_000_000_000)
    }

    /// Duration as nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as a float number of seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration as a float number of microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Multiply by an integer factor.
    #[inline]
    pub fn times(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale() {
        assert_eq!(SimDuration::micros(2).as_nanos(), 2_000);
        assert_eq!(SimDuration::millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::millis(5);
        assert_eq!(t.nanos(), 5_000_000);
        assert_eq!((t + SimDuration::millis(5)) - t, SimDuration::millis(5));
        assert_eq!(t.since(SimTime(10_000_000)), SimDuration::ZERO); // saturating
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::secs(5).to_string(), "5.000s");
        assert_eq!(SimTime(1_500_000_000).to_string(), "1.500000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration::millis(1) < SimDuration::secs(1));
    }
}

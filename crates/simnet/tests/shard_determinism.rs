//! Determinism regression harness for the sharded PDES engine.
//!
//! Three guarantees are pinned here:
//!
//! 1. **`S = 1` is bit-exact with the sequential engine** — a single-shard
//!    [`ShardedEngine`] reproduces the legacy [`Simulator`]'s golden
//!    determinism fingerprint unchanged (same RNG stream, same event
//!    keys, same trace order).
//! 2. **Shard count is a pure performance knob** — for `S ≥ 2` the merged
//!    stats, delivery-trace hash, and observer event stream are identical
//!    for any shard count and any worker-thread count.
//! 3. **The fault plane shards cleanly** — externally scheduled fault
//!    events (including cross-shard link outages) fire at the same
//!    `SimTime` under any shard count.

use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;
use swishmem_simnet::{
    Ctx, DropReason, FaultGen, FaultSchedule, GroupId, JournalCollector, JournalHandle,
    JournalRecord, LinkParams, NetEvent, NetObserver, Node, RelayNode, ShardedEngine, SimDuration,
    SimTime, Simulator, Trace,
};
use swishmem_wire::{DataPacket, FlowKey, NodeId, Packet, PacketBody};

/// Mirrors the `Churn` node in `tests/determinism.rs`: echoes data
/// packets with a TTL, multicasts and anycasts on a re-arming timer.
/// (Span markers are omitted — span invariance has its own pinning via
/// the sequential harness; this harness pins stats/trace/observers.)
struct Churn {
    ttl: u32,
    timer_rounds: u64,
}

fn body(seq: u32, len: u16) -> PacketBody {
    PacketBody::Data(DataPacket::udp(
        FlowKey::udp(Ipv4Addr::new(10, 0, 0, 1), 5, Ipv4Addr::new(10, 0, 0, 2), 6),
        seq,
        len,
    ))
}

impl Node for Churn {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::micros(50), 1);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if let PacketBody::Data(d) = pkt.body {
            // Unconditional journal emission: a no-op unless a collector
            // is attached (the journal-invariance tests below exploit it).
            ctx.journal(
                1,
                u64::from(d.flow_seq),
                u64::from(pkt.src.0),
                u64::from(d.payload_len),
                0,
            );
            if d.flow_seq < self.ttl {
                ctx.send(pkt.src, body(d.flow_seq + 1, d.payload_len));
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        assert_eq!(token, 1);
        self.timer_rounds += 1;
        ctx.journal(2, self.timer_rounds, 0, 0, 0);
        ctx.multicast(GroupId(1), body(0, 100));
        ctx.send_random(GroupId(1), body(0, 40));
        if self.timer_rounds < 20 {
            ctx.set_timer(SimDuration::micros(75), 1);
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    events: u64,
    end_ns: u64,
    delivered_pkts: u64,
    delivered_bytes: u64,
    lost: u64,
    no_route: u64,
    node_down: u64,
    link_down: u64,
    corrupt: u64,
    trace_len: usize,
    trace_hash: u64,
}

fn fnv(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn trace_hash(trace: &Trace) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for e in trace.entries() {
        fnv(&mut h, e.time.nanos());
        fnv(&mut h, u64::from(e.pkt.src.0));
        fnv(&mut h, u64::from(e.pkt.dst.0));
        fnv(&mut h, e.pkt.wire_len() as u64);
        if let PacketBody::Data(d) = &e.pkt.body {
            fnv(&mut h, u64::from(d.flow_seq));
            fnv(&mut h, u64::from(d.payload_len));
        }
    }
    h
}

/// Flattened observer log, comparable across runs.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Obs {
    Delivered(u64, u16, u16, u16, usize),
    NodeFailed(u64, u16),
    NodeRecovered(u64, u16),
    LinkChanged(u64, u16, u16, bool),
    LinkDegraded(u64, u16, u16),
    LinkRestored(u64, u16, u16),
}

#[derive(Default)]
struct Collector {
    log: Vec<Obs>,
}

impl NetObserver for Collector {
    fn on_net_event(&mut self, now: SimTime, ev: &NetEvent<'_>) {
        let t = now.nanos();
        self.log.push(match *ev {
            NetEvent::Delivered { to, pkt } => {
                Obs::Delivered(t, to.0, pkt.src.0, pkt.dst.0, pkt.wire_len())
            }
            NetEvent::NodeFailed { node } => Obs::NodeFailed(t, node.0),
            NetEvent::NodeRecovered { node } => Obs::NodeRecovered(t, node.0),
            NetEvent::LinkChanged { a, b, down } => Obs::LinkChanged(t, a.0, b.0, down),
            NetEvent::LinkDegraded { a, b } => Obs::LinkDegraded(t, a.0, b.0),
            NetEvent::LinkRestored { a, b } => Obs::LinkRestored(t, a.0, b.0),
        });
    }
}

// ---------------------------------------------------------------------
// Scenario A: the sequential harness's Churn scenario, run through the
// sharded engine. Single-shard mode must reproduce the golden values.
// ---------------------------------------------------------------------

enum EngineUnderTest {
    Legacy,
    Sharded(usize),
}

fn run_churn(seed: u64, engine: EngineUnderTest, faults: Option<&FaultSchedule>) -> Fingerprint {
    run_churn_full(seed, engine, faults, None)
}

fn run_churn_full(
    seed: u64,
    engine: EngineUnderTest,
    faults: Option<&FaultSchedule>,
    journal: Option<JournalHandle>,
) -> Fingerprint {
    let ids: Vec<NodeId> = (0..5).map(NodeId).collect();
    let trace = Trace::new(200_000);
    let params = LinkParams::lossy(0.08).with_jitter(SimDuration::micros(2));
    let inject_all = |f: &mut dyn FnMut(SimTime, Packet)| {
        for i in 0..200u64 {
            let src = NodeId((i % 5) as u16);
            let dst = NodeId(((i + 1) % 5) as u16);
            f(
                SimTime(i * 7_000),
                Packet::data(
                    src,
                    dst,
                    DataPacket::udp(
                        FlowKey::udp(
                            Ipv4Addr::new(10, 0, 0, 1),
                            (100 + i) as u16,
                            Ipv4Addr::new(10, 0, 0, 2),
                            6,
                        ),
                        0,
                        64,
                    ),
                ),
            );
        }
    };

    match engine {
        EngineUnderTest::Legacy => {
            let mut sim = Simulator::new(seed);
            sim.set_trace(trace.clone());
            if let Some(j) = journal {
                sim.set_journal(j);
            }
            for &id in &ids {
                sim.add_node(
                    id,
                    Box::new(Churn {
                        ttl: 6,
                        timer_rounds: 0,
                    }),
                );
            }
            sim.topology_mut().full_mesh(&ids, params);
            sim.topology_mut().set_group(GroupId(1), ids.clone());
            inject_all(&mut |t, p| sim.inject(t, p));
            sim.schedule_fail(SimTime(300_000), NodeId(2));
            sim.schedule_recover(SimTime(900_000), NodeId(2));
            sim.schedule_link_set(SimTime(400_000), NodeId(0), NodeId(1), true);
            sim.schedule_link_set(SimTime(1_000_000), NodeId(0), NodeId(1), false);
            if let Some(sched) = faults {
                sim.schedule_faults(SimTime::ZERO, sched);
            }
            sim.run_until_quiescent(SimTime(30_000_000));
            let s = sim.stats();
            Fingerprint {
                events: sim.events_processed(),
                end_ns: sim.now().nanos(),
                delivered_pkts: s.delivered_total().packets,
                delivered_bytes: s.delivered_total().bytes,
                lost: s.dropped(DropReason::Loss).packets,
                no_route: s.dropped(DropReason::NoRoute).packets,
                node_down: s.dropped(DropReason::NodeDown).packets,
                link_down: s.dropped(DropReason::LinkDown).packets,
                corrupt: s.dropped(DropReason::Corrupt).packets,
                trace_len: trace.borrow().entries().len(),
                trace_hash: trace_hash(&trace.borrow()),
            }
        }
        EngineUnderTest::Sharded(shards) => {
            let mut sim = ShardedEngine::new(seed, shards);
            sim.set_trace(trace.clone());
            if let Some(j) = journal {
                sim.set_journal(j);
            }
            for &id in &ids {
                sim.add_node(
                    id,
                    Box::new(Churn {
                        ttl: 6,
                        timer_rounds: 0,
                    }),
                );
            }
            sim.topology_mut().full_mesh(&ids, params);
            sim.topology_mut().set_group(GroupId(1), ids.clone());
            inject_all(&mut |t, p| sim.inject(t, p));
            sim.schedule_fail(SimTime(300_000), NodeId(2));
            sim.schedule_recover(SimTime(900_000), NodeId(2));
            sim.schedule_link_set(SimTime(400_000), NodeId(0), NodeId(1), true);
            sim.schedule_link_set(SimTime(1_000_000), NodeId(0), NodeId(1), false);
            if let Some(sched) = faults {
                sim.schedule_faults(SimTime::ZERO, sched);
            }
            sim.run_until_quiescent(SimTime(30_000_000));
            let s = sim.stats();
            Fingerprint {
                events: sim.events_processed(),
                end_ns: sim.now().nanos(),
                delivered_pkts: s.delivered_total().packets,
                delivered_bytes: s.delivered_total().bytes,
                lost: s.dropped(DropReason::Loss).packets,
                no_route: s.dropped(DropReason::NoRoute).packets,
                node_down: s.dropped(DropReason::NodeDown).packets,
                link_down: s.dropped(DropReason::LinkDown).packets,
                corrupt: s.dropped(DropReason::Corrupt).packets,
                trace_len: trace.borrow().entries().len(),
                trace_hash: trace_hash(&trace.borrow()),
            }
        }
    }
}

/// The single-shard sharded engine must reproduce the sequential
/// engine's golden fingerprint bit-for-bit — same constants as
/// `determinism::matches_pre_optimization_golden_fingerprint`.
#[test]
fn single_shard_matches_golden_fingerprint() {
    let got = run_churn(1234, EngineUnderTest::Sharded(1), None);
    println!("fingerprint: {got:?}");
    let golden = Fingerprint {
        events: 3290,
        end_ns: 2_086_870,
        delivered_pkts: 3115,
        delivered_bytes: 386_866,
        lost: 240,
        no_route: 0,
        node_down: 70,
        link_down: 38,
        corrupt: 0,
        trace_len: 3115,
        trace_hash: 11_977_170_304_909_245_025,
    };
    assert_eq!(got, golden, "single-shard mode diverged from the golden");
}

/// Field-by-field equality against a live `Simulator` run, with a
/// generated fault schedule layered on to also cover the fault plane.
#[test]
fn single_shard_matches_legacy_simulator_under_faults() {
    let ids: Vec<NodeId> = (0..5).map(NodeId).collect();
    let links: Vec<(NodeId, NodeId)> = (0..5u16)
        .flat_map(|i| ((i + 1)..5).map(move |j| (NodeId(i), NodeId(j))))
        .collect();
    let sched = FaultGen::new(99).generate(&ids, &links, SimDuration::millis(2), 5);
    assert!(!sched.is_empty());
    for seed in [1234u64, 4321, 7] {
        let legacy = run_churn(seed, EngineUnderTest::Legacy, Some(&sched));
        let sharded = run_churn(seed, EngineUnderTest::Sharded(1), Some(&sched));
        assert_eq!(legacy, sharded, "seed {seed}: S=1 diverged from Simulator");
    }
}

/// Attaching the flight-recorder journal to a single-shard run must be
/// invisible: the golden fingerprint — the same constants as the
/// sequential harness — must not move by a bit, while the collector
/// fills with one kind-1 record per delivered packet.
#[test]
fn single_shard_journal_attach_matches_golden_fingerprint() {
    let journal = JournalCollector::new(1_000_000);
    let attached = run_churn_full(
        1234,
        EngineUnderTest::Sharded(1),
        None,
        Some(journal.clone()),
    );
    let detached = run_churn(1234, EngineUnderTest::Sharded(1), None);
    assert_eq!(
        attached, detached,
        "attaching the journal perturbed the single-shard run"
    );
    assert_eq!(attached.trace_hash, 11_977_170_304_909_245_025);
    let j = journal.borrow();
    assert!(!j.records().is_empty());
    assert_eq!(j.overflowed(), 0);
    let ingress = j.records().iter().filter(|r| r.kind == 1).count() as u64;
    assert_eq!(ingress, attached.delivered_pkts);
}

/// The journal record stream is shard-count invariant for S >= 2 (like
/// stats and traces, per guarantee 2 — S = 1 is its own RNG-partitioning
/// regime, pinned against the golden above): S = 2 and S = 4 attached
/// runs produce the same fingerprint and — after canonical full-field
/// ordering — the identical record stream, and attaching at S >= 2 is
/// just as passive as at S = 1.
#[test]
fn journal_is_shard_count_invariant() {
    let canonical = |shards: usize| -> (Fingerprint, Vec<JournalRecord>) {
        let journal = JournalCollector::new(1_000_000);
        let fp = run_churn_full(
            1234,
            EngineUnderTest::Sharded(shards),
            None,
            Some(journal.clone()),
        );
        let mut recs = journal.borrow().records().to_vec();
        // Multi-shard drains merge per-shard sinks in full-field order;
        // sort both streams to that canonical order before comparing.
        recs.sort();
        (fp, recs)
    };
    let (fp2, rec2) = canonical(2);
    let (fp4, rec4) = canonical(4);
    assert_eq!(fp2, fp4, "S=4 attached fingerprint diverged from S=2");
    assert_eq!(
        fp2,
        run_churn(1234, EngineUnderTest::Sharded(2), None),
        "attaching the journal perturbed the 2-shard run"
    );
    assert!(!rec2.is_empty());
    assert_eq!(
        rec2, rec4,
        "journal record stream diverged across shard counts"
    );
}

// ---------------------------------------------------------------------
// Scenario B: a 16-leaf / 4-spine leaf-spine fabric with relay spines,
// churning leaves, and a generated fault sweep. Used to pin shard-count
// and worker-count invariance for S >= 2.
// ---------------------------------------------------------------------

const LEAVES: u16 = 16;
const SPINES: u16 = 4;
const SPINE_BASE: u16 = 500;

fn leaf_spine_links() -> Vec<(NodeId, NodeId)> {
    (0..LEAVES)
        .flat_map(|l| (0..SPINES).map(move |s| (NodeId(l), NodeId(SPINE_BASE + s))))
        .collect()
}

struct LeafSpineRun {
    fp: Fingerprint,
    obs: Vec<Obs>,
}

fn run_leaf_spine(
    seed: u64,
    shards: usize,
    workers: usize,
    faults: &FaultSchedule,
) -> LeafSpineRun {
    let mut sim = ShardedEngine::new(seed, shards);
    sim.set_workers(workers);
    let trace = Trace::new(500_000);
    sim.set_trace(trace.clone());
    let collector = Rc::new(RefCell::new(Collector::default()));
    sim.add_observer(collector.clone());

    let leaves: Vec<NodeId> = (0..LEAVES).map(NodeId).collect();
    for &id in &leaves {
        sim.add_node(
            id,
            Box::new(Churn {
                ttl: 4,
                timer_rounds: 0,
            }),
        );
    }
    for s in 0..SPINES {
        sim.add_node(NodeId(SPINE_BASE + s), Box::new(RelayNode));
    }

    let params = LinkParams::lossy(0.05)
        .with_latency(SimDuration::micros(5))
        .with_jitter(SimDuration::micros(1));
    {
        let topo = sim.topology_mut();
        for &(l, s) in &leaf_spine_links() {
            topo.connect(l, s, params);
        }
        // Static ECMP-style spine choice per leaf pair.
        for a in 0..LEAVES {
            for b in 0..LEAVES {
                if a != b {
                    let spine = NodeId(SPINE_BASE + (a.wrapping_mul(31).wrapping_add(b)) % SPINES);
                    topo.set_route(NodeId(a), NodeId(b), spine);
                }
            }
        }
        topo.set_group(GroupId(1), leaves.clone());
    }

    for i in 0..400u64 {
        let src = NodeId((i % u64::from(LEAVES)) as u16);
        let dst = NodeId(((i * 7 + 3) % u64::from(LEAVES)) as u16);
        if src == dst {
            continue;
        }
        sim.inject(
            SimTime(i * 3_000),
            Packet::data(
                src,
                dst,
                DataPacket::udp(
                    FlowKey::udp(
                        Ipv4Addr::new(10, 0, 0, 1),
                        (1 + (i % 4000)) as u16,
                        Ipv4Addr::new(10, 0, 0, 2),
                        6,
                    ),
                    0,
                    64,
                ),
            ),
        );
    }
    sim.schedule_faults(SimTime::ZERO, faults);
    sim.run_until_quiescent(SimTime(20_000_000));

    let s = sim.stats();
    let fp = Fingerprint {
        events: sim.events_processed(),
        end_ns: sim.now().nanos(),
        delivered_pkts: s.delivered_total().packets,
        delivered_bytes: s.delivered_total().bytes,
        lost: s.dropped(DropReason::Loss).packets,
        no_route: s.dropped(DropReason::NoRoute).packets,
        node_down: s.dropped(DropReason::NodeDown).packets,
        link_down: s.dropped(DropReason::LinkDown).packets,
        corrupt: s.dropped(DropReason::Corrupt).packets,
        trace_len: trace.borrow().entries().len(),
        trace_hash: trace_hash(&trace.borrow()),
    };
    let obs = collector.borrow().log.clone();
    LeafSpineRun { fp, obs }
}

fn sweep_schedule() -> FaultSchedule {
    let mut nodes: Vec<NodeId> = (0..LEAVES).map(NodeId).collect();
    nodes.extend((0..SPINES).map(|s| NodeId(SPINE_BASE + s)));
    FaultGen::new(77).generate(&nodes, &leaf_spine_links(), SimDuration::millis(5), 6)
}

/// Stats, trace hash, and the full observer event stream must be
/// identical for S = 2, 4, 8 on the fault-swept leaf-spine fabric.
#[test]
fn shard_count_is_a_pure_performance_knob() {
    let sched = sweep_schedule();
    assert!(!sched.is_empty());
    let base = run_leaf_spine(42, 2, 1, &sched);
    assert!(
        base.fp.delivered_pkts > 0,
        "scenario should deliver traffic"
    );
    assert!(!base.obs.is_empty(), "observers should see events");
    for shards in [4usize, 8] {
        let got = run_leaf_spine(42, shards, 1, &sched);
        assert_eq!(base.fp, got.fp, "S={shards} fingerprint diverged from S=2");
        assert_eq!(
            base.obs, got.obs,
            "S={shards} observer stream diverged from S=2"
        );
    }
}

/// Worker-thread count must be invisible: S = 4 with 1, 2, and 4 workers
/// produces identical output (the parallel barrier loop vs the
/// sequential window loop).
#[test]
fn worker_count_is_invisible() {
    let sched = sweep_schedule();
    let base = run_leaf_spine(42, 4, 1, &sched);
    for workers in [2usize, 4] {
        let got = run_leaf_spine(42, 4, workers, &sched);
        assert_eq!(base.fp, got.fp, "workers={workers} diverged");
        assert_eq!(
            base.obs, got.obs,
            "workers={workers} observer stream diverged"
        );
    }
}

/// A cross-shard `link_outage` from a `FaultSchedule` must fire at the
/// identical `SimTime` in 1-shard and 8-shard runs, and be observed
/// exactly once per transition.
#[test]
fn cross_shard_link_outage_fires_at_identical_time() {
    let sched = FaultSchedule::new().link_outage(
        NodeId(0),
        NodeId(1),
        SimDuration::micros(400),
        SimDuration::micros(600),
    );

    let run = |shards: usize| -> Vec<Obs> {
        let mut sim = ShardedEngine::new(9, shards);
        let collector = Rc::new(RefCell::new(Collector::default()));
        sim.add_observer(collector.clone());
        let ids: Vec<NodeId> = (0..8).map(NodeId).collect();
        for &id in &ids {
            sim.add_node(
                id,
                Box::new(Churn {
                    ttl: 3,
                    timer_rounds: 0,
                }),
            );
            // Pin node i to shard i (mod shards): nodes 0 and 1 land on
            // different shards whenever shards > 1.
            sim.assign_shard(id, id.0 as u32 % shards as u32);
        }
        sim.topology_mut().full_mesh(
            &ids,
            LinkParams::datacenter().with_latency(SimDuration::micros(3)),
        );
        sim.topology_mut().set_group(GroupId(1), ids.clone());
        sim.schedule_faults(SimTime::ZERO, &sched);
        sim.run_until_quiescent(SimTime(5_000_000));
        if shards == 8 {
            assert_ne!(
                sim.shard_of(NodeId(0)),
                sim.shard_of(NodeId(1)),
                "test precondition: the outage must span shards"
            );
        }
        let changes: Vec<Obs> = collector
            .borrow()
            .log
            .iter()
            .filter(|o| matches!(o, Obs::LinkChanged(..)))
            .cloned()
            .collect();
        changes
    };

    let one = run(1);
    let eight = run(8);
    assert_eq!(
        one,
        vec![
            Obs::LinkChanged(400_000, 0, 1, true),
            Obs::LinkChanged(1_000_000, 0, 1, false),
        ],
        "1-shard run: outage transitions at the scheduled times"
    );
    assert_eq!(
        one, eight,
        "link outage timing must be identical in 1-shard and 8-shard runs"
    );
}

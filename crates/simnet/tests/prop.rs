//! Property tests for the simulator: determinism across replays, event
//! ordering, and conservation of packets (delivered + dropped = sent).

use proptest::prelude::*;
use std::net::Ipv4Addr;
use swishmem_simnet::{Ctx, DropReason, LinkParams, Node, SimDuration, SimTime, Simulator};
use swishmem_wire::{DataPacket, FlowKey, NodeId, Packet, PacketBody};

/// Forwards every packet to a fixed next hop, decrementing a TTL carried
/// in flow_seq.
struct Hop {
    next: NodeId,
}
impl Node for Hop {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if let PacketBody::Data(d) = pkt.body {
            if d.flow_seq > 0 {
                let mut d2 = d;
                d2.flow_seq -= 1;
                ctx.send(self.next, PacketBody::Data(d2));
            }
        }
    }
}

fn pkt(dst: u16, ttl: u32) -> Packet {
    Packet::data(
        NodeId(100),
        NodeId(dst),
        DataPacket::udp(
            FlowKey::udp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 2),
            ttl,
            64,
        ),
    )
}

fn build(seed: u64, loss: f64, jitter_us: u64, n: u16) -> Simulator {
    let mut sim = Simulator::new(seed);
    for i in 0..n {
        sim.add_node(
            NodeId(i),
            Box::new(Hop {
                next: NodeId((i + 1) % n),
            }),
        );
    }
    let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
    sim.topology_mut().full_mesh(
        &ids,
        LinkParams::lossy(loss).with_jitter(SimDuration::micros(jitter_us)),
    );
    sim
}

fn fingerprint(sim: &Simulator) -> (u64, u64, u64, u64) {
    let st = sim.stats();
    (
        st.delivered_total().packets,
        st.delivered_total().bytes,
        st.dropped(DropReason::Loss).packets,
        sim.events_processed(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The determinism contract: identical seeds + schedules replay to
    /// identical statistics, under any fault parameters.
    #[test]
    fn identical_runs_identical_stats(
        seed in any::<u64>(),
        loss in prop::sample::select(vec![0.0, 0.1, 0.35]),
        jitter in 0u64..20,
        injections in prop::collection::vec((0u16..4, 1u32..30, 0u64..1_000_000), 1..40),
    ) {
        let run = || {
            let mut sim = build(seed, loss, jitter, 4);
            for &(dst, ttl, at) in &injections {
                sim.inject(SimTime(at), pkt(dst, ttl));
            }
            sim.run_until_quiescent(SimTime(10_000_000_000));
            fingerprint(&sim)
        };
        prop_assert_eq!(run(), run());
    }

    /// Without loss or node failures, every hop either delivers or the
    /// TTL expires: total deliveries equal the sum of TTLs + injections.
    #[test]
    fn lossless_delivery_is_conserved(
        injections in prop::collection::vec((0u16..3, 1u32..20, 0u64..100_000), 1..20),
    ) {
        let mut sim = build(1, 0.0, 0, 3);
        let mut expected = 0u64;
        for &(dst, ttl, at) in &injections {
            sim.inject(SimTime(at), pkt(dst, ttl));
            expected += u64::from(ttl) + 1; // injection + ttl forwards
        }
        sim.run_until_quiescent(SimTime(100_000_000_000));
        prop_assert_eq!(sim.stats().delivered_total().packets, expected);
        prop_assert_eq!(sim.stats().dropped(DropReason::Loss).packets, 0);
    }

    /// Under loss, delivered + lost = attempted (conservation): nothing
    /// vanishes unaccounted.
    #[test]
    fn lossy_delivery_accounts_for_everything(
        seed in any::<u64>(),
        injections in prop::collection::vec((0u16..3, 1u32..20, 0u64..100_000), 1..20),
    ) {
        let mut sim = build(seed, 0.25, 0, 3);
        for &(dst, ttl, at) in &injections {
            sim.inject(SimTime(at), pkt(dst, ttl));
        }
        sim.run_until_quiescent(SimTime(100_000_000_000));
        let delivered = sim.stats().delivered_total().packets;
        let lost = sim.stats().dropped(DropReason::Loss).packets;
        // Each delivered non-expired packet attempts exactly one send;
        // every attempt is delivered or lost. Injections are delivered
        // directly. So: attempts = delivered_with_ttl>0 = (delivered +
        // lost) - injections ... the closed form reduces to:
        let injected = injections.len() as u64;
        // every delivery except TTL-0 ones generates one send attempt
        // that must be delivered or lost later; the run is quiescent, so:
        prop_assert!(delivered + lost >= injected);
        // And no other drop reasons occurred.
        prop_assert_eq!(sim.stats().dropped(DropReason::NoRoute).packets, 0);
        prop_assert_eq!(sim.stats().dropped(DropReason::NodeDown).packets, 0);
    }

    /// Simulated time never runs backwards across any schedule.
    #[test]
    fn time_is_monotone(
        injections in prop::collection::vec((0u16..3, 1u32..10, 0u64..1_000_000), 1..20),
        checkpoints in prop::collection::vec(1u64..2_000_000, 1..10),
    ) {
        let mut sim = build(3, 0.1, 5, 3);
        for &(dst, ttl, at) in &injections {
            sim.inject(SimTime(at), pkt(dst, ttl));
        }
        let mut sorted = checkpoints.clone();
        sorted.sort_unstable();
        let mut last = SimTime::ZERO;
        for cp in sorted {
            sim.run_until(SimTime(cp));
            prop_assert!(sim.now() >= last);
            prop_assert!(sim.now() >= SimTime(cp));
            last = sim.now();
        }
    }
}

//! Determinism regression harness for the event core.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Replay determinism** — the same seed and scenario produce
//!    bit-identical stats, event counts, and delivery traces on every
//!    run.
//! 2. **Optimization stability** — the fingerprint equals a golden value
//!    recorded before the zero-copy/indexed-event-core rework, proving
//!    the optimization did not perturb `(time, seq)` ordering, RNG draw
//!    sites, or delivery behaviour.
//!
//! If an intentional semantic change (new RNG draw site, different event
//! ordering) breaks the golden values, re-record them by running this
//! test with `--nocapture` and copying the printed fingerprint — and say
//! so in the PR, because it resets the determinism baseline.
//!
//! The golden has survived, unchanged, the fault plane (PR 2), span
//! telemetry (PR 4), and the live-reconfiguration engine: higher-layer
//! subsystems must ride on existing engine primitives without adding
//! draw sites or reordering events. The protocol-level counterpart
//! (reconfig compiled in but disabled is invisible on chain-only
//! deployments) lives in the workspace test
//! `reconfig::reconfig_disabled_is_invisible_without_partitioned_registers`.

use std::net::Ipv4Addr;
use swishmem_simnet::{
    Ctx, DropReason, FaultGen, FaultSchedule, GroupId, JournalCollector, JournalHandle, LinkParams,
    Node, SimDuration, SimTime, Simulator, SpanCollector, SpanHandle, SpanPhase, Trace,
};
use swishmem_wire::{DataPacket, FlowKey, NodeId, Packet, PacketBody, TraceId};

/// A node that exercises every command the engine offers: echoes data
/// packets, multicasts on a timer, anycasts to a random group member,
/// and keeps re-arming its timer.
struct Churn {
    ttl: u32,
    timer_rounds: u64,
}

fn body(seq: u32, len: u16) -> PacketBody {
    PacketBody::Data(DataPacket::udp(
        FlowKey::udp(Ipv4Addr::new(10, 0, 0, 1), 5, Ipv4Addr::new(10, 0, 0, 2), 6),
        seq,
        len,
    ))
}

impl Node for Churn {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::micros(50), 1);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if let PacketBody::Data(d) = pkt.body {
            // Unconditional span emission: a no-op unless a collector is
            // attached, which the spanned-fingerprint test exploits.
            ctx.span(
                TraceId::new(ctx.self_id(), u64::from(d.flow_seq) + 1),
                SpanPhase::Ingress,
            );
            // Likewise unconditional journal emission: a no-op unless a
            // collector is attached (the journal-invariance tests below).
            ctx.journal(
                1,
                u64::from(d.flow_seq),
                u64::from(pkt.src.0),
                u64::from(d.payload_len),
                0,
            );
            if d.flow_seq < self.ttl {
                ctx.send(pkt.src, body(d.flow_seq + 1, d.payload_len));
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        assert_eq!(token, 1);
        self.timer_rounds += 1;
        ctx.span(
            TraceId::new(ctx.self_id(), 1_000 + self.timer_rounds),
            SpanPhase::SyncRound,
        );
        ctx.journal(2, self.timer_rounds, 0, 0, 0);
        ctx.multicast(GroupId(1), body(0, 100));
        ctx.send_random(GroupId(1), body(0, 40));
        if self.timer_rounds < 20 {
            ctx.set_timer(SimDuration::micros(75), 1);
        }
    }
}

/// The full scenario fingerprint: aggregate stats plus an FNV-1a hash of
/// the complete delivery trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fingerprint {
    events: u64,
    end_ns: u64,
    delivered_pkts: u64,
    delivered_bytes: u64,
    lost: u64,
    no_route: u64,
    node_down: u64,
    link_down: u64,
    corrupt: u64,
    trace_len: usize,
    trace_hash: u64,
}

fn fnv(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn run_scenario(seed: u64) -> Fingerprint {
    run_scenario_full(seed, None, None, None)
}

fn run_scenario_with(seed: u64, faults: Option<&FaultSchedule>) -> Fingerprint {
    run_scenario_full(seed, faults, None, None)
}

fn run_scenario_full(
    seed: u64,
    faults: Option<&FaultSchedule>,
    spans: Option<SpanHandle>,
    journal: Option<JournalHandle>,
) -> Fingerprint {
    let mut sim = Simulator::new(seed);
    let trace = Trace::new(200_000);
    sim.set_trace(trace.clone());
    if let Some(s) = spans {
        sim.set_spans(s);
    }
    if let Some(j) = journal {
        sim.set_journal(j);
    }

    for i in 0..5u16 {
        sim.add_node(
            NodeId(i),
            Box::new(Churn {
                ttl: 6,
                timer_rounds: 0,
            }),
        );
    }
    let ids: Vec<NodeId> = (0..5).map(NodeId).collect();
    sim.topology_mut().full_mesh(
        &ids,
        LinkParams::lossy(0.08).with_jitter(SimDuration::micros(2)),
    );
    sim.topology_mut().set_group(GroupId(1), ids.clone());

    // External traffic, a fail/recover cycle, and a link outage all mixed
    // into the same run.
    for i in 0..200u64 {
        let src = NodeId((i % 5) as u16);
        let dst = NodeId(((i + 1) % 5) as u16);
        sim.inject(
            SimTime(i * 7_000),
            Packet::data(
                src,
                dst,
                DataPacket::udp(
                    FlowKey::udp(
                        Ipv4Addr::new(10, 0, 0, 1),
                        (100 + i) as u16,
                        Ipv4Addr::new(10, 0, 0, 2),
                        6,
                    ),
                    0,
                    64,
                ),
            ),
        );
    }
    sim.schedule_fail(SimTime(300_000), NodeId(2));
    sim.schedule_recover(SimTime(900_000), NodeId(2));
    sim.schedule_link_set(SimTime(400_000), NodeId(0), NodeId(1), true);
    sim.schedule_link_set(SimTime(1_000_000), NodeId(0), NodeId(1), false);
    if let Some(sched) = faults {
        sim.schedule_faults(SimTime::ZERO, sched);
    }

    sim.run_until_quiescent(SimTime(30_000_000));

    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for e in trace.borrow().entries() {
        fnv(&mut h, e.time.nanos());
        fnv(&mut h, u64::from(e.pkt.src.0));
        fnv(&mut h, u64::from(e.pkt.dst.0));
        fnv(&mut h, e.pkt.wire_len() as u64);
        if let PacketBody::Data(d) = &e.pkt.body {
            fnv(&mut h, u64::from(d.flow_seq));
            fnv(&mut h, u64::from(d.payload_len));
        }
    }

    let trace_len = trace.borrow().entries().len();
    let s = sim.stats();
    Fingerprint {
        events: sim.events_processed(),
        end_ns: sim.now().nanos(),
        delivered_pkts: s.delivered_total().packets,
        delivered_bytes: s.delivered_total().bytes,
        lost: s.dropped(DropReason::Loss).packets,
        no_route: s.dropped(DropReason::NoRoute).packets,
        node_down: s.dropped(DropReason::NodeDown).packets,
        link_down: s.dropped(DropReason::LinkDown).packets,
        corrupt: s.dropped(DropReason::Corrupt).packets,
        trace_len,
        trace_hash: h,
    }
}

#[test]
fn same_seed_is_bit_identical() {
    let a = run_scenario(1234);
    let b = run_scenario(1234);
    assert_eq!(a, b, "identical seeds must replay identically");
}

#[test]
fn different_seeds_diverge() {
    let a = run_scenario(1234);
    let b = run_scenario(4321);
    assert_ne!(
        a.trace_hash, b.trace_hash,
        "distinct seeds should produce distinct delivery patterns"
    );
}

#[test]
fn matches_pre_optimization_golden_fingerprint() {
    let got = run_scenario(1234);
    println!("fingerprint: {got:?}");
    // Recorded on the engine before the zero-copy/indexed rework
    // (HashMap node table, BinaryHeap<Reverse<Event>>, per-member body
    // clones). The optimized engine must reproduce it exactly.
    let golden = Fingerprint {
        events: 3290,
        end_ns: 2_086_870,
        delivered_pkts: 3115,
        delivered_bytes: 386_866,
        lost: 240,
        no_route: 0,
        node_down: 70,
        link_down: 38,
        corrupt: 0,
        trace_len: 3115,
        trace_hash: 11_977_170_304_909_245_025,
    };
    assert_eq!(got, golden, "event order / RNG draw sites changed");
}

#[test]
fn fault_schedule_replays_bit_for_bit() {
    // A generated schedule layered on the same scenario: identical seed +
    // identical schedule must reproduce exactly, and the schedule must
    // actually perturb the run relative to the no-fault golden.
    let ids: Vec<NodeId> = (0..5).map(NodeId).collect();
    let links: Vec<(NodeId, NodeId)> = (0..5u16)
        .flat_map(|i| ((i + 1)..5).map(move |j| (NodeId(i), NodeId(j))))
        .collect();
    let sched = FaultGen::new(99).generate(&ids, &links, SimDuration::millis(2), 5);
    assert!(!sched.is_empty(), "seed 99 should generate faults\n{sched}");

    let a = run_scenario_with(1234, Some(&sched));
    let b = run_scenario_with(1234, Some(&sched));
    assert_eq!(
        a, b,
        "same seed + same FaultSchedule must replay bit-for-bit\n{sched}"
    );

    let clean = run_scenario(1234);
    assert_ne!(
        a.trace_hash, clean.trace_hash,
        "the schedule should perturb the run\n{sched}"
    );
}

#[test]
fn empty_fault_schedule_is_a_no_op() {
    let empty = FaultSchedule::new();
    let a = run_scenario_with(1234, Some(&empty));
    let clean = run_scenario(1234);
    assert_eq!(a, clean, "an empty schedule must not perturb the run");
}

/// Attaching a span collector must be invisible to the run: the nodes
/// emit `ctx.span(..)` markers on every packet and timer either way, and
/// the fingerprint — including the golden one — must not move by a bit.
#[test]
fn span_collector_attach_is_invisible() {
    let spans = SpanCollector::new(1_000_000);
    let attached = run_scenario_full(1234, None, Some(spans.clone()), None);
    let detached = run_scenario(1234);
    assert_eq!(
        attached, detached,
        "attaching the span collector perturbed the event order"
    );

    let c = spans.borrow();
    assert!(
        !c.events().is_empty(),
        "the scenario should have recorded spans while attached"
    );
    assert_eq!(c.overflowed(), 0);
    // Every delivered data packet records exactly one ingress marker.
    let ingress = c
        .events()
        .iter()
        .filter(|e| e.phase == SpanPhase::Ingress)
        .count() as u64;
    assert_eq!(ingress, attached.delivered_pkts);
    assert!(c.trace_count() > 5, "expected many distinct trace ids");
}

/// A tiny span collector must bound memory and count the overflow, while
/// still not perturbing the run.
#[test]
fn span_collector_overflow_is_counted_and_passive() {
    let spans = SpanCollector::new(16);
    let attached = run_scenario_full(1234, None, Some(spans.clone()), None);
    assert_eq!(attached, run_scenario(1234));
    let c = spans.borrow();
    assert_eq!(c.events().len(), 16);
    assert!(c.overflowed() > 0);
}

/// Attaching the flight-recorder journal must be invisible to the run:
/// the nodes emit `ctx.journal(..)` on every packet and timer either
/// way, and the fingerprint — including the golden one — must not move
/// by a bit. The journal-only counterpart of
/// `span_collector_attach_is_invisible`.
#[test]
fn journal_collector_attach_is_invisible() {
    let journal = JournalCollector::new(1_000_000);
    let attached = run_scenario_full(1234, None, None, Some(journal.clone()));
    let detached = run_scenario(1234);
    assert_eq!(
        attached, detached,
        "attaching the journal collector perturbed the event order"
    );

    let j = journal.borrow();
    assert!(
        !j.records().is_empty(),
        "the scenario should have recorded journal entries while attached"
    );
    assert_eq!(j.overflowed(), 0);
    // Every delivered data packet records exactly one kind-1 entry.
    let ingress = j.records().iter().filter(|r| r.kind == 1).count() as u64;
    assert_eq!(ingress, attached.delivered_pkts);
}

/// Replaying a fault-swept run with the same seed must reproduce the
/// journal **byte for byte** — not just the aggregate fingerprint, the
/// full record stream (times, nodes, kinds, causes, payload words).
#[test]
fn journal_replay_is_byte_identical_under_fault_sweep() {
    let ids: Vec<NodeId> = (0..5).map(NodeId).collect();
    let links: Vec<(NodeId, NodeId)> = (0..5u16)
        .flat_map(|i| ((i + 1)..5).map(move |j| (NodeId(i), NodeId(j))))
        .collect();
    let sched = FaultGen::new(99).generate(&ids, &links, SimDuration::millis(2), 5);
    assert!(!sched.is_empty());

    let run = || {
        let journal = JournalCollector::new(1_000_000);
        let fp = run_scenario_full(1234, Some(&sched), None, Some(journal.clone()));
        let records = journal.borrow().records().to_vec();
        (fp, records)
    };
    let (fp_a, rec_a) = run();
    let (fp_b, rec_b) = run();
    assert_eq!(fp_a, fp_b, "fault-swept replay must be deterministic");
    assert!(!rec_a.is_empty());
    assert_eq!(
        rec_a, rec_b,
        "same seed + same FaultSchedule must reproduce the journal byte-for-byte"
    );
    // And the collector itself must stay passive under faults too.
    assert_eq!(fp_a, run_scenario_with(1234, Some(&sched)));
}

/// A tiny journal must bound memory and count the overflow, while still
/// not perturbing the run.
#[test]
fn journal_collector_overflow_is_counted_and_passive() {
    let journal = JournalCollector::new(16);
    let attached = run_scenario_full(1234, None, None, Some(journal.clone()));
    assert_eq!(attached, run_scenario(1234));
    let j = journal.borrow();
    assert_eq!(j.records().len(), 16);
    assert!(j.overflowed() > 0);
}

//! Network-wide heavy-hitter detection with no controller in the loop
//! (§8's suggestion, built), written against the typed register handles.
//!
//! Run: `cargo run --example heavy_hitters`

use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::RegisterSpec;
use swishmem_nf::workload::{EcmpRouter, FlowGen, FlowGenConfig, RoutingMode};
use swishmem_nf::{HeavyHitter, HhConfig, HhStatsHandle};

fn main() {
    const KEYS: u32 = 512;
    const THRESHOLD: u64 = 60_000; // bytes
    let cfg = HhConfig {
        count_reg: 0,
        keys: KEYS,
        threshold_bytes: THRESHOLD,
        egress_host: NodeId(HOST_BASE),
    };
    let stats: Vec<HhStatsHandle> = (0..4).map(|_| HhStatsHandle::default()).collect();
    let s2 = stats.clone();
    let mut dep = DeploymentBuilder::new(4)
        .hosts(1)
        .seed(3)
        .register(RegisterSpec::ewo_counter(0, "hh_bytes", KEYS))
        .build(move |id| Box::new(HeavyHitter::new(cfg.clone(), s2[id.index()].clone())));
    dep.settle();

    // Zipf-skewed traffic: the few hottest destinations cross the global
    // threshold even though each ingress switch sees only a quarter.
    let router = EcmpRouter::new(4, RoutingMode::EcmpStable);
    let sched = FlowGen::new(
        FlowGenConfig {
            flow_rate: 30_000.0,
            mean_packets: 4.0,
            payload: 400,
            servers: 200,
            server_alpha: 1.3, // strong skew
            tcp: false,
            duration: SimDuration::millis(60),
            ..FlowGenConfig::default()
        },
        9,
    )
    .generate(&router);
    let t0 = dep.now();
    let mut oracle: std::collections::HashMap<Ipv4Addr, u64> = Default::default();
    for p in &sched {
        dep.inject(t0 + SimDuration::nanos(p.time.nanos()), p.ingress, 0, p.pkt);
        *oracle.entry(p.pkt.flow.dst).or_default() += p.pkt.wire_len() as u64;
    }
    dep.run_for(SimDuration::millis(100));

    let mut true_hh: Vec<(Ipv4Addr, u64)> = oracle
        .iter()
        .filter(|(_, &b)| b > THRESHOLD)
        .map(|(&d, &b)| (d, b))
        .collect();
    true_hh.sort_by_key(|&(_, b)| std::cmp::Reverse(b));

    // Detection is on the packet path: a switch flags a key when it next
    // processes a packet for it. Probe each hot destination once per
    // switch (one RTT of ordinary traffic suffices in steady state).
    let tp = dep.now();
    for (i, (d, _)) in true_hh.iter().enumerate() {
        for sw in 0..4 {
            let probe = DataPacket::udp(
                FlowKey::udp(Ipv4Addr::new(9, 9, 9, 9), 60_000 + i as u16, *d, 80),
                0,
                10,
            );
            dep.inject(
                tp + SimDuration::micros((i * 4 + sw) as u64 * 20),
                sw,
                0,
                probe,
            );
        }
    }
    dep.run_for(SimDuration::millis(20));

    println!("true heavy hitters (> {THRESHOLD} B across the whole fabric):");
    for (d, b) in &true_hh {
        let key = u32::from(*d) % KEYS;
        let flagged_everywhere = stats.iter().all(|s| s.borrow().is_flagged(key));
        println!(
            "  {d}: {b} B — flagged on all 4 switches: {flagged_everywhere}  (global count {})",
            dep.peek(0, 0, key)
        );
        assert!(flagged_everywhere, "heavy hitter missed");
    }
    let total_flags: usize = stats
        .iter()
        .map(|s| s.borrow().flagged.len())
        .max()
        .unwrap_or(0);
    println!(
        "\n{} heavy hitters, ≤{} keys flagged per switch (hash buckets may alias) — detected from \
         replicated data-plane counters, zero controller round-trips ✓",
        true_hh.len(),
        total_flags
    );
    assert!(!true_hh.is_empty(), "workload should produce heavy hitters");
}

//! Global per-user rate limiting across ingress switches (§4.2).
//!
//! A user sprays traffic over three switches to dodge a per-switch
//! limiter. With the per-user meter on an EWO windowed counter, the
//! switches enforce the user's *aggregate* budget — modulo "a few
//! additional packets" of eventual-consistency slack, which we print.
//!
//! Run: `cargo run --example rate_limiter_global`

use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::RegisterSpec;
use swishmem_nf::{RateLimitConfig, RateLimitStatsHandle, RateLimiter};

fn main() {
    const LIMIT: u64 = 20_000; // bytes per 50 ms window
    let window = SimDuration::millis(50);
    let cfg = RateLimitConfig {
        meter_reg: 0,
        keys: 256,
        bytes_per_window: LIMIT,
        egress_host: NodeId(HOST_BASE),
    };
    let stats: Vec<RateLimitStatsHandle> =
        (0..3).map(|_| RateLimitStatsHandle::default()).collect();
    let s2 = stats.clone();
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .register(RegisterSpec::ewo_windowed(0, "meters", 256, window))
        .build(move |id| Box::new(RateLimiter::new(cfg.clone(), s2[id.index()].clone())));
    dep.settle();

    // The hog offers 5× its budget, round-robining across switches;
    // a quiet user sends a trickle.
    let hog = Ipv4Addr::new(10, 0, 0, 1);
    let quiet = Ipv4Addr::new(10, 0, 0, 2);
    let pkt = |user: Ipv4Addr, seq: u32| {
        DataPacket::udp(
            FlowKey::udp(user, 1000, Ipv4Addr::new(99, 9, 9, 9), 80),
            seq,
            72,
        ) // 100 B wire
    };
    let t0 = dep.now();
    let win_ns = window.as_nanos();
    let aligned = SimTime(((t0.nanos() / win_ns) + 1) * win_ns + 1000);
    let offered = 5 * LIMIT / 100;
    let gap = win_ns / (offered + 1);
    for i in 0..offered {
        dep.sim.inject(
            aligned + SimDuration::nanos(i * gap),
            swishmem_wire::Packet::data(
                NodeId(HOST_BASE),
                dep.switch_ids()[(i % 3) as usize],
                pkt(hog, i as u32),
            ),
        );
        if i % 20 == 0 {
            dep.sim.inject(
                aligned + SimDuration::nanos(i * gap + 500),
                swishmem_wire::Packet::data(
                    NodeId(HOST_BASE),
                    dep.switch_ids()[0],
                    pkt(quiet, i as u32),
                ),
            );
        }
    }
    dep.run_until(aligned + window + SimDuration::millis(10));

    let mut admitted = 0u64;
    let mut dropped = 0u64;
    println!("per-switch limiter decisions for the hog's window:");
    for (i, s) in stats.iter().enumerate() {
        let s = s.borrow();
        println!(
            "  switch {i}: admitted {} pkts ({} B), dropped {}",
            s.admitted, s.admitted_bytes, s.dropped
        );
        admitted += s.admitted_bytes;
        dropped += s.dropped;
    }
    // The quiet user's packets are part of `admitted`; subtract them.
    let quiet_bytes = (offered / 20 + 1) * 100;
    let hog_admitted = admitted.saturating_sub(quiet_bytes);
    println!(
        "\nhog admitted {hog_admitted} B of a {LIMIT} B aggregate budget (offered {} B), {dropped} pkts dropped",
        offered * 100
    );
    let excess = hog_admitted.saturating_sub(LIMIT);
    println!(
        "over-admission from eventual consistency: {excess} B ({:.1}% of the limit) — 'a few additional packets' ✓",
        100.0 * excess as f64 / LIMIT as f64
    );
    // The quiet-user byte estimate is approximate (±a packet or two), so
    // allow a small tolerance below the limit.
    assert!(hog_admitted >= LIMIT * 95 / 100, "limiter fired too early");
    assert!(excess < LIMIT / 5, "aggregate enforcement failed");
}

//! Distributed DDoS detection on an EWO-replicated count-min sketch.
//!
//! A volumetric attack is sprayed across all four ingress switches, so no
//! single switch sees enough of it to alarm locally — but because every
//! switch reads the *global* sketch (§4.2), the fabric detects and
//! mitigates it anyway.
//!
//! Run: `cargo run --example ddos_mitigation`

use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::RegisterSpec;
use swishmem_nf::workload::{
    generate_attack, AttackConfig, EcmpRouter, FlowGen, FlowGenConfig, RoutingMode,
};
use swishmem_nf::{DdosConfig, DdosDetector, DdosStatsHandle};

fn main() {
    const DEPTH: u16 = 3;
    const WIDTH: u32 = 2048;
    let cfg = DdosConfig {
        row_regs: (0..DEPTH).collect(),
        width: WIDTH,
        total_reg: DEPTH,
        share_millis: 250,
        min_total: 200,
        min_est: 300,
        egress_host: NodeId(HOST_BASE),
    };
    let stats: Vec<DdosStatsHandle> = (0..4).map(|_| DdosStatsHandle::default()).collect();
    let s2 = stats.clone();
    let mut b = DeploymentBuilder::new(4).hosts(1);
    for r in 0..DEPTH {
        b = b.register(RegisterSpec::ewo_counter(r, &format!("cm_row{r}"), WIDTH));
    }
    b = b.register(RegisterSpec::ewo_counter(DEPTH, "cm_total", 4));
    let mut dep = b.build(move |id| {
        Box::new(DdosDetector::new(cfg.clone(), s2[id.index()].clone())) as Box<dyn swishmem::NfApp>
    });
    dep.settle();

    let router = EcmpRouter::new(4, RoutingMode::EcmpStable);
    let horizon = SimDuration::millis(60);
    let bg = FlowGen::new(
        FlowGenConfig {
            flow_rate: 40_000.0,
            mean_packets: 1.0,
            tcp: false,
            servers: 400,
            server_alpha: 0.3,
            duration: horizon,
            ..FlowGenConfig::default()
        },
        1,
    )
    .generate(&router);
    let victim = Ipv4Addr::new(20, 0, 0, 77);
    let attack_start = SimTime(15_000_000); // 15 ms in
    let atk = generate_attack(
        &AttackConfig {
            victim,
            attackers: 400,
            rate_pps: 40_000.0,
            start: attack_start,
            duration: SimDuration::millis(45),
            payload: 64,
        },
        &router,
        2,
    );
    let t0 = dep.now();
    let mut per_switch = [0u64; 4];
    for p in bg.iter().chain(atk.iter()) {
        dep.inject(t0 + SimDuration::nanos(p.time.nanos()), p.ingress, 0, p.pkt);
        if p.pkt.flow.dst == victim {
            per_switch[p.ingress] += 1;
        }
    }
    dep.run_for(horizon + SimDuration::millis(30));

    println!("attack traffic split across ingress switches: {per_switch:?}");
    println!("\nper-switch detector state:");
    let mut total_mitigated = 0;
    for (i, s) in stats.iter().enumerate() {
        let s = s.borrow();
        let delay = s
            .first_alarm_ns
            .map(|ns| {
                format!(
                    "{:.2} ms after attack start",
                    (ns as f64 - (t0.nanos() + attack_start.nanos()) as f64) / 1e6
                )
            })
            .unwrap_or_else(|| "never".into());
        println!(
            "  switch {i}: {} pkts seen, {} mitigated, first alarm {}",
            s.packets, s.mitigated, delay
        );
        total_mitigated += s.mitigated;
    }
    let attack_total: u64 = per_switch.iter().sum();
    println!(
        "\nmitigated {total_mitigated}/{attack_total} attack packets ({:.0}%) — every switch alarmed on the GLOBAL sketch despite seeing only ~25% of the attack locally ✓",
        100.0 * total_mitigated as f64 / attack_total as f64
    );
    assert!(total_mitigated * 2 > attack_total, "mitigation below 50%");
}

//! Quickstart: the "one big switch" abstraction in ~60 lines.
//!
//! A tiny NF keeps two pieces of shared state: a strongly-consistent
//! (SRO) config value and an eventually-consistent (EWO) packet counter.
//! Three switches run identical copies; SwiShmem makes them behave like
//! one reliable switch.
//!
//! Run: `cargo run --example quickstart`

use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::{NfApp, NfDecision, RegisterSpec, SharedState};

const CFG_REG: u16 = 0; // SRO: operator-set mode value
const CNT_REG: u16 = 1; // EWO: global packet counter

struct DemoNf;

impl NfApp for DemoNf {
    fn process(
        &mut self,
        pkt: &DataPacket,
        _ingress: NodeId,
        st: &mut dyn SharedState,
    ) -> NfDecision {
        // Count every packet in the replicated G-counter.
        st.add(CNT_REG, 0, 1);
        // Packets to port 9 update the shared config (strongly consistent).
        if pkt.flow.dst_port == 9 {
            st.write(CFG_REG, 0, u64::from(pkt.payload_len));
        }
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

fn pkt(dst_port: u16, payload: u16) -> DataPacket {
    DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            5000,
            Ipv4Addr::new(10, 0, 0, 2),
            dst_port,
        ),
        0,
        payload,
    )
}

fn main() {
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .register(RegisterSpec::sro(CFG_REG, "mode", 16))
        .register(RegisterSpec::ewo_counter(CNT_REG, "pkts", 16))
        .build(|_| Box::new(DemoNf));
    dep.settle();
    println!("3-switch SwiShmem fabric up at t={}", dep.now());

    // An operator packet at switch 0 sets the config to 42.
    let t = dep.now();
    dep.inject(t, 0, 0, pkt(9, 42));
    // Data packets hit all three switches.
    for i in 0..9u64 {
        dep.inject(
            t + SimDuration::micros(1 + i * 10),
            (i % 3) as usize,
            0,
            pkt(80, 100),
        );
    }
    dep.run_for(SimDuration::millis(20));

    println!("\nshared state as seen by each switch:");
    for i in 0..3 {
        println!(
            "  switch {i}: mode={} (SRO, linearizable)  packets={} (EWO G-counter)",
            dep.peek(i, CFG_REG, 0),
            dep.peek(i, CNT_REG, 0),
        );
    }
    let m = dep.metrics(0);
    println!(
        "\nswitch 0 protocol activity: {} chain write(s) applied, {} EWO merges, write p99 {}",
        m.dp.chain_applies,
        m.dp.merge_applied,
        m.cp.write_latency.percentile_ns(0.99),
    );
    assert_eq!(dep.peek(2, CFG_REG, 0), 42);
    assert_eq!(dep.peek(1, CNT_REG, 0), 10);
    println!("\nall replicas agree — one big switch ✓");
}

//! Distributed L4 load balancing with per-connection consistency.
//!
//! The scenario of §3.2: connections enter the fabric through different
//! switches as adaptive routing shifts paths mid-flow. With the
//! connection→DIP mapping in an SRO register, every switch forwards every
//! packet of a connection to the same backend — no resets, ever.
//!
//! Run: `cargo run --example load_balancer`

use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::RegisterSpec;
use swishmem_nf::workload::{EcmpRouter, RoutingMode};
use swishmem_nf::{LbConfig, LbStatsHandle, LoadBalancer};
use swishmem_wire::l4::TcpFlags;
use swishmem_wire::PacketBody;

fn main() {
    let vip = Ipv4Addr::new(10, 99, 0, 1);
    let backends = vec![
        (Ipv4Addr::new(10, 1, 0, 1), NodeId(HOST_BASE)),
        (Ipv4Addr::new(10, 1, 0, 2), NodeId(HOST_BASE + 1)),
        (Ipv4Addr::new(10, 1, 0, 3), NodeId(HOST_BASE + 2)),
    ];
    let cfg = LbConfig {
        conn_reg: 0,
        keys: 8192,
        vip,
        backends: backends.clone(),
    };
    let stats: Vec<LbStatsHandle> = (0..4).map(|_| LbStatsHandle::default()).collect();
    let s2 = stats.clone();
    let mut dep = DeploymentBuilder::new(4)
        .hosts(3)
        .register(RegisterSpec::sro(0, "lb_conn", 8192))
        .build(move |id| Box::new(LoadBalancer::new(cfg.clone(), s2[id.index()].clone())));
    dep.settle();

    // 20 client connections, 6 packets each, with 30% per-packet path
    // deviation (aggressive multipath).
    let router = EcmpRouter::new(4, RoutingMode::Multipath { flip_prob: 0.3 });
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let t0 = dep.now();
    for conn in 0..20u16 {
        let flow = FlowKey::tcp(Ipv4Addr::new(172, 16, 0, 2), 40_000 + conn, vip, 443);
        for i in 0..6u32 {
            let flags = if i == 0 {
                TcpFlags::syn()
            } else {
                TcpFlags::data()
            };
            let pkt = DataPacket::tcp(flow, flags, i, 300);
            let ingress = router.route(&flow, &mut rng);
            // Space packets ~2 ms so the SYN's mapping commits first.
            let at =
                t0 + SimDuration::millis(u64::from(conn)) + SimDuration::millis(u64::from(i) * 2);
            dep.inject(at, ingress, 0, pkt);
        }
    }
    dep.run_for(SimDuration::millis(120));

    println!("backend packet counts (each connection must stay on one backend):");
    let mut total = 0usize;
    for (h, (dip, _)) in backends.iter().enumerate() {
        let log = dep.recording(h).borrow();
        // Count distinct client ports per backend and verify DIP rewrite.
        let mut conns = std::collections::HashSet::new();
        for (_, p) in log.iter() {
            if let PacketBody::Data(d) = &p.body {
                assert_eq!(d.flow.dst, *dip, "packet delivered with wrong DIP");
                conns.insert(d.flow.src_port);
            }
        }
        println!(
            "  {} -> {} packets across {} connections",
            dip,
            log.len(),
            conns.len()
        );
        total += log.len();
    }
    let violations: u64 = stats.iter().map(|s| s.borrow().unmapped_drops).sum();
    // Verify per-connection consistency: each client port appears at
    // exactly one backend.
    let mut seen: std::collections::HashMap<u16, usize> = std::collections::HashMap::new();
    for h in 0..3 {
        for (_, p) in dep.recording(h).borrow().iter() {
            if let PacketBody::Data(d) = &p.body {
                if let Some(prev) = seen.insert(d.flow.src_port, h) {
                    assert_eq!(
                        prev, h,
                        "connection {} split across backends!",
                        d.flow.src_port
                    );
                }
            }
        }
    }
    println!("\ndelivered {total}/120 packets, {violations} PCC violations");
    println!("every connection stuck to one backend despite 30% path deviation ✓");
    assert_eq!(violations, 0);
    assert_eq!(total, 120);
}

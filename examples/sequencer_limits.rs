//! The paper's own stated limitation, demonstrated (§9):
//!
//! "One current limitation of SwiShmem is the need for control plane
//! involvement to achieve strongly consistent writes. While in our
//! experience applications that require frequent writes and strong
//! consistency are rare among traditional NFs, some new in-network
//! applications like sequencers have such data."
//!
//! A network sequencer (à la NOPaxos) must increment a strongly
//! consistent counter on *every* packet. On SwiShmem that write crosses
//! the control plane, so the sequencer saturates at the CP service rate —
//! orders of magnitude below the data plane. This example measures the
//! collapse and contrasts it with an EWO counter (which is fast but
//! cannot produce a gap-free total order). The packet trace shows the
//! protocol traffic behind one sequenced packet.
//!
//! Run: `cargo run --release --example sequencer_limits`

use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::{NfApp, NfDecision, RegisterSpec, SharedState};
use swishmem_simnet::Trace;

/// Per-packet strongly-consistent sequence assignment: read+increment an
/// SRO register; the assigned number is stamped into the output packet.
struct Sequencer;
impl NfApp for Sequencer {
    fn process(&mut self, pkt: &DataPacket, _in: NodeId, st: &mut dyn SharedState) -> NfDecision {
        let seq = st.read(0, 0) + 1;
        st.write(0, 0, seq);
        let mut out = *pkt;
        out.flow_seq = seq as u32;
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: out,
        }
    }
}

fn pkt(i: u32) -> DataPacket {
    DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            5000,
            Ipv4Addr::new(10, 0, 0, 2),
            99,
        ),
        i,
        32,
    )
}

fn run(offered_pps: f64) -> (u64, f64) {
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .register(RegisterSpec::sro(0, "seq", 4))
        .build(|_| Box::new(Sequencer));
    dep.settle();
    let dur = SimDuration::millis(50);
    let gap = (1e9 / offered_pps) as u64;
    let t0 = dep.now();
    let n = dur.as_nanos() / gap;
    for i in 0..n {
        dep.inject(t0 + SimDuration::nanos(i * gap), 0, 0, pkt(i as u32));
    }
    dep.run_for(dur + SimDuration::millis(100));
    let released = dep.recording(0).borrow().len() as u64;
    let latency = dep.metrics(0).cp.write_latency.mean_ns() / 1000.0;
    (released * 1000 / 50, latency) // sequenced pkts per second
}

fn main() {
    println!("network sequencer on SwiShmem SRO (per-packet strongly-consistent writes):\n");
    println!("  offered pps  sequenced pps  mean latency (us)");
    for offered in [5_000.0, 20_000.0, 50_000.0, 200_000.0] {
        let (thru, lat) = run(offered);
        println!("  {:>11}  {:>13}  {:>12.0}", offered as u64, thru, lat);
    }
    println!("\nthe sequencer saturates at the control-plane service rate — the");
    println!("limitation §9 names; data-plane buffering/retransmission (the");
    println!("paper's open question) would be needed to lift it.\n");

    // Show the protocol traffic behind a single sequenced packet.
    let trace = Trace::new(64);
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .register(RegisterSpec::sro(0, "seq", 4))
        .build(|_| Box::new(Sequencer));
    dep.sim.set_trace(trace.clone());
    dep.settle();
    trace.borrow_mut().clear();
    let t = dep.now();
    dep.inject(t, 0, 0, pkt(0));
    dep.run_for(SimDuration::millis(5));
    println!("packet trace for ONE sequenced packet (chain of 3):");
    print!("{}", trace.borrow().render());
    let log = dep.recording(0).borrow();
    assert_eq!(log.len(), 1);
}

//! NAT translations surviving a switch failure (§4.1 + §6.3).
//!
//! A client opens a connection through switch 0; the translation is
//! chain-replicated. Switch 0 then fails — and the reply still translates
//! correctly at switch 2, because the mapping lives on every replica.
//! Finally switch 0 recovers, catches up via snapshot, and serves the
//! mapping again.
//!
//! Run: `cargo run --example nat_failover`

use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::{ConfigEventKind, RegisterSpec};
use swishmem_nf::{Nat, NatConfig, NatStatsHandle};
use swishmem_simnet::FaultSchedule;
use swishmem_wire::PacketBody;

fn main() {
    let cfg = NatConfig {
        fwd_reg: 0,
        rev_reg: 1,
        keys: 4096,
        nat_ip: Ipv4Addr::new(203, 0, 113, 1),
        inside_octet: 10,
        ports_per_switch: 1000,
        port_base: 10000,
        outside_host: NodeId(HOST_BASE),
        inside_host: NodeId(HOST_BASE + 1),
    };
    let stats: Vec<NatStatsHandle> = (0..3).map(|_| NatStatsHandle::default()).collect();
    let s2 = stats.clone();
    let mut dep = DeploymentBuilder::new(3)
        .hosts(2)
        .register(RegisterSpec::sro(0, "nat_fwd", 4096))
        .register(RegisterSpec::sro(1, "nat_rev", 4096))
        .build(move |id| Box::new(Nat::new(cfg.clone(), s2[id.index()].clone())));
    dep.settle();

    // The whole failure story is declared up front as a fault schedule:
    // switch 0 crashes 30 ms in and restarts 90 ms later. The same
    // schedule replayed against the same deployment seed reproduces this
    // run bit-for-bit.
    let victim = dep.switch_ids()[0];
    let sched =
        FaultSchedule::new().crash_for(victim, SimDuration::millis(30), SimDuration::millis(90));
    println!("{sched}");
    let t0 = dep.now();
    dep.schedule_faults(t0, &sched);

    // 1. Outbound connection through switch 0.
    let out = DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 5),
            5555,
            Ipv4Addr::new(8, 8, 8, 8),
            53,
        ),
        0,
        64,
    );
    let t = dep.now();
    dep.inject(t, 0, 1, out);
    dep.run_for(SimDuration::millis(30));
    let ext_port = {
        let log = dep.recording(0).borrow();
        let PacketBody::Data(d) = &log[0].1.body else {
            panic!()
        };
        d.flow.src_port
    };
    println!("outbound 10.0.0.5:5555 translated to 203.0.113.1:{ext_port} via switch 0");

    // 2. Switch 0 (the one that allocated the mapping) fails, per the
    //    schedule (crash fired at t0 + 30 ms).
    let t_fail = dep.now();
    dep.run_for(SimDuration::millis(60));
    println!("switch 0 failed at {t_fail}; controller events:");
    for e in dep.controller_events() {
        println!("  t={} epoch {} {:?}", e.time, e.epoch, e.kind);
    }

    // 3. The reply arrives at switch 2 — the mapping must be there.
    let reply = DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(8, 8, 8, 8),
            53,
            Ipv4Addr::new(203, 0, 113, 1),
            ext_port,
        ),
        0,
        64,
    );
    let t = dep.now();
    dep.inject(t, 2, 0, reply);
    dep.run_for(SimDuration::millis(30));
    {
        let log = dep.recording(1).borrow();
        assert_eq!(log.len(), 1, "reply lost: connection broken");
        let PacketBody::Data(d) = &log[0].1.body else {
            panic!()
        };
        assert_eq!(
            (d.flow.dst, d.flow.dst_port),
            (Ipv4Addr::new(10, 0, 0, 5), 5555)
        );
        println!("reply translated back at switch 2 despite the failure ✓");
    }

    // 4. Switch 0 restarts (schedule: t0 + 120 ms) and catches up.
    dep.run_for(SimDuration::millis(200));
    let events = dep.controller_events();
    assert!(events
        .iter()
        .any(|e| e.kind == ConfigEventKind::Promoted(NodeId(0))));
    // Mapping present again on the recovered switch.
    let key = (ext_port as u32) % 4096;
    let v = dep.peek(0, 1, key);
    assert_ne!(v, 0, "recovered switch missing the reverse mapping");
    println!(
        "switch 0 recovered, caught up via snapshot ({} entries applied) and rejoined as tail ✓",
        dep.metrics(0).dp.snapshot_applied
    );
}

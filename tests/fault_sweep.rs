//! Seeded fault-sweep suite: random fault schedules sampled from pinned
//! seeds run against SRO/ERO/EWO deployments with every online oracle
//! armed. A violation aborts the test with the seed and the full printed
//! schedule — that output alone is enough to replay the run bit-for-bit
//! (`FaultGen::new(seed)` regenerates the identical schedule, and the
//! deployment seed fixes every other random choice).

use std::net::Ipv4Addr;
use swishmem::oracle::{OracleConfig, OracleSuite};
use swishmem::prelude::*;
use swishmem::{NfApp, NfDecision, RegisterSpec, SharedState};
use swishmem_simnet::{FaultAction, FaultGen};
use swishmem_wire::NodeId as WireNodeId;

/// Linearizable/eventual chain writes: `Set(payload_len)` per dst port.
struct WriteNf;
impl NfApp for WriteNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.write(0, u32::from(pkt.flow.dst_port), u64::from(pkt.payload_len));
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

/// EWO G-counter increments per dst port.
struct CountNf;
impl NfApp for CountNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.add(0, u32::from(pkt.flow.dst_port), 1);
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

fn wpkt(port: u16, val: u16) -> DataPacket {
    DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            999,
            Ipv4Addr::new(10, 0, 0, 2),
            port,
        ),
        0,
        val,
    )
}

const KEYS: u32 = 16;
const EPISODES: usize = 4;

/// One sweep: generate a schedule from `seed`, run the workload through
/// it, and hold every oracle to zero violations.
fn run_sweep(kind: &str, seed: u64) {
    let spec = match kind {
        "sro" => RegisterSpec::sro(0, "t", KEYS),
        "ero" => RegisterSpec::ero(0, "t", KEYS),
        "ewo" => RegisterSpec::ewo_counter(0, "c", KEYS),
        _ => unreachable!("unknown register kind {kind}"),
    };
    let is_ewo = kind == "ewo";
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(seed)
        .register(spec)
        .build(move |_| -> Box<dyn NfApp> {
            if is_ewo {
                Box::new(CountNf)
            } else {
                Box::new(WriteNf)
            }
        });
    dep.settle();
    let t0 = dep.now();

    let horizon = SimDuration::millis(60);
    let mut gen = FaultGen::new(seed);
    let nodes = dep.switch_ids().to_vec();
    let links = dep.fault_links();
    let sched = gen.generate(&nodes, &links, horizon, EPISODES);
    let sched_str = sched.to_string();
    dep.schedule_faults(t0, &sched);

    // Prefer writers the schedule never crashes: a surviving writer
    // retries every write to completion, so the convergence oracle gets
    // maximal coverage (writes from crashed writers are legally lost and
    // their groups get excluded via orphan tracking).
    let crash_victims: Vec<WireNodeId> = sched
        .events()
        .iter()
        .filter_map(|e| match e.action {
            FaultAction::Crash { node } => Some(node),
            _ => None,
        })
        .collect();
    let writers: Vec<usize> = (0..nodes.len())
        .filter(|&i| !crash_victims.contains(&nodes[i]))
        .collect();
    let writers = if writers.is_empty() { vec![0] } else { writers };

    for i in 0..48u64 {
        let key = (i % u64::from(KEYS)) as u16;
        let val = 100 + i as u16;
        let sw = writers[(i as usize) % writers.len()];
        dep.inject(t0 + SimDuration::micros(i * 1000), sw, 0, wpkt(key, val));
    }

    let ocfg = OracleConfig::new(t0 + horizon);
    let mut suite = OracleSuite::attach(&mut dep, ocfg);
    let end = t0 + horizon + ocfg.convergence_grace + SimDuration::millis(100);
    if let Err(v) = suite.run(&mut dep, end) {
        panic!(
            "oracle violation: {v}\n\
             replay: kind={kind} seed={seed} episodes={EPISODES} horizon={horizon}\n\
             {sched_str}"
        );
    }
}

const SRO_SEEDS: [u64; 8] = [101, 102, 103, 104, 105, 106, 107, 108];
const ERO_SEEDS: [u64; 8] = [201, 202, 203, 204, 205, 206, 207, 208];
const EWO_SEEDS: [u64; 8] = [301, 302, 303, 304, 305, 306, 307, 308];

#[test]
fn sro_fault_sweep_zero_violations() {
    for &seed in &SRO_SEEDS {
        run_sweep("sro", seed);
    }
}

#[test]
fn ero_fault_sweep_zero_violations() {
    for &seed in &ERO_SEEDS {
        run_sweep("ero", seed);
    }
}

#[test]
fn ewo_fault_sweep_zero_violations() {
    for &seed in &EWO_SEEDS {
        run_sweep("ewo", seed);
    }
}

#[test]
fn sweep_schedules_are_distinct() {
    // The suite must exercise ≥ 20 genuinely different schedules, not one
    // schedule replayed 24 times.
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(1)
        .register(RegisterSpec::sro(0, "t", KEYS))
        .build(|_| Box::new(WriteNf));
    dep.settle();
    let nodes = dep.switch_ids().to_vec();
    let links = dep.fault_links();
    let mut seen = std::collections::BTreeSet::new();
    for seed in SRO_SEEDS.iter().chain(&ERO_SEEDS).chain(&EWO_SEEDS) {
        let sched =
            FaultGen::new(*seed).generate(&nodes, &links, SimDuration::millis(60), EPISODES);
        assert!(!sched.is_empty(), "seed {seed} produced an empty schedule");
        seen.insert(sched.to_string());
    }
    assert!(
        seen.len() >= 20,
        "only {} distinct schedules across 24 seeds",
        seen.len()
    );
}

#[test]
fn oracles_quiet_on_healthy_run() {
    // No faults scheduled: the oracles must stay silent (no false
    // positives from ordinary protocol operation).
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(42)
        .register(RegisterSpec::sro(0, "t", KEYS))
        .register(RegisterSpec::ewo_counter(1, "c", KEYS))
        .build(|_| Box::new(WriteNf));
    dep.settle();
    let t0 = dep.now();
    for i in 0..32u64 {
        let key = (i % u64::from(KEYS)) as u16;
        dep.inject(
            t0 + SimDuration::micros(i * 500),
            (i % 3) as usize,
            0,
            wpkt(key, 100 + i as u16),
        );
    }
    let ocfg = OracleConfig::new(t0 + SimDuration::millis(20));
    let mut suite = OracleSuite::attach(&mut dep, ocfg);
    let end = t0 + SimDuration::millis(250);
    suite
        .run(&mut dep, end)
        .unwrap_or_else(|v| panic!("oracle violation on fault-free run: {v}"));
}

//! Live-reconfiguration integration tests: key ranges of a partitioned
//! register migrate between replica groups while traffic keeps flowing.
//!
//! The happy paths exercised here: bootstrap table install, explicit
//! trigger-driven moves (value + seq preservation, ownership flip),
//! write availability across the transfer window, replica-group grow and
//! shrink, and the telemetry-driven planner moving a hot range onto its
//! talker.

use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::{
    MigrationPhase, NfApp, NfDecision, ReconfigEvent, RegisterSpec, SharedState, TriggerOp,
};

/// `Set(payload_len)` per dst port against register 0.
struct WriteNf;
impl NfApp for WriteNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.write(0, u32::from(pkt.flow.dst_port), u64::from(pkt.payload_len));
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

fn wpkt(port: u16, val: u16) -> DataPacket {
    DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            999,
            Ipv4Addr::new(10, 0, 0, 2),
            port,
        ),
        0,
        val,
    )
}

const KEYS: u32 = 48;

/// With no partitioned registers the reconfiguration engine is fully
/// dormant: the controller arms no planner/resync timers, switches send
/// no load reports, and toggling the policy flag must not move a single
/// event. This is the core-level companion of the simnet golden
/// determinism fingerprint — bit-identical with reconfig compiled in
/// but disabled.
#[test]
fn reconfig_disabled_is_invisible_without_partitioned_registers() {
    let fingerprint = |enabled: bool| {
        let mut cfg = SwishConfig::default();
        cfg.reconfig.enabled = enabled;
        let mut dep = DeploymentBuilder::new(3)
            .hosts(1)
            .seed(11)
            .swish_config(cfg)
            .register(RegisterSpec::sro(0, "t", 16))
            .build(|_| Box::new(WriteNf));
        let spans = dep.attach_tracing(100_000);
        dep.settle();
        let t0 = dep.now();
        for i in 0..24u64 {
            dep.inject(
                t0 + SimDuration::micros(i * 500),
                (i % 3) as usize,
                0,
                wpkt((i % 16) as u16, 100 + i as u16),
            );
        }
        dep.run_for(SimDuration::millis(30));
        let span_log: Vec<String> = spans
            .borrow()
            .events()
            .iter()
            .map(|e| format!("{:?} {:?} {} {:?}", e.time, e.trace, e.node, e.phase))
            .collect();
        let peeks: Vec<u64> = (0..3)
            .flat_map(|i| (0..16).map(move |k| (i, k)))
            .map(|(i, k)| dep.peek(i, 0, k))
            .collect();
        (
            dep.now(),
            span_log,
            peeks,
            dep.sum_metric(|m| m.cp.jobs_completed),
            dep.sum_metric(|m| m.cp.write_sends + m.cp.heartbeats),
            dep.sum_metric(|m| m.dp.chain_applies),
            dep.sum_metric(|m| m.cp.load_reports_sent),
        )
    };
    let off = fingerprint(false);
    let on = fingerprint(true);
    assert!(off.3 > 0, "workload should complete writes");
    assert_eq!(off.6, 0, "no load reports without partitioned registers");
    assert_eq!(
        off, on,
        "enabling the reconfig policy moved events on a chain-only deployment"
    );
}

fn partitioned_dep(seed: u64) -> Deployment {
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(seed)
        .register(RegisterSpec::partitioned(0, "p", KEYS))
        .build(|_| Box::new(WriteNf));
    dep.settle();
    dep
}

/// Every switch installs the controller's bootstrap range table: full
/// key-space coverage, no overlap, per-range epoch 1.
#[test]
fn bootstrap_installs_range_tables_everywhere() {
    let dep = partitioned_dep(7);
    let master = dep.controller_ranges(0);
    assert_eq!(master.len(), 3, "one range per switch");
    assert_eq!(master[0].start, 0);
    assert_eq!(master.last().unwrap().end, KEYS);
    for w in master.windows(2) {
        assert_eq!(w[0].end, w[1].start, "contiguous coverage");
    }
    for i in 0..3 {
        let installed = dep.installed_ranges(i, 0);
        assert_eq!(installed.len(), master.len(), "switch {i} table installed");
        for (a, b) in installed.iter().zip(&master) {
            assert_eq!((a.start, a.end), (b.start, b.end));
            assert_eq!(a.owners, b.owners);
            assert_eq!(a.epoch, 1);
            assert_eq!(a.mig_to, None);
        }
    }
}

/// Writes ingressed anywhere route to the key's range primary and
/// complete; a management peek at the owner sees the value.
#[test]
fn partitioned_writes_route_to_range_owner() {
    let mut dep = partitioned_dep(8);
    let t0 = dep.now();
    // Keys across all three ranges, all ingressed at switch 1.
    for (i, key) in [0u16, 20, 40].iter().enumerate() {
        dep.inject(
            t0 + SimDuration::micros(i as u64 * 200),
            1,
            0,
            wpkt(*key, 500 + *key),
        );
    }
    dep.run_for(SimDuration::millis(10));
    for key in [0u16, 20, 40] {
        let owner = dep.controller_ranges(0)[usize::from(key) / 16].owners[0];
        let idx = dep.switch_index(owner).unwrap();
        assert_eq!(
            dep.peek(idx, 0, u32::from(key)),
            u64::from(500 + key),
            "key {key} applied at its owner"
        );
    }
    let completed: u64 = (0..3).map(|i| dep.metrics(i).cp.jobs_completed).sum();
    assert_eq!(completed, 3, "all write jobs acked");
}

/// An explicit trigger migrates a range: state (values *and* per-key
/// seqs) arrives at the destination, ownership flips at a higher
/// per-range epoch, and the log records Begin → Done → Commit.
#[test]
fn triggered_move_transfers_state_and_flips_ownership() {
    let mut dep = partitioned_dep(9);
    let t0 = dep.now();
    // Populate range [0,16) at its original owner.
    for key in 0u16..8 {
        dep.inject(
            t0 + SimDuration::micros(u64::from(key) * 100),
            0,
            0,
            wpkt(key, 700 + key),
        );
    }
    dep.run_for(SimDuration::millis(5));
    let before = dep.controller_ranges(0);
    let from = before[0].owners[0];
    let to = dep.switch_ids()[2];
    assert_ne!(from, to, "seed layout: range 0 not owned by switch 2");

    let t1 = dep.now();
    dep.schedule_trigger(t1 + SimDuration::micros(10), TriggerOp::Move, 0, 0, to);
    dep.run_for(SimDuration::millis(20));

    let after = dep.controller_ranges(0);
    assert_eq!(after[0].owners, vec![to], "ownership moved");
    assert_eq!(after[0].mig_to, None, "transfer closed");
    assert!(
        after[0].epoch > before[0].epoch,
        "per-range epoch advanced ({} -> {})",
        before[0].epoch,
        after[0].epoch
    );
    assert_eq!(dep.migration_phase(0, 0), MigrationPhase::Committed);

    // State followed the range.
    let dst_idx = dep.switch_index(to).unwrap();
    for key in 0u16..8 {
        assert_eq!(
            dep.peek(dst_idx, 0, u32::from(key)),
            u64::from(700 + key),
            "key {key} value at destination"
        );
    }
    assert!(dep.sum_metric(|m| m.dp.migrate_applied) > 0);
    assert!(dep.sum_metric(|m| m.cp.migrate_chunks_sent) > 0);
    assert_eq!(dep.sum_metric(|m| m.cp.migrate_done_sent), 1);

    // Log shape: Begin, then Done, then Commit for (reg 0, start 0).
    let events: Vec<ReconfigEvent> = dep
        .reconfig_events()
        .iter()
        .filter(|e| e.event.range_key() == (0, 0))
        .map(|e| e.event.clone())
        .collect();
    let pos = |pred: &dyn Fn(&ReconfigEvent) -> bool| events.iter().position(pred);
    let begin = pos(&|e| matches!(e, ReconfigEvent::Begin { .. })).expect("Begin logged");
    let done = pos(&|e| matches!(e, ReconfigEvent::Done { .. })).expect("Done logged");
    let commit = events
        .iter()
        .rposition(|e| matches!(e, ReconfigEvent::Commit { .. }))
        .expect("Commit logged");
    assert!(begin < done && done < commit, "Begin < Done < Commit");

    // Every switch converged on the new table (resync guarantees it).
    for i in 0..3 {
        let inst = dep.installed_ranges(i, 0);
        assert_eq!(inst[0].owners, vec![to], "switch {i} adopted the commit");
        assert_eq!(inst[0].mig_to, None);
    }

    // New owner sequences fresh writes.
    let t2 = dep.now();
    dep.inject(t2 + SimDuration::micros(10), 1, 0, wpkt(3, 999));
    dep.run_for(SimDuration::millis(5));
    assert_eq!(
        dep.peek(dst_idx, 0, 3),
        999,
        "post-commit write at new owner"
    );
}

/// Writes keep completing while the transfer window is open: jobs
/// injected before, during, and after the migration all ack.
#[test]
fn write_availability_maintained_during_transfer() {
    let mut dep = partitioned_dep(10);
    let t0 = dep.now();
    let to = dep.switch_ids()[2];
    dep.schedule_trigger(t0 + SimDuration::millis(2), TriggerOp::Move, 0, 0, to);
    // A steady write stream against the migrating range, ingressed at a
    // non-owner, spanning the whole window.
    let n = 40u64;
    for i in 0..n {
        let key = (i % 8) as u16;
        dep.inject(
            t0 + SimDuration::micros(i * 150),
            1,
            0,
            wpkt(key, 100 + i as u16),
        );
    }
    dep.run_for(SimDuration::millis(40));
    assert_eq!(dep.migration_phase(0, 0), MigrationPhase::Committed);
    let completed: u64 = (0..3).map(|i| dep.metrics(i).cp.jobs_completed).sum();
    let failed: u64 = (0..3).map(|i| dep.metrics(i).cp.jobs_failed).sum();
    assert_eq!(failed, 0, "no write abandoned across the migration");
    assert_eq!(completed, n, "every write acked");
    // Last writer wins per key: value of the final write to each key.
    let dst_idx = dep.switch_index(to).unwrap();
    for key in 0u16..8 {
        let last = (0..n).filter(|i| i % 8 == u64::from(key)).max().unwrap();
        assert_eq!(
            dep.peek(dst_idx, 0, u32::from(key)),
            100 + last,
            "key {key} final value at destination"
        );
    }
}

/// Grow then shrink: the replica group stretches to two owners (after a
/// state transfer) and contracts back to one, each at a fresh epoch.
#[test]
fn replica_group_grows_and_shrinks() {
    let mut dep = partitioned_dep(11);
    let t0 = dep.now();
    for key in 0u16..4 {
        dep.inject(
            t0 + SimDuration::micros(u64::from(key) * 100),
            0,
            0,
            wpkt(key, 300 + key),
        );
    }
    dep.run_for(SimDuration::millis(5));
    let original = dep.controller_ranges(0)[0].owners.clone();
    assert_eq!(original.len(), 1);
    let joiner = dep.switch_ids()[2];
    assert_ne!(original[0], joiner);

    let t1 = dep.now();
    dep.schedule_trigger(t1 + SimDuration::micros(10), TriggerOp::Grow, 0, 0, joiner);
    dep.run_for(SimDuration::millis(20));
    let grown = dep.controller_ranges(0)[0].clone();
    assert_eq!(grown.owners, vec![original[0], joiner], "group grew");
    // The joiner holds the range's state (it was the transfer target).
    let j = dep.switch_index(joiner).unwrap();
    for key in 0u16..4 {
        assert_eq!(dep.peek(j, 0, u32::from(key)), u64::from(300 + key));
    }

    // Writes replicate to both owners now (mini-chain of two).
    let t2 = dep.now();
    dep.inject(t2 + SimDuration::micros(10), 1, 0, wpkt(2, 888));
    dep.run_for(SimDuration::millis(5));
    let p = dep.switch_index(original[0]).unwrap();
    assert_eq!(dep.peek(p, 0, 2), 888, "primary applied");
    assert_eq!(dep.peek(j, 0, 2), 888, "replica applied");

    // Cooldown applies to planner flapping, not explicit triggers beyond
    // the per-range guard; wait it out for the shrink.
    let t3 = dep.now() + dep.config().reconfig.cooldown;
    dep.schedule_trigger(t3, TriggerOp::Shrink, 0, 0, original[0]);
    dep.run_for(dep.config().reconfig.cooldown + SimDuration::millis(20));
    let shrunk = dep.controller_ranges(0)[0].clone();
    assert_eq!(shrunk.owners, vec![joiner], "group shrank to the joiner");
    assert!(shrunk.epoch > grown.epoch);
}

/// The telemetry-driven planner: with the policy enabled, a remote
/// switch hammering one range pulls that range onto itself — no explicit
/// trigger involved.
#[test]
fn planner_moves_hot_range_to_talker() {
    let mut cfg = SwishConfig::default();
    cfg.reconfig.enabled = true;
    cfg.reconfig.min_writes = 16;
    cfg.reconfig.min_advantage = 2;
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(12)
        .swish_config(cfg)
        .register(RegisterSpec::partitioned(0, "p", KEYS))
        .build(|_| Box::new(WriteNf));
    dep.settle();
    let t0 = dep.now();
    let talker = 2usize;
    let talker_id = dep.switch_ids()[talker];
    let before = dep.controller_ranges(0)[0].owners.clone();
    assert_ne!(before, vec![talker_id]);
    // Switch 2 ingresses a hot stream against range [0,16).
    for i in 0..120u64 {
        let key = (i % 8) as u16;
        dep.inject(
            t0 + SimDuration::micros(i * 200),
            talker,
            0,
            wpkt(key, 100 + i as u16),
        );
    }
    dep.run_for(SimDuration::millis(80));
    let after = dep.controller_ranges(0)[0].clone();
    assert_eq!(after.owners, vec![talker_id], "planner moved the hot range");
    assert!(
        dep.reconfig_events()
            .iter()
            .any(|e| matches!(e.event, ReconfigEvent::Planned { to, .. } if to == talker_id)),
        "move originated from the planner"
    );
    // Cold ranges stayed with their bootstrap owners.
    let master = dep.controller_ranges(0);
    assert_eq!(master[1].owners, vec![dep.switch_ids()[1]]);
    assert_eq!(master[2].owners, vec![dep.switch_ids()[2]]);
}

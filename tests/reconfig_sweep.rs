//! Migration-under-fault sweep: seeded random fault schedules with
//! reconfiguration triggers (moves and replica-group grows) interleaved
//! mid-episode, run against a partitioned deployment with every online
//! oracle armed — including the reconfiguration invariants (range-table
//! coverage, per-range epoch monotonicity, strictly increasing issued
//! epochs) and per-range convergence. A violation aborts with the seed
//! and the printed schedule, which replays the run bit-for-bit.

use std::net::Ipv4Addr;
use swishmem::oracle::{OracleConfig, OracleSuite};
use swishmem::prelude::*;
use swishmem::{trigger_token_op, NfApp, NfDecision, RegisterSpec, SharedState, TriggerOp};
use swishmem_simnet::{FaultAction, FaultGen};
use swishmem_wire::NodeId as WireNodeId;

/// `Set(payload_len)` per dst port against the partitioned register.
struct WriteNf;
impl NfApp for WriteNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.write(0, u32::from(pkt.flow.dst_port), u64::from(pkt.payload_len));
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

fn wpkt(port: u16, val: u16) -> DataPacket {
    DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            999,
            Ipv4Addr::new(10, 0, 0, 2),
            port,
        ),
        0,
        val,
    )
}

const KEYS: u32 = 48;
const EPISODES: usize = 3;
const TRIGGERS: usize = 3;

/// One sweep: a random crash/partition schedule from `seed` with
/// migration triggers interleaved, held to zero oracle violations.
fn run_migration_sweep(seed: u64) -> usize {
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(seed)
        .register(RegisterSpec::partitioned(0, "p", KEYS))
        .build(|_| Box::new(WriteNf));
    dep.settle();
    let t0 = dep.now();

    let horizon = SimDuration::millis(60);
    let mut gen = FaultGen::new(seed);
    let nodes = dep.switch_ids().to_vec();
    let links = dep.fault_links();
    let sched = gen.generate(&nodes, &links, horizon, EPISODES);

    // Candidate reconfigurations: move or grow each bootstrap range
    // toward each switch. Redundant candidates (target already owner,
    // target currently down) are rejected by the controller's guards —
    // the sweep's point is that any interleaving stays safe.
    let mut tokens = Vec::new();
    for start in [0u32, 16, 32] {
        for &sw in &nodes {
            tokens.push(trigger_token_op(TriggerOp::Move, 0, start, sw));
            tokens.push(trigger_token_op(TriggerOp::Grow, 0, start, sw));
        }
    }
    let sched = gen.interleave_triggers(sched, WireNodeId::CONTROLLER, &tokens, horizon, TRIGGERS);
    let sched_str = sched.to_string();
    dep.schedule_faults(t0, &sched);

    // Prefer writers the schedule never crashes so every write retries to
    // completion and the convergence oracle gets maximal coverage.
    let crash_victims: Vec<WireNodeId> = sched
        .events()
        .iter()
        .filter_map(|e| match e.action {
            FaultAction::Crash { node } => Some(node),
            _ => None,
        })
        .collect();
    let writers: Vec<usize> = (0..nodes.len())
        .filter(|&i| !crash_victims.contains(&nodes[i]))
        .collect();
    let writers = if writers.is_empty() { vec![0] } else { writers };

    for i in 0..48u64 {
        let key = (i % u64::from(KEYS)) as u16;
        let val = 100 + i as u16;
        let sw = writers[(i as usize) % writers.len()];
        dep.inject(t0 + SimDuration::micros(i * 1000), sw, 0, wpkt(key, val));
    }

    let ocfg = OracleConfig::new(t0 + horizon);
    let mut suite = OracleSuite::attach(&mut dep, ocfg);
    let end = t0 + horizon + ocfg.convergence_grace + SimDuration::millis(100);
    if let Err(v) = suite.run(&mut dep, end) {
        panic!(
            "oracle violation: {v}\n\
             replay: migration sweep seed={seed} episodes={EPISODES} \
             triggers={TRIGGERS} horizon={horizon}\n\
             {sched_str}"
        );
    }
    dep.reconfig_events().len()
}

const MIGRATION_SEEDS: [u64; 14] = [
    401, 402, 403, 404, 405, 406, 407, 408, 409, 410, 411, 412, 413, 414,
];

#[test]
fn migration_fault_sweep_zero_violations() {
    // Beyond zero violations, the sweep must actually reconfigure: the
    // controller logs bootstrap commits (3 per run) plus trigger-driven
    // Begin/Done/Commit activity on a healthy majority of seeds.
    let mut active = 0usize;
    for &seed in &MIGRATION_SEEDS {
        let events = run_migration_sweep(seed);
        if events > 3 {
            active += 1;
        }
    }
    assert!(
        active >= MIGRATION_SEEDS.len() / 2,
        "only {active} of {} seeds performed any reconfiguration",
        MIGRATION_SEEDS.len()
    );
}

#[test]
fn migration_sweep_schedules_have_triggers() {
    // The sweep must actually interleave reconfiguration triggers into
    // distinct fault schedules — not degenerate to plain fault sweeps.
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(1)
        .register(RegisterSpec::partitioned(0, "p", KEYS))
        .build(|_| Box::new(WriteNf));
    dep.settle();
    let nodes = dep.switch_ids().to_vec();
    let links = dep.fault_links();
    let tokens = [trigger_token_op(TriggerOp::Move, 0, 0, nodes[1])];
    let mut seen = std::collections::BTreeSet::new();
    for &seed in &MIGRATION_SEEDS {
        let mut gen = FaultGen::new(seed);
        let base = gen.generate(&nodes, &links, SimDuration::millis(60), EPISODES);
        let sched = gen.interleave_triggers(
            base,
            WireNodeId::CONTROLLER,
            &tokens,
            SimDuration::millis(60),
            TRIGGERS,
        );
        let trig = sched
            .events()
            .iter()
            .filter(|e| matches!(e.action, FaultAction::Trigger { .. }))
            .count();
        assert_eq!(trig, TRIGGERS, "seed {seed} lost triggers");
        seen.insert(sched.to_string());
    }
    assert!(
        seen.len() >= 12,
        "only {} distinct schedules across 14 seeds",
        seen.len()
    );
}

//! Consensus hardening gates (DESIGN.md §13): log compaction under a
//! long decree horizon, runtime replica-group reconfiguration under
//! fault injection, lease-validated follower reads at the partition
//! edge, and the adaptive failure detector versus gray links.
//!
//! Each test doubles as a named CI gate (see `scripts/verify.sh`):
//! * `compaction_sweep_long_horizon` — the slot window never overflows;
//!   decree volume of many compaction windows is sustained with zero
//!   oracle violations and no `ConsensusError`.
//! * `reconfiguration_under_fault_sweep` — a dead replica is replaced by
//!   a spare at runtime, 12 seeds, full fault plane active.
//! * `detector_cuts_failover_gap` / `gray_links_cause_no_spurious_elections`
//!   — the phi-accrual detector beats the static timeout on real
//!   crashes without false positives on slow-but-alive links.

use std::net::Ipv4Addr;
use swishmem::oracle::{OracleConfig, OracleSuite};
use swishmem::prelude::*;
use swishmem::{
    ConfigEventKind, Deployment, NfApp, NfDecision, RegisterSpec, SharedState, TriggerOp,
};
use swishmem_simnet::{FaultAction, FaultGen, FaultSchedule, LinkOverlay};
use swishmem_wire::NodeId as WireNodeId;

/// `Set(payload_len)` per dst port against the partitioned register.
struct WriteNf;
impl NfApp for WriteNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.write(0, u32::from(pkt.flow.dst_port), u64::from(pkt.payload_len));
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

fn wpkt(port: u16, val: u16) -> DataPacket {
    DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            999,
            Ipv4Addr::new(10, 0, 0, 2),
            port,
        ),
        0,
        val,
    )
}

const KEYS: u32 = 48;

fn build_with(seed: u64, spares: u8, tweak: impl FnOnce(&mut SwishConfig)) -> Deployment {
    let mut cfg = SwishConfig {
        ctrl_replicas: 3,
        ..Default::default()
    };
    tweak(&mut cfg);
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(seed)
        .swish_config(cfg)
        .ctrl_spares(spares)
        .register(RegisterSpec::partitioned(0, "p", KEYS))
        .build(|_| Box::new(WriteNf));
    dep.settle();
    dep
}

fn inject_writes(
    dep: &mut Deployment,
    t0: SimTime,
    n: u64,
    window: SimDuration,
    writers: &[usize],
) {
    let step = window.as_nanos() / n.max(1);
    for i in 0..n {
        let key = (i % u64::from(KEYS)) as u16;
        let sw = writers[(i as usize) % writers.len()];
        dep.inject(
            t0 + SimDuration::nanos(i * step),
            sw,
            0,
            wpkt(key, 100 + i as u16),
        );
    }
}

/// Long-horizon compaction gate: with a tiny compaction threshold, a
/// stream of ping-ponging migrations pushes the committed log through
/// several compaction windows. The slot window must stay bounded by
/// compaction (never anywhere near `SLOT_CAP`), snapshots must actually
/// be cut, no replica may report a `ConsensusError`, and the entire
/// oracle suite stays silent.
#[test]
fn compaction_sweep_long_horizon() {
    let threshold = 4usize;
    let mut dep = build_with(41, 0, |c| c.log_compact_threshold = threshold);
    let t0 = dep.now();

    // Five rounds of three concurrent range migrations: range j starts
    // owned by switch j, and round r moves it to a switch that is never
    // its current owner (ping-pong over the other two).
    let switches = dep.switch_ids().to_vec();
    let spacing = SimDuration::millis(60); // > planner cooldown (50 ms)
    for r in 0..5u64 {
        let t = t0 + SimDuration::millis(8) + spacing.times(r);
        dep.schedule_trigger(t, TriggerOp::Move, 0, 0, switches[(1 + r as usize % 2) % 3]);
        dep.schedule_trigger(
            t,
            TriggerOp::Move,
            0,
            16,
            switches[(2 * (r as usize % 2)) % 3],
        );
        dep.schedule_trigger(t, TriggerOp::Move, 0, 32, switches[r as usize % 2]);
    }
    inject_writes(&mut dep, t0, 96, SimDuration::millis(280), &[0, 1, 2]);

    let quiescent = t0 + SimDuration::millis(340);
    let ocfg = OracleConfig::new(quiescent);
    let mut suite = OracleSuite::attach(&mut dep, ocfg);
    let end = quiescent + ocfg.convergence_grace + SimDuration::millis(100);
    if let Err(v) = suite.run(&mut dep, end) {
        panic!("oracle violation during compaction sweep: {v}");
    }

    let m = dep.controller().consensus_metrics();
    assert!(
        m.commit >= 4 * threshold as u64,
        "only {} decrees committed — the sweep must span four compaction windows",
        m.commit
    );
    assert!(m.log_compactions >= 1, "no compaction ran: {m:?}");
    assert!(m.snapshot_bytes > 0, "compaction cut no snapshot: {m:?}");
    let errors = dep.controller().consensus_errors();
    assert!(errors.is_empty(), "consensus errors: {errors:?}");
    // The live window is recycled behind the apply cursor: on every
    // replica it stays within one threshold of growth plus in-flight
    // slack, nowhere near the `SLOT_CAP` (1024) storage bound.
    let group = dep.controller();
    for i in 0..group.len() {
        let Some(c) = group.replica(i) else { continue };
        let window = m.commit.saturating_sub(c.log_base());
        assert!(
            window < 4 * threshold as u64,
            "replica {i}: live window {window} slots — compaction is not keeping up"
        );
    }
    let (_, leader) = group.leader().expect("leader after quiescence");
    assert!(leader.log_base() > 0, "leader never advanced its log base");
}

const RECONFIG_SEEDS: [u64; 12] = [901, 902, 903, 904, 905, 906, 907, 908, 909, 910, 911, 912];

/// Runtime replica replacement under fire: replica 1 dies for good,
/// an operator decree removes it from the group and admits the spare,
/// all while a random link/switch fault schedule and a live migration
/// run. Every seed must end with one agreed three-member group (dead
/// replica out, spare in), a working quorum, and zero violations.
#[test]
fn reconfiguration_under_fault_sweep() {
    for &seed in &RECONFIG_SEEDS {
        let mut dep = build_with(seed, 1, |_| {});
        assert_eq!(dep.controller().len(), 4, "3 active + 1 spare");
        assert_eq!(dep.ctrl_active(), 3);
        let t0 = dep.now();
        let ctrls = dep.controller_ids().to_vec();
        let horizon = SimDuration::millis(60);

        // The hardening scenario: crash a follower for good, decree it
        // out, decree the spare in.
        dep.schedule_ctrl_fail(t0 + SimDuration::millis(6), 1);
        dep.schedule_ctrl_remove(t0 + SimDuration::millis(14), 1);
        dep.schedule_ctrl_add(t0 + SimDuration::millis(22), 3);
        let target = dep.switch_ids()[1];
        dep.schedule_trigger(t0 + SimDuration::millis(10), TriggerOp::Move, 0, 0, target);

        // Random switch/link faults on top (controller crashes come from
        // the scenario itself, so the generator only gets switches).
        let nodes = dep.switch_ids().to_vec();
        let links = dep.fault_links();
        let sched = FaultGen::new(seed).generate(&nodes, &links, horizon, 4);
        let sched_str = sched.to_string();
        dep.schedule_faults(t0, &sched);
        let crash_victims: Vec<WireNodeId> = sched
            .events()
            .iter()
            .filter_map(|e| match e.action {
                FaultAction::Crash { node } => Some(node),
                _ => None,
            })
            .collect();
        let writers: Vec<usize> = (0..nodes.len())
            .filter(|&i| !crash_victims.contains(&nodes[i]))
            .collect();
        let writers = if writers.is_empty() { vec![0] } else { writers };
        inject_writes(&mut dep, t0, 48, SimDuration::millis(40), &writers);

        let quiescent = t0 + horizon + SimDuration::millis(20);
        let ocfg = OracleConfig::new(quiescent);
        let mut suite = OracleSuite::attach(&mut dep, ocfg);
        let end = quiescent + ocfg.convergence_grace + SimDuration::millis(100);
        if let Err(v) = suite.run(&mut dep, end) {
            panic!("seed {seed}: oracle violation during replica replacement: {v}\n{sched_str}");
        }

        // The committed log recorded both membership decrees…
        let events = dep.controller_events();
        assert!(
            events
                .iter()
                .any(|e| e.kind == ConfigEventKind::ReplicaRemoved(ctrls[1])),
            "seed {seed}: dead replica never decreed out: {events:?}"
        );
        assert!(
            events
                .iter()
                .any(|e| e.kind == ConfigEventKind::ReplicaAdded(ctrls[3])),
            "seed {seed}: spare never decreed in: {events:?}"
        );
        // …and every live replica agrees on the one resulting group.
        let want = {
            let mut g = vec![ctrls[0], ctrls[2], ctrls[3]];
            g.sort();
            g
        };
        let group = dep.controller();
        for i in [0usize, 2, 3] {
            if group.is_failed(i) {
                continue; // random schedule may have a switch down; replicas 0/2/3 never crash here
            }
            let mut got = group.replica(i).expect("live replica").consensus_group();
            got.sort();
            assert_eq!(
                got, want,
                "seed {seed}: replica {i} disagrees on the reconfigured membership"
            );
        }
        assert_eq!(
            group.quorum(),
            2,
            "seed {seed}: wrong quorum after replacement"
        );
        let errors = group.consensus_errors();
        assert!(
            errors.is_empty(),
            "seed {seed}: consensus errors: {errors:?}"
        );
    }
}

/// A membership decree racing a leader crash must converge to exactly
/// one membership: the `AddReplica` trigger fires fabric-wide the same
/// instant the leader dies. Whether the decree survives into the new
/// term (the proposal reached a quorum) or dies with the old leader,
/// every replica must end on the *same* group with the spare admitted
/// at most once — never a torn membership. A post-quiescence re-issue
/// must then land the spare everywhere, proving no torn state lingers.
#[test]
fn membership_decree_racing_leader_crash_converges() {
    let mut admitted_in_race = 0usize;
    for seed in [31u64, 32, 33, 34] {
        let mut dep = build_with(seed, 1, |_| {});
        let t0 = dep.now();
        let ctrls = dep.controller_ids().to_vec();
        let t_race = t0 + SimDuration::millis(8);
        dep.schedule_ctrl_add(t_race, 3);
        dep.schedule_ctrl_fail(t_race, 0);
        dep.schedule_ctrl_recover(t_race + SimDuration::millis(25), 0);
        inject_writes(&mut dep, t0, 48, SimDuration::millis(30), &[0, 1, 2]);

        let quiescent = t0 + SimDuration::millis(60);
        let ocfg = OracleConfig::new(quiescent);
        let mut suite = OracleSuite::attach(&mut dep, ocfg);
        if let Err(v) = suite.run(&mut dep, quiescent) {
            panic!("seed {seed}: oracle violation in membership/crash race: {v}");
        }

        // Phase 1 — exactly one membership: every live replica holds the
        // same group, spare admitted at most once.
        let spare_count = |dep: &Deployment, seed: u64, phase: &str| -> usize {
            let group = dep.controller();
            let mut agreed: Option<Vec<WireNodeId>> = None;
            for i in 0..group.len() {
                if group.is_failed(i) {
                    continue;
                }
                let mut g = group.replica(i).expect("live replica").consensus_group();
                g.sort();
                assert!(
                    g.iter().filter(|&&n| n == ctrls[3]).count() <= 1,
                    "seed {seed} ({phase}): replica {i} admitted the spare twice: {g:?}"
                );
                match &agreed {
                    None => agreed = Some(g),
                    Some(want) => assert_eq!(
                        &g, want,
                        "seed {seed} ({phase}): replica {i} diverged from the agreed membership"
                    ),
                }
            }
            let agreed = agreed.unwrap_or_else(|| panic!("seed {seed}: no live replica"));
            agreed.iter().filter(|&&n| n == ctrls[3]).count()
        };
        admitted_in_race += spare_count(&dep, seed, "race");

        // Phase 2 — re-issuing the decree after the dust settles must
        // admit the spare everywhere (idempotent if it already landed).
        dep.schedule_ctrl_add(dep.now() + SimDuration::millis(2), 3);
        let end = quiescent + ocfg.convergence_grace + SimDuration::millis(100);
        if let Err(v) = suite.run(&mut dep, end) {
            panic!("seed {seed}: oracle violation after decree re-issue: {v}");
        }
        assert_eq!(
            spare_count(&dep, seed, "re-issue"),
            1,
            "seed {seed}: spare still missing after an uncontended decree"
        );
    }
    // The race itself must land the decree at least once across the
    // sweep, or the "decree survives the crash" path is never exercised.
    assert!(
        admitted_in_race >= 1,
        "the decree never survived the crash in any seed"
    );
}

/// Lease-edge gate: a follower cut off from the leader serves lookups
/// only while its leader lease is warm. Within the lease the reply is
/// still provably fresh (the staleness oracle watches every delivered
/// `DirReply` against the master-table history); past the lease the
/// follower must *drop* the lookup rather than answer from a possibly
/// stale table — the querying switch simply observes no reply.
#[test]
fn follower_lease_blocks_stale_reads_across_partition() {
    let mut dep = build_with(53, 0, |_| {});
    let t0 = dep.now();
    let ctrls = dep.controller_ids().to_vec();
    // Isolate follower replica 2 from its peers (switches keep their
    // paths to it, so lookups still arrive) for 30 ms — far beyond the
    // 8 ms directory lease.
    let cut = FaultSchedule::new().partition(
        &[ctrls[2]],
        &[ctrls[0], ctrls[1]],
        SimDuration::millis(5),
        SimDuration::millis(30),
    );
    dep.schedule_faults(t0, &cut);

    // Warm lease (1 ms into the partition): served.
    dep.dir_lookup_at(t0 + SimDuration::millis(6), 0, 2, 0, 3);
    // Expired lease (20 ms into the partition): dropped.
    dep.dir_lookup_at(t0 + SimDuration::millis(25), 0, 2, 0, 7);
    // Healed and lease renewed: served again.
    dep.dir_lookup_at(t0 + SimDuration::millis(48), 0, 2, 0, 7);

    let quiescent = t0 + SimDuration::millis(55);
    let ocfg = OracleConfig::new(quiescent);
    let mut suite = OracleSuite::attach(&mut dep, ocfg);
    let end = quiescent + ocfg.convergence_grace + SimDuration::millis(100);
    // Observe the mid-partition outcome before the healed re-lookup can
    // overwrite the cache entry.
    if let Err(v) = suite.run(&mut dep, t0 + SimDuration::millis(40)) {
        panic!("oracle violation at the lease edge: {v}");
    }
    let served_while_cut = dep.dir_owners(0, 0, 7).is_some();
    if let Err(v) = suite.run(&mut dep, end) {
        panic!("oracle violation at the lease edge: {v}");
    }

    assert!(
        dep.dir_owners(0, 0, 3).is_some(),
        "lookup within the lease was not served"
    );
    assert!(
        !served_while_cut,
        "follower served a lookup after its lease expired mid-partition"
    );
    assert!(
        dep.dir_owners(0, 0, 7).is_some(),
        "healed follower with a renewed lease must serve again"
    );
    let m = dep.controller().consensus_metrics();
    assert!(
        m.follower_reads >= 1,
        "no follower ever served a read: {m:?}"
    );
}

/// Gray links must not destabilize leadership: 2 ms of random jitter on
/// every replica-replica link (heartbeats arrive late and reordered,
/// but arrive) for 50 ms. The adaptive detector widens its timeout with
/// the observed inter-arrival deviation, so no replica ever suspects
/// the leader, and the election log stays frozen.
#[test]
fn gray_links_cause_no_spurious_elections() {
    let mut dep = build_with(67, 0, |_| {});
    let t0 = dep.now();
    let ctrls = dep.controller_ids().to_vec();
    let elections_before = dep.controller().elections().len();

    let mut sched = FaultSchedule::new();
    for (i, &a) in ctrls.iter().enumerate() {
        for &b in &ctrls[i + 1..] {
            sched = sched.degrade_for(
                a,
                b,
                SimDuration::millis(10),
                SimDuration::millis(50),
                LinkOverlay::jitter(SimDuration::millis(2)),
            );
        }
    }
    dep.schedule_faults(t0, &sched);
    inject_writes(&mut dep, t0, 48, SimDuration::millis(50), &[0, 1, 2]);

    let quiescent = t0 + SimDuration::millis(70);
    let ocfg = OracleConfig::new(quiescent);
    let mut suite = OracleSuite::attach(&mut dep, ocfg);
    let end = quiescent + ocfg.convergence_grace + SimDuration::millis(100);
    if let Err(v) = suite.run(&mut dep, end) {
        panic!("oracle violation under gray links: {v}");
    }

    let m = dep.controller().consensus_metrics();
    assert_eq!(
        dep.controller().elections().len(),
        elections_before,
        "gray links caused a spurious election"
    );
    assert_eq!(
        m.suspect_events, 0,
        "the adaptive detector falsely suspected a live leader: {m:?}"
    );
}

/// Measure the failover gap (leader crash → committed successor
/// election) with the detector in a given mode.
fn failover_gap(adaptive: bool) -> SimDuration {
    let mut dep = build_with(71, 0, |c| c.adaptive_detector = adaptive);
    // Warm-up: the detector needs a few beacon inter-arrival samples.
    dep.run_for(SimDuration::millis(30));
    let t_crash = dep.now();
    dep.schedule_ctrl_fail(t_crash, 0);
    inject_writes(&mut dep, t_crash, 24, SimDuration::millis(20), &[0, 1, 2]);
    dep.run_for(SimDuration::millis(60));

    let elections = dep.controller().elections();
    let successor = elections
        .iter()
        .find(|e| e.time >= t_crash)
        .unwrap_or_else(|| panic!("no successor election after the crash: {elections:?}"));
    successor.time.since(t_crash)
}

/// E22's CI gate: on an actual leader crash the phi-accrual detector —
/// having learned that healthy beacons arrive every ~5 ms with almost
/// no deviation — fires well before the static 15 ms timeout, so the
/// measured failover gap shrinks strictly below the static detector's
/// and below E21's ~22 ms headline gap.
#[test]
fn detector_cuts_failover_gap() {
    let adaptive = failover_gap(true);
    let fixed = failover_gap(false);
    assert!(
        adaptive < fixed,
        "adaptive detector ({adaptive}) is no faster than the static timeout ({fixed})"
    );
    assert!(
        adaptive < SimDuration::millis(22),
        "adaptive failover gap {adaptive} does not beat the E21 headline (~22 ms)"
    );
}

//! The in-fabric deployment scenario of §3.2: NF switches as leaves
//! behind spine relays. All SwiShmem protocols must work across the
//! extra hop, and the wire-fidelity check validates every frame's codec
//! round-trip along the way.

#![allow(clippy::field_reassign_with_default)] // configs read clearer as overrides

use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::{Fabric, NfApp, NfDecision, RegisterSpec, SharedState};
use swishmem_wire::NodeId as N;

struct RwNf;
impl NfApp for RwNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        let key = u32::from(pkt.flow.dst_port);
        if pkt.flow.proto == 17 {
            if pkt.payload_len > 0 {
                st.write(0, key, u64::from(pkt.payload_len));
            }
            st.add(1, key, 1);
            NfDecision::Forward {
                dst: NodeId(HOST_BASE),
                pkt: *pkt,
            }
        } else {
            let v = st.read(0, key);
            let mut out = *pkt;
            out.flow_seq = v as u32;
            NfDecision::Forward {
                dst: NodeId(HOST_BASE),
                pkt: out,
            }
        }
    }
}

fn deployment(spines: usize) -> Deployment {
    let mut dep = DeploymentBuilder::new(4)
        .hosts(1)
        .seed(61)
        .fabric(Fabric::LeafSpine { spines })
        .register(RegisterSpec::sro(0, "t", 256))
        .register(RegisterSpec::ewo_counter(1, "c", 256))
        .build(|_| Box::new(RwNf));
    // Leaf-spine runs double as the codec-fidelity gauntlet: every frame
    // on every hop must round-trip through the real byte encodings.
    dep.sim.set_wire_check(true);
    dep
}

fn wpkt(port: u16, val: u16) -> DataPacket {
    DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            900,
            Ipv4Addr::new(10, 0, 0, 2),
            port,
        ),
        0,
        val,
    )
}

#[test]
fn sro_chain_works_across_spines() {
    let mut dep = deployment(2);
    dep.settle();
    let t = dep.now();
    dep.inject(t, 1, 0, wpkt(7, 123));
    dep.run_for(SimDuration::millis(30));
    for i in 0..4 {
        assert_eq!(dep.peek(i, 0, 7), 123, "switch {i}");
    }
    // The chain write crossed spine relays: spine nodes processed frames.
    let spine_rx = dep.sim.stats().node_rx(N(swishmem::SPINE_BASE)).packets
        + dep.sim.stats().node_rx(N(swishmem::SPINE_BASE + 1)).packets;
    assert!(spine_rx > 0, "no traffic crossed the spines");
}

#[test]
fn ewo_converges_across_spines() {
    let mut dep = deployment(3);
    dep.settle();
    let t = dep.now();
    for i in 0..12u64 {
        dep.inject(
            t + SimDuration::micros(i * 20),
            (i % 4) as usize,
            0,
            wpkt(3, 0),
        );
    }
    dep.run_for(SimDuration::millis(30));
    for i in 0..4 {
        assert_eq!(dep.peek(i, 1, 3), 12, "switch {i} diverged");
    }
}

#[test]
fn spine_failure_breaks_only_pinned_pairs() {
    let mut dep = deployment(2);
    dep.settle();
    // Fail spine 0: leaf pairs pinned to it lose connectivity (static
    // ECMP without reroute — the honest consequence), pairs pinned to
    // spine 1 keep working.
    let t = dep.now();
    dep.sim.schedule_fail(t, N(swishmem::SPINE_BASE));
    dep.run_for(SimDuration::millis(1));
    // Find a pair routed via spine 1 by the deterministic hash:
    // h = a*31 + b; via = spines[h % 2].
    let via1 = (0..4u64)
        .flat_map(|a| (0..4u64).map(move |b| (a, b)))
        .find(|&(a, b)| a != b && (a * 31 + b) % 2 == 1)
        .unwrap();
    // EWO write at leaf `via1.0`: its eager mirror to `via1.1` survives.
    let t = dep.now();
    dep.inject(t, via1.0 as usize, 0, wpkt(9, 0));
    dep.run_for(SimDuration::millis(5));
    assert_eq!(
        dep.peek(via1.1 as usize, 1, 9),
        1,
        "pair via healthy spine must work"
    );
    assert!(
        dep.sim
            .stats()
            .dropped(swishmem_simnet::DropReason::NodeDown)
            .packets
            > 0,
        "traffic pinned to the dead spine is dropped"
    );
}

#[test]
fn full_mesh_and_leaf_spine_agree_on_final_state() {
    let run = |fabric: Fabric| -> Vec<u64> {
        let mut dep = DeploymentBuilder::new(3)
            .hosts(1)
            .seed(62)
            .fabric(fabric)
            .register(RegisterSpec::sro(0, "t", 64))
            .register(RegisterSpec::ewo_counter(1, "c", 64))
            .build(|_| Box::new(RwNf));
        dep.settle();
        let t = dep.now();
        for k in 0..10u16 {
            dep.inject(
                t + SimDuration::millis(u64::from(k)),
                usize::from(k % 3),
                0,
                wpkt(k, 50 + k),
            );
            dep.inject(
                t + SimDuration::millis(u64::from(k)) + SimDuration::micros(7),
                usize::from((k + 1) % 3),
                0,
                wpkt(k, 0), // counter-only packet
            );
        }
        dep.run_for(SimDuration::millis(100));
        (0..10u32)
            .flat_map(|k| [dep.peek(0, 0, k), dep.peek(2, 1, k)])
            .collect()
    };
    // The protocols' outcomes are fabric-independent (latency differs,
    // final state does not).
    assert_eq!(run(Fabric::FullMesh), run(Fabric::LeafSpine { spines: 2 }));
}

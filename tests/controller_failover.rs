//! Replicated control plane under fire: a 3-replica controller group
//! (single-decree consensus, DESIGN.md §12) driven through leader
//! crashes while a key-range migration is mid-flight. The behavioral
//! bar from the paper's "no single point of failure" goal: the fabric
//! keeps accepting foreground writes throughout (zero write
//! unavailability), the migration converges under the surviving
//! quorum, and every online oracle — including the cross-replica
//! issued-epoch-uniqueness and no-split-brain invariants — stays
//! silent. Failover gaps are measured from the committed
//! `LeaderElected` log entries.

use std::net::Ipv4Addr;
use swishmem::oracle::{OracleConfig, OracleSuite};
use swishmem::prelude::*;
use swishmem::{
    trigger_token_op, ConfigEventKind, Deployment, NfApp, NfDecision, ReconfigEvent, RegisterSpec,
    SharedState, TriggerOp,
};
use swishmem_simnet::{FaultAction, FaultGen};
use swishmem_wire::NodeId as WireNodeId;

/// `Set(payload_len)` per dst port against the partitioned register.
struct WriteNf;
impl NfApp for WriteNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.write(0, u32::from(pkt.flow.dst_port), u64::from(pkt.payload_len));
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

fn wpkt(port: u16, val: u16) -> DataPacket {
    DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            999,
            Ipv4Addr::new(10, 0, 0, 2),
            port,
        ),
        0,
        val,
    )
}

const KEYS: u32 = 48;

fn build(seed: u64) -> Deployment {
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(seed)
        .ctrl_replicas(3)
        .register(RegisterSpec::partitioned(0, "p", KEYS))
        .build(|_| Box::new(WriteNf));
    dep.settle();
    dep
}

/// Spread `n` writes over `window`, one per key round-robin, across all
/// three switches (none of which ever crashes in this suite — only
/// controller replicas die, so every write must complete).
fn inject_writes(dep: &mut Deployment, t0: SimTime, n: u64, window: SimDuration) {
    let step = window.as_nanos() / n.max(1);
    for i in 0..n {
        let key = (i % u64::from(KEYS)) as u16;
        let val = 100 + i as u16;
        dep.inject(
            t0 + SimDuration::nanos(i * step),
            (i % 3) as usize,
            0,
            wpkt(key, val),
        );
    }
}

#[test]
fn three_replica_smoke() {
    let mut dep = build(7);
    let group = dep.controller();
    assert_eq!(group.len(), 3, "ctrl_replicas(3) must build 3 replicas");
    assert_eq!(group.quorum(), 2);
    assert_eq!(group.ids()[0], WireNodeId::CONTROLLER);
    // Replica 0 bootstraps leadership through the consensus log, so the
    // settled deployment has exactly one acting leader: replica 0.
    let (leader, _) = dep
        .controller()
        .leader()
        .expect("settled group has an acting leader");
    assert_eq!(leader, WireNodeId::CONTROLLER);

    // Foreground writes behave exactly as under a singleton controller.
    let t0 = dep.now();
    inject_writes(&mut dep, t0, 48, SimDuration::millis(10));
    dep.run_for(SimDuration::millis(40));
    for i in 0..48u64 {
        let key = (i % u64::from(KEYS)) as u32;
        let owner_val = (0..3)
            .map(|sw| dep.peek(sw, 0, key))
            .max()
            .unwrap_or_default();
        assert_eq!(owner_val, 100 + i, "key {key} lost its write");
    }
    // Consensus actually ran: the group committed a log prefix.
    let m = dep.controller().consensus_metrics();
    assert!(m.commit > 0, "no consensus slots committed: {m:?}");
    assert!(m.msgs_sent > 0);
}

#[test]
fn even_replica_counts_round_up_to_odd() {
    let dep = DeploymentBuilder::new(3)
        .hosts(1)
        .ctrl_replicas(4)
        .register(RegisterSpec::partitioned(0, "p", KEYS))
        .build(|_| Box::new(WriteNf));
    assert_eq!(
        dep.controller().len(),
        5,
        "even group sizes must round up so a strict majority exists"
    );
}

#[test]
fn leader_crash_fails_over_and_writes_complete() {
    let mut dep = build(11);
    let t0 = dep.now();

    inject_writes(&mut dep, t0, 48, SimDuration::millis(30));
    let t_crash = t0 + SimDuration::millis(5);
    dep.schedule_ctrl_fail(t_crash, 0);
    dep.schedule_ctrl_recover(t0 + SimDuration::millis(45), 0);

    let quiescent = t0 + SimDuration::millis(60);
    let ocfg = OracleConfig::new(quiescent);
    let mut suite = OracleSuite::attach(&mut dep, ocfg);
    let end = quiescent + ocfg.convergence_grace + SimDuration::millis(100);
    if let Err(v) = suite.run(&mut dep, end) {
        panic!("oracle violation during leader failover: {v}");
    }

    // A successor won an election after the crash, and the committed
    // log records it (this is the E21 failover-gap measurement).
    let elections = dep.controller().elections();
    let successor = elections
        .iter()
        .find(|e| e.time >= t_crash && !matches!(e.kind, ConfigEventKind::LeaderElected(n) if n == WireNodeId::CONTROLLER))
        .unwrap_or_else(|| panic!("no successor election after the crash: {elections:?}"));
    let gap = successor.time.since(t_crash);
    assert!(
        gap <= SimDuration::millis(60),
        "failover took {gap} — longer than 4x failure_timeout"
    );

    // Exactly one acting leader at the end (replica 0 recovered as a
    // follower or re-won — either way no dual leadership persists).
    let group = dep.controller();
    let live_leaders = (0..group.len())
        .filter(|&i| !group.is_failed(i))
        .filter(|&i| {
            group
                .replica(i)
                .map(|c| c.is_acting_leader())
                .unwrap_or(false)
        })
        .count();
    assert_eq!(live_leaders, 1, "split brain after recovery");
}

/// One probe run: trigger a move of range `[0, …)` to switch 1 and
/// record when the controller logged `Begin` and first `Done`.
fn probe_migration(seed: u64) -> (SimTime, SimTime, SimTime) {
    let mut dep = build(seed);
    let t0 = dep.now();
    let target = dep.switch_ids()[1];
    let t_trig = t0 + SimDuration::millis(8);
    dep.schedule_trigger(t_trig, TriggerOp::Move, 0, 0, target);
    dep.run_for(SimDuration::millis(50));
    let log = dep.reconfig_events();
    let begin = log
        .iter()
        .find(|e| matches!(e.event, ReconfigEvent::Begin { start: 0, .. }))
        .unwrap_or_else(|| panic!("seed {seed}: probe never began the migration: {log:?}"));
    let done = log
        .iter()
        .find(|e| matches!(e.event, ReconfigEvent::Done { start: 0, .. }))
        .unwrap_or_else(|| panic!("seed {seed}: probe never finished the transfer: {log:?}"));
    (t0, begin.time, done.time)
}

/// One measured run: same seed and trigger as the probe, plus a leader
/// crash at `t_crash` (recovering 25 ms later). Returns the observed
/// failover gap. Everything up to the crash replays the probe
/// bit-for-bit, so crash points derived from probe times land exactly
/// where intended.
fn run_crash_at(seed: u64, t_crash: SimTime, label: &str) -> SimDuration {
    let mut dep = build(seed);
    let t0 = dep.now();
    let target = dep.switch_ids()[1];
    dep.schedule_trigger(t0 + SimDuration::millis(8), TriggerOp::Move, 0, 0, target);
    inject_writes(&mut dep, t0, 48, SimDuration::millis(30));
    dep.schedule_ctrl_fail(t_crash, 0);
    dep.schedule_ctrl_recover(t_crash + SimDuration::millis(25), 0);

    let quiescent = t0 + SimDuration::millis(70);
    let ocfg = OracleConfig::new(quiescent);
    let mut suite = OracleSuite::attach(&mut dep, ocfg);
    let end = quiescent + ocfg.convergence_grace + SimDuration::millis(100);
    if let Err(v) = suite.run(&mut dep, end) {
        panic!("seed {seed} ({label}): oracle violation: {v}");
    }

    // The migration must converge under the surviving quorum: a Commit
    // for the moved range whose owners include the destination.
    let log = dep.reconfig_events();
    let committed = log.iter().any(|e| {
        matches!(&e.event,
            ReconfigEvent::Commit { start: 0, owners, .. } if owners.contains(&target))
    });
    assert!(
        committed,
        "seed {seed} ({label}): migration abandoned after leader crash: {log:?}"
    );

    // Failover gap from the committed election log.
    let elections = dep.controller().elections();
    let successor = elections
        .iter()
        .find(|e| e.time >= t_crash)
        .unwrap_or_else(|| {
            panic!("seed {seed} ({label}): no election after leader crash: {elections:?}")
        });
    successor.time.since(t_crash)
}

const FAILOVER_SEEDS: [u64; 12] = [501, 502, 503, 504, 505, 506, 507, 508, 509, 510, 511, 512];

/// The E21 gate: for every seed, crash the leader mid-`Transferring`
/// (between `Begin` and `Done`) and again at the `Done` boundary (the
/// switches' dual-owner window, with the commit decision in flight).
/// Both runs must keep all 48 foreground writes (the convergence oracle
/// fails otherwise — zero write unavailability), finish the migration,
/// and elect a successor within bounded time.
#[test]
fn crash_during_migration_sweep() {
    let mut worst = SimDuration::ZERO;
    for &seed in &FAILOVER_SEEDS {
        let (_t0, t_begin, t_done) = probe_migration(seed);
        assert!(t_begin < t_done, "seed {seed}: inverted probe times");

        let mid = t_begin + SimDuration::nanos(t_done.since(t_begin).as_nanos() / 2);
        let g1 = run_crash_at(seed, mid, "mid-Transferring");
        let g2 = run_crash_at(seed, t_done, "dual-owner boundary");
        worst = worst.max(g1).max(g2);
    }
    // Elections are staggered by failure_timeout + idx·heartbeat, so a
    // successor must exist well within 4x the failure timeout.
    assert!(
        worst <= SimDuration::millis(60),
        "worst failover gap {worst} exceeds bound"
    );
}

/// Randomized fault sweep over the replicated deployment: controller
/// replicas join the crash/partition candidate pool
/// (`FaultGen::generate_with_controllers`, which keeps a quorum alive
/// by construction) while migration triggers race the schedule. Any
/// interleaving must stay silent under the full oracle suite — the
/// cross-replica epoch-uniqueness and split-brain invariants included.
#[test]
fn randomized_fault_sweep_with_replica_crashes() {
    let mut ctrl_crashes = 0usize;
    for seed in [701u64, 702, 703, 704, 705, 706, 707, 708] {
        let mut dep = build(seed);
        let t0 = dep.now();
        let horizon = SimDuration::millis(60);
        let nodes = dep.switch_ids().to_vec();
        let ctrls = dep.controller_ids().to_vec();
        let links = dep.fault_links();
        let mut gen = FaultGen::new(seed);
        let sched = gen.generate_with_controllers(&nodes, &ctrls, &links, horizon, 5);
        let tokens: Vec<u64> = nodes
            .iter()
            .flat_map(|&sw| {
                [
                    trigger_token_op(TriggerOp::Move, 0, 0, sw),
                    trigger_token_op(TriggerOp::Grow, 0, 16, sw),
                ]
            })
            .collect();
        let sched = gen.interleave_triggers(sched, WireNodeId::CONTROLLER, &tokens, horizon, 2);
        let sched_str = sched.to_string();
        dep.schedule_faults(t0, &sched);
        ctrl_crashes += sched
            .events()
            .iter()
            .filter(|e| matches!(e.action, FaultAction::Crash { node } if ctrls.contains(&node)))
            .count();

        // Writers the schedule never crashes, so every write must land.
        let crash_victims: Vec<WireNodeId> = sched
            .events()
            .iter()
            .filter_map(|e| match e.action {
                FaultAction::Crash { node } => Some(node),
                _ => None,
            })
            .collect();
        let writers: Vec<usize> = (0..nodes.len())
            .filter(|&i| !crash_victims.contains(&nodes[i]))
            .collect();
        let writers = if writers.is_empty() { vec![0] } else { writers };
        for i in 0..48u64 {
            let key = (i % u64::from(KEYS)) as u16;
            let sw = writers[(i as usize) % writers.len()];
            dep.inject(
                t0 + SimDuration::micros(i * 1000),
                sw,
                0,
                wpkt(key, 100 + i as u16),
            );
        }

        let ocfg = OracleConfig::new(t0 + horizon);
        let mut suite = OracleSuite::attach(&mut dep, ocfg);
        let end = t0 + horizon + ocfg.convergence_grace + SimDuration::millis(100);
        if let Err(v) = suite.run(&mut dep, end) {
            panic!(
                "oracle violation: {v}\n\
                 replay: replicated sweep seed={seed} episodes=5 triggers=2 \
                 horizon={horizon}\n{sched_str}"
            );
        }
    }
    // The sweep must actually exercise controller crashes somewhere.
    assert!(
        ctrl_crashes >= 2,
        "only {ctrl_crashes} controller crashes across the whole sweep"
    );
}

/// A replicated run is a pure function of its seed: replaying the
/// mid-migration leader crash twice yields identical register state,
/// reconfiguration logs, election logs, and consensus counters.
#[test]
fn replicated_failover_is_bit_reproducible() {
    let fingerprint = |seed: u64| -> String {
        let mut dep = build(seed);
        let t0 = dep.now();
        let target = dep.switch_ids()[1];
        dep.schedule_trigger(t0 + SimDuration::millis(8), TriggerOp::Move, 0, 0, target);
        inject_writes(&mut dep, t0, 48, SimDuration::millis(30));
        dep.schedule_ctrl_fail(t0 + SimDuration::millis(12), 0);
        dep.schedule_ctrl_recover(t0 + SimDuration::millis(37), 0);
        dep.run_for(SimDuration::millis(90));
        let peeks: Vec<u64> = (0..3)
            .flat_map(|sw| (0..KEYS).map(move |k| (sw, k)))
            .map(|(sw, k)| dep.peek(sw, 0, k))
            .collect();
        format!(
            "{peeks:?}|{:?}|{:?}|{:?}",
            dep.reconfig_events(),
            dep.controller().elections(),
            dep.controller().consensus_metrics(),
        )
    };
    assert_eq!(fingerprint(601), fingerprint(601));
}

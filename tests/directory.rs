//! The partitioned-state directory extension (§7/§9): controller-hosted
//! directory service answering switch lookups over the wire, with
//! migration driven by observed access patterns.

#![allow(clippy::field_reassign_with_default)] // configs read clearer as overrides

use swishmem::prelude::*;
use swishmem::{Controller, RegisterSpec};
use swishmem_wire::NodeId as N;

fn deployment() -> Deployment {
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(43)
        .register(RegisterSpec::sro(0, "part", 300))
        .build(|_| {
            Box::new(swishmem::api::ForwardAll {
                dst: NodeId(HOST_BASE),
            })
        });
    // Partition register 0's 300 keys across the three switches.
    let owners: Vec<NodeId> = dep.switch_ids().to_vec();
    dep.partition_register(0, 300, &owners);
    dep
}

#[test]
fn lookup_round_trip_caches_owner_set() {
    let mut dep = deployment();
    dep.settle();
    let t = dep.now();
    // Switch 2 asks who owns key 50 (range 0..100 → switch 0).
    dep.dir_lookup(t, 2, 0, 50);
    dep.run_for(SimDuration::millis(5));
    assert_eq!(dep.dir_owners(2, 0, 50), Some(vec![N(0)]));
    // Different range, different owner.
    dep.dir_lookup(dep.now(), 2, 0, 250);
    dep.run_for(SimDuration::millis(5));
    assert_eq!(dep.dir_owners(2, 0, 250), Some(vec![N(2)]));
    // Unqueried keys are not cached.
    assert_eq!(dep.dir_owners(2, 0, 150), None);
}

#[test]
fn migration_follows_the_hottest_requester() {
    let mut dep = deployment();
    dep.settle();
    // Switch 2 hammers a key owned by switch 0.
    let t0 = dep.now();
    for i in 0..8u64 {
        dep.dir_lookup(t0 + SimDuration::micros(i * 100), 2, 0, 10);
    }
    dep.dir_lookup(t0 + SimDuration::micros(900), 1, 0, 10);
    dep.run_for(SimDuration::millis(5));
    // Controller-side rebalance migrates the range to switch 2.
    {
        let ctrl = dep.sim.node_mut::<Controller>(N::CONTROLLER).unwrap();
        let moves = ctrl.directory_mut().rebalance(0);
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].1, N(2));
        assert!(ctrl.directory().is_owner(0, 10, N(2)));
        assert!(!ctrl.directory().is_owner(0, 10, N(0)));
    }
    // A fresh lookup now returns the new owner.
    dep.dir_lookup(dep.now(), 1, 0, 10);
    dep.run_for(SimDuration::millis(5));
    assert_eq!(dep.dir_owners(1, 0, 10), Some(vec![N(2)]));
}

#[test]
fn replication_grows_the_owner_set() {
    let mut dep = deployment();
    dep.settle();
    {
        let ctrl = dep.sim.node_mut::<Controller>(N::CONTROLLER).unwrap();
        ctrl.directory_mut().replicate(0, 120, N(0)); // range 100..200, owner sw1
    }
    dep.dir_lookup(dep.now(), 0, 0, 120);
    dep.run_for(SimDuration::millis(5));
    let owners = dep.dir_owners(0, 0, 120).unwrap();
    assert_eq!(owners.len(), 2);
    assert!(owners.contains(&N(1)) && owners.contains(&N(0)));
}

//! Repeated failure/recovery cycles: the reconfiguration machinery (§6.3)
//! must keep the fabric correct through multiple generations of chains.

#![allow(clippy::field_reassign_with_default)] // configs read clearer as overrides

use std::net::Ipv4Addr;
use swishmem::oracle::{OracleConfig, OracleSuite};
use swishmem::prelude::*;
use swishmem::{ConfigEventKind, NfApp, NfDecision, RegisterSpec, SharedState};
use swishmem_simnet::FaultSchedule;

struct WriteNf;
impl NfApp for WriteNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        if pkt.flow.proto == 17 {
            st.write(0, u32::from(pkt.flow.dst_port), u64::from(pkt.payload_len));
        }
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

fn wpkt(port: u16, val: u16) -> DataPacket {
    DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            999,
            Ipv4Addr::new(10, 0, 0, 2),
            port,
        ),
        0,
        val,
    )
}

#[test]
fn three_failure_recovery_cycles_preserve_state() {
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(29)
        .register(RegisterSpec::sro(0, "t", 256))
        .build(|_| Box::new(WriteNf));
    dep.settle();

    let mut expected: Vec<(u16, u16)> = Vec::new();
    for cycle in 0..3u16 {
        // Write a batch of fresh keys through a surviving switch.
        let victim = (cycle % 3) as usize;
        let writer = ((cycle + 1) % 3) as usize;
        let t = dep.now();
        for j in 0..10u16 {
            let key = cycle * 10 + j;
            let val = 100 + key;
            dep.inject(
                t + SimDuration::micros(u64::from(j) * 200),
                writer,
                0,
                wpkt(key, val),
            );
            expected.push((key, val));
        }
        dep.run_for(SimDuration::millis(40));
        // Kill one switch, let the controller shrink the chain.
        let tf = dep.now();
        dep.schedule_fail(tf, victim);
        dep.run_for(SimDuration::millis(50));
        // Write more while degraded.
        let t = dep.now();
        for j in 0..5u16 {
            let key = 200 + cycle * 5 + j;
            let val = 50 + key;
            dep.inject(
                t + SimDuration::micros(u64::from(j) * 200),
                writer,
                0,
                wpkt(key, val % 1400),
            );
            expected.push((key, val % 1400));
        }
        dep.run_for(SimDuration::millis(40));
        // Recover and wait for promotion.
        let tr = dep.now();
        dep.schedule_recover(tr, victim);
        dep.run_for(SimDuration::millis(250));
        let promos = dep
            .controller_events()
            .iter()
            .filter(|e| matches!(e.kind, ConfigEventKind::Promoted(_)))
            .count();
        assert!(promos as u16 > cycle, "cycle {cycle}: promotion missing");
    }

    // After three full cycles, every write is present on every switch.
    for sw in 0..3 {
        for &(key, val) in &expected {
            assert_eq!(
                dep.peek(sw, 0, u32::from(key)),
                u64::from(val),
                "switch {sw} lost key {key} after cycles"
            );
        }
    }
    // Chain is back to full strength.
    let view = dep.switch(0).cp_app().view().clone();
    assert_eq!(view.chain.len(), 3, "chain should be whole again: {view:?}");
    assert!(view.learners.is_empty());
}

#[test]
fn writes_survive_head_failure() {
    // Failing the HEAD (sequencer) is the nastiest case: in-flight writes
    // must be re-driven through the new head.
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(31)
        .register(RegisterSpec::sro(0, "t", 64))
        .build(|_| Box::new(WriteNf));
    dep.settle();
    let t0 = dep.now();
    // Steady writes from switch 1 while the head (switch 0) dies.
    dep.schedule_fail(t0 + SimDuration::millis(5), 0);
    for i in 0..40u16 {
        dep.inject(
            t0 + SimDuration::micros(u64::from(i) * 400),
            1,
            0,
            wpkt(i, 200 + i),
        );
    }
    dep.run_for(SimDuration::millis(300));
    // All writes issued at the surviving switch eventually commit on the
    // shortened chain.
    for i in 0..40u16 {
        assert_eq!(
            dep.peek(1, 0, u32::from(i)),
            u64::from(200 + i),
            "key {i} lost"
        );
        assert_eq!(
            dep.peek(2, 0, u32::from(i)),
            u64::from(200 + i),
            "key {i} not replicated"
        );
    }
}

#[test]
fn epoch_numbers_strictly_increase() {
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(37)
        .register(RegisterSpec::sro(0, "t", 64))
        .build(|_| Box::new(WriteNf));
    dep.settle();
    let t0 = dep.now();
    dep.schedule_fail(t0 + SimDuration::millis(5), 2);
    dep.schedule_recover(t0 + SimDuration::millis(60), 2);
    dep.schedule_fail(t0 + SimDuration::millis(200), 1);
    dep.run_for(SimDuration::millis(400));
    let events = dep.controller_events();
    assert!(
        events.len() >= 4,
        "expected several reconfigurations: {events:?}"
    );
    for w in events.windows(2) {
        assert!(
            w[1].epoch > w[0].epoch,
            "epochs must be strictly increasing"
        );
        assert!(w[1].time >= w[0].time);
    }
}

#[test]
fn repeated_tail_crashes_clear_pending_within_bound() {
    // The chain *tail* is the member whose death strands pending bits:
    // writes forwarded to a dead tail are never acknowledged and never
    // cleared until the chain reconfigures and the writer's retry (or
    // the new tail's pending sweep) catches up. Cycle the tail down and
    // up three times via a declarative fault schedule with the online
    // oracles armed — pending bits set while the tail was down must
    // clear within the oracle bound once the chain heals.
    let seed = 47;
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(seed)
        .register(RegisterSpec::sro(0, "t", 64))
        .build(|_| Box::new(WriteNf));
    dep.settle();
    let t0 = dep.now();

    // Initial chain is declaration order, so the tail is switch 2.
    let tail = dep.switch_ids()[2];
    let mut sched = FaultSchedule::new();
    for cycle in 0..3u64 {
        let at = SimDuration::millis(5 + cycle * 55);
        sched = sched.crash_for(tail, at, SimDuration::millis(25));
    }
    let sched_str = sched.to_string();
    dep.schedule_faults(t0, &sched);

    // Steady writes from switch 0 (never crashes) across all cycles;
    // some land while the tail is down and strand pending bits upstream.
    for i in 0..80u64 {
        dep.inject(
            t0 + SimDuration::micros(i * 2000),
            0,
            0,
            wpkt((i % 32) as u16, 100 + i as u16),
        );
    }

    let horizon = SimDuration::millis(165);
    let ocfg = OracleConfig::new(t0 + horizon);
    let mut suite = OracleSuite::attach(&mut dep, ocfg);
    let end = t0 + horizon + ocfg.convergence_grace + SimDuration::millis(100);
    if let Err(v) = suite.run(&mut dep, end) {
        panic!("oracle violation: {v}\nreplay: seed={seed}\n{sched_str}");
    }

    // The tail came back through the learner path every cycle.
    let promos = dep
        .controller_events()
        .iter()
        .filter(|e| e.kind == ConfigEventKind::Promoted(tail))
        .count();
    assert!(
        promos >= 3,
        "expected 3 promotions of the tail, got {promos}"
    );

    // Explicit post-condition on top of the oracle: no chain member
    // still holds a pending bit for a sequence the tail has committed.
    let view = dep.controller_view();
    let ti = dep.switch_index(view.chain[view.chain.len() - 1]).unwrap();
    let committed = dep.chain_seqs(ti, 0);
    for i in 0..3 {
        for (slot, &p) in dep.pending_seqs(i, 0).iter().enumerate() {
            assert!(
                p == 0 || p > committed[slot],
                "switch {i} slot {slot}: pending seq {p} <= committed {}",
                committed[slot]
            );
        }
    }
}

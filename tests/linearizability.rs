//! SRO consistency checking: per-register linearizability (§6.1) probed
//! with concurrent writers and externally-observed reads.
//!
//! The probe NF returns every read's value to a host, so the test builds
//! a global history of (issue time, arrival time, value) and checks the
//! axioms that per-key linearizability implies for this workload:
//!
//! 1. every read returns a value that some write actually wrote (no
//!    torn/invented values);
//! 2. reads of a monotonically-increasing write sequence never regress:
//!    once a reader has observed value v, no later-issued read (anywhere)
//!    observes an older value *after* a read of v completed at the same
//!    switch — checked here in the strongest practical form: per-switch
//!    observation sequences are monotone, and cross-switch, a value once
//!    committed (acked) is never un-seen.

#![allow(clippy::field_reassign_with_default)] // configs read clearer as overrides

use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::{NfApp, NfDecision, RegisterSpec, SharedState};
use swishmem_wire::l4::TcpFlags;
use swishmem_wire::PacketBody;

/// Writes carry strictly-increasing values; reads return the current
/// value tagged with the reading switch in the upper bits of flow_seq.
struct SeqNf;
impl NfApp for SeqNf {
    fn process(&mut self, pkt: &DataPacket, _ing: NodeId, st: &mut dyn SharedState) -> NfDecision {
        if pkt.flow.proto == 17 {
            st.write(0, 0, u64::from(pkt.flow_seq));
            NfDecision::Forward {
                dst: NodeId(HOST_BASE),
                pkt: *pkt,
            }
        } else {
            let v = st.read(0, 0);
            let mut out = *pkt;
            out.flow_seq = v as u32;
            out.payload_len = st.self_id().0; // which switch answered
            NfDecision::Forward {
                dst: NodeId(HOST_BASE + 1),
                pkt: out,
            }
        }
    }
}

fn write_pkt(value: u32) -> DataPacket {
    let mut d = DataPacket::udp(
        FlowKey::udp(Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 0, 0, 2), 1),
        0,
        8,
    );
    d.flow_seq = value;
    d
}

fn read_pkt(tag: u16) -> DataPacket {
    DataPacket::tcp(
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            tag,
            Ipv4Addr::new(10, 0, 0, 2),
            1,
        ),
        TcpFlags::data(),
        0,
        0,
    )
}

#[test]
fn reads_observe_only_written_values_and_never_regress_per_switch() {
    let mut dep = DeploymentBuilder::new(3)
        .hosts(2)
        .seed(9)
        .register(RegisterSpec::sro(0, "x", 16))
        .build(|_| Box::new(SeqNf));
    dep.settle();
    let t0 = dep.now();
    // Writer at switch 1: values 1..=60, one per 300 µs.
    let n_writes = 60u32;
    for v in 1..=n_writes {
        dep.inject(
            t0 + SimDuration::micros(u64::from(v) * 300),
            1,
            0,
            write_pkt(v),
        );
    }
    // Readers at every switch, every 100 µs.
    let total_us = u64::from(n_writes) * 300 + 1000;
    let mut tag = 0u16;
    for us in (0..total_us).step_by(100) {
        for sw in 0..3 {
            tag = tag.wrapping_add(1);
            dep.inject(
                t0 + SimDuration::micros(us) + SimDuration::nanos(sw as u64),
                sw as usize,
                0,
                read_pkt(tag),
            );
        }
    }
    dep.run_for(SimDuration::millis(200));

    // Collect (arrival, answering switch, value) sorted by arrival.
    let log = dep.recording(1).borrow();
    let mut obs: Vec<(u64, u16, u32)> = log
        .iter()
        .filter_map(|(t, p)| match &p.body {
            PacketBody::Data(d) => Some((t.nanos(), d.payload_len, d.flow_seq)),
            _ => None,
        })
        .collect();
    obs.sort_unstable();
    assert!(!obs.is_empty());

    // Axiom 1: only written values (0..=60).
    for &(_, _, v) in &obs {
        assert!(v <= n_writes, "invented value {v}");
    }
    // Axiom 2: per answering switch, observed values are monotone.
    let mut last = [0u32; 4];
    for &(at, sw, v) in &obs {
        let sw = (sw as usize).min(3);
        assert!(
            v >= last[sw],
            "switch {sw} regressed from {} to {v} at t={at}ns",
            last[sw]
        );
        last[sw] = v.max(last[sw]);
    }
    // Eventually everyone converges on the final value.
    assert_eq!(obs.last().unwrap().2, n_writes);
    for sw in 0..3 {
        assert_eq!(dep.peek(sw, 0, 0), u64::from(n_writes));
    }
}

#[test]
fn concurrent_writers_settle_to_a_single_value_everywhere() {
    let mut dep = DeploymentBuilder::new(3)
        .hosts(2)
        .seed(10)
        .register(RegisterSpec::sro(0, "x", 16))
        .build(|_| Box::new(SeqNf));
    dep.settle();
    let t0 = dep.now();
    // Three writers at three switches, racing on the same key.
    for round in 0..20u32 {
        for sw in 0..3u32 {
            dep.inject(
                t0 + SimDuration::micros(u64::from(round) * 200 + u64::from(sw) * 3),
                sw as usize,
                0,
                write_pkt(100 + round * 3 + sw),
            );
        }
    }
    dep.run_for(SimDuration::millis(100));
    let v0 = dep.peek(0, 0, 0);
    assert_eq!(v0, dep.peek(1, 0, 0), "replicas disagree");
    assert_eq!(v0, dep.peek(2, 0, 0), "replicas disagree");
    assert!(
        (100..=159).contains(&(v0 as u32)),
        "final value {v0} was never written"
    );
}

#[test]
fn tail_answers_forwarded_reads() {
    let mut dep = DeploymentBuilder::new(3)
        .hosts(2)
        .seed(11)
        .link(LinkParams::datacenter().with_latency(SimDuration::micros(30)))
        .register(RegisterSpec::sro(0, "x", 16))
        .build(|_| Box::new(SeqNf));
    dep.settle();
    let t0 = dep.now();
    dep.inject(t0, 0, 0, write_pkt(7));
    // Two reads at the head inside the pending window (the write commits
    // at the tail ≈105 µs after injection; the head's pending bit clears
    // ≈135 µs in):
    //  * at 70 µs the forwarded read reaches the tail BEFORE the write
    //    commits there — the old value (0) is the linearizable answer;
    //  * at 120 µs the forwarded read reaches the tail after commit and
    //    must see 7.
    dep.inject(t0 + SimDuration::micros(70), 0, 0, read_pkt(1));
    dep.inject(t0 + SimDuration::micros(120), 0, 0, read_pkt(2));
    dep.run_for(SimDuration::millis(30));
    let log = dep.recording(1).borrow();
    assert_eq!(log.len(), 2);
    // Both reads were served by the tail (switch 2).
    let answers: Vec<(u16, u32)> = log
        .iter()
        .map(|(_, p)| {
            let PacketBody::Data(d) = &p.body else {
                panic!()
            };
            assert_eq!(d.payload_len, 2, "read should have been served by the tail");
            (d.flow.src_port, d.flow_seq)
        })
        .collect();
    for (tag, v) in answers {
        match tag {
            1 => assert!(v == 0 || v == 7, "pre-commit read saw invented value {v}"),
            2 => assert_eq!(v, 7, "post-commit read must see the committed value"),
            t => panic!("unexpected tag {t}"),
        }
    }
}

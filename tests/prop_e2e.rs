//! Property-based end-to-end tests: randomized small workloads through
//! full deployments, checked against simple oracles.

#![allow(clippy::field_reassign_with_default)] // configs read clearer as overrides

use proptest::prelude::*;
use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::{NfApp, NfDecision, RegisterSpec, SharedState};

struct CountNf;
impl NfApp for CountNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.add(0, u32::from(pkt.flow.dst_port), 1);
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

struct WriteNf;
impl NfApp for WriteNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.write(0, u32::from(pkt.flow.dst_port), u64::from(pkt.payload_len));
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

fn pkt(port: u16, len: u16) -> DataPacket {
    DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            999,
            Ipv4Addr::new(10, 0, 0, 2),
            port,
        ),
        0,
        len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// EWO counters converge to the exact oracle count per key, for any
    /// interleaving of increments across switches and any loss rate up to
    /// 20%.
    #[test]
    fn ewo_counts_match_oracle(
        seed in 0u64..1000,
        n_switches in 2usize..5,
        ops in prop::collection::vec((0u16..8, 0u64..3000), 1..60),
        loss in prop::sample::select(vec![0.0, 0.1, 0.2]),
    ) {
        let mut dep = DeploymentBuilder::new(n_switches)
            .hosts(1)
            .seed(seed)
            .link(LinkParams::lossy(loss).with_latency(SimDuration::micros(2)))
            .register(RegisterSpec::ewo_counter(0, "c", 8))
            .build(|_| Box::new(CountNf));
        dep.settle();
        let t0 = dep.now();
        let mut oracle = [0u64; 8];
        for (i, &(key, jitter)) in ops.iter().enumerate() {
            let sw = i % n_switches;
            dep.inject(t0 + SimDuration::micros(i as u64 * 40 + jitter / 100), sw, 0, pkt(key, 10));
            oracle[key as usize] += 1;
        }
        dep.run_for(SimDuration::millis(400));
        for sw in 0..n_switches {
            for key in 0..8u16 {
                prop_assert_eq!(
                    dep.peek(sw, 0, u32::from(key)),
                    oracle[key as usize],
                    "switch {} key {} (loss {})", sw, key, loss
                );
            }
        }
    }

    /// SRO registers settle to the last-sequenced write per key and agree
    /// across all replicas (no loss here; loss + retries covered in
    /// chaos.rs — this property pins down agreement + validity).
    #[test]
    fn sro_replicas_agree_on_written_values(
        seed in 0u64..1000,
        ops in prop::collection::vec((0u16..6, 1u16..1400), 1..30),
    ) {
        let mut dep = DeploymentBuilder::new(3)
            .hosts(1)
            .seed(seed)
            .register(RegisterSpec::sro(0, "t", 8))
            .build(|_| Box::new(WriteNf));
        dep.settle();
        let t0 = dep.now();
        let mut written: std::collections::HashMap<u16, Vec<u64>> = Default::default();
        for (i, &(key, val)) in ops.iter().enumerate() {
            // Writes spaced >= 1 ms per key: totally ordered, so the
            // oracle is simply the last write.
            dep.inject(t0 + SimDuration::millis(i as u64), i % 3, 0, pkt(key, val));
            written.entry(key).or_default().push(u64::from(val));
        }
        dep.run_for(SimDuration::millis(ops.len() as u64 + 100));
        for (key, vals) in &written {
            let expect = *vals.last().unwrap();
            for sw in 0..3 {
                prop_assert_eq!(dep.peek(sw, 0, u32::from(*key)), expect,
                    "switch {} key {}", sw, key);
            }
        }
    }

    /// Whatever the seed and fault schedule, a deployment never panics
    /// and stays internally consistent (smoke-fuzz of the event engine).
    #[test]
    fn deployment_survives_random_fault_schedules(
        seed in 0u64..10_000,
        fail_at in 1u64..30,
        recover_after in 1u64..50,
        victim in 0usize..3,
    ) {
        let mut dep = DeploymentBuilder::new(3)
            .hosts(1)
            .seed(seed)
            .register(RegisterSpec::ewo_counter(0, "c", 8))
            .register(RegisterSpec::sro(1, "t", 8))
            .build(|_| Box::new(CountNf));
        dep.settle();
        let t0 = dep.now();
        dep.schedule_fail(t0 + SimDuration::millis(fail_at), victim);
        dep.schedule_recover(t0 + SimDuration::millis(fail_at + recover_after), victim);
        for i in 0..50u64 {
            dep.inject(t0 + SimDuration::micros(i * 777), (i % 3) as usize, 0, pkt(1, 10));
        }
        dep.run_for(SimDuration::millis(200));
        // Survivors converge on one value for key 1.
        let mut views = vec![];
        for sw in 0..3 {
            if sw != victim || recover_after < 150 {
                views.push(dep.peek(sw, 0, 1));
            }
        }
        prop_assert!(!views.is_empty());
    }
}

//! Cross-crate integration: several NFs composed on one deployment, full
//! traffic through the fabric — the "one big switch" promise end to end.

#![allow(clippy::field_reassign_with_default)] // configs read clearer as overrides

use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::{NfApp, NfDecision, RegisterSpec, SharedState};
use swishmem_nf::workload::{EcmpRouter, FlowGen, FlowGenConfig, RoutingMode};
use swishmem_wire::PacketBody;

/// A composed NF: firewall-style connection gate (SRO) + per-destination
/// packet counting (EWO) in one pipeline, as a real deployment would
/// stack features.
struct GateAndCount;

const CONN: u16 = 0;
const COUNT: u16 = 1;

impl NfApp for GateAndCount {
    fn process(&mut self, pkt: &DataPacket, _ing: NodeId, st: &mut dyn SharedState) -> NfDecision {
        let key = (pkt.flow.canonical_hash64() % 4096) as u32;
        let inside = pkt.flow.src.octets()[0] == 10;
        st.add(
            COUNT,
            u32::from(u16::from_be_bytes([
                pkt.flow.dst.octets()[2],
                pkt.flow.dst.octets()[3],
            ])) % 512,
            1,
        );
        if inside {
            if st.read(CONN, key) == 0 {
                st.write(CONN, key, 1);
            }
            NfDecision::Forward {
                dst: NodeId(HOST_BASE),
                pkt: *pkt,
            }
        } else if st.read(CONN, key) != 0 {
            NfDecision::Forward {
                dst: NodeId(HOST_BASE + 1),
                pkt: *pkt,
            }
        } else {
            NfDecision::Drop
        }
    }
}

fn deployment(n: usize) -> Deployment {
    DeploymentBuilder::new(n)
        .hosts(2)
        .seed(3)
        .register(RegisterSpec::sro(CONN, "conn", 4096))
        .register(RegisterSpec::ewo_counter(COUNT, "count", 512))
        .build(|_| Box::new(GateAndCount))
}

#[test]
fn realistic_workload_counts_and_gates_coherently() {
    let mut dep = deployment(4);
    dep.settle();
    let router = EcmpRouter::new(4, RoutingMode::EcmpStable);
    let sched = FlowGen::new(
        FlowGenConfig {
            flow_rate: 8_000.0,
            mean_packets: 4.0,
            duration: SimDuration::millis(40),
            tcp: true,
            ..FlowGenConfig::default()
        },
        4,
    )
    .generate(&router);
    let t0 = dep.now();
    for p in &sched {
        dep.inject(t0 + SimDuration::nanos(p.time.nanos()), p.ingress, 0, p.pkt);
    }
    dep.run_for(SimDuration::millis(150));
    // Every packet was outbound (src 10.x) so all must be forwarded.
    let delivered = dep.recording(0).borrow().len();
    assert_eq!(
        delivered,
        sched.len(),
        "outbound traffic must all pass the gate"
    );
    // The EWO counters across all switches converge to the packet count.
    let total: u64 = (0..512).map(|k| dep.peek(0, COUNT, k)).sum();
    assert_eq!(total, sched.len() as u64);
    for i in 1..4 {
        let other: u64 = (0..512).map(|k| dep.peek(i, COUNT, k)).sum();
        assert_eq!(other, total, "switch {i} counter view diverged");
    }
}

#[test]
fn return_path_admitted_via_any_switch() {
    let mut dep = deployment(3);
    dep.settle();
    let out = DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            1234,
            Ipv4Addr::new(8, 8, 8, 8),
            53,
        ),
        0,
        64,
    );
    let t = dep.now();
    dep.inject(t, 0, 0, out);
    dep.run_for(SimDuration::millis(30));
    // Replies through every switch are admitted.
    let reply = DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(8, 8, 8, 8),
            53,
            Ipv4Addr::new(10, 0, 0, 1),
            1234,
        ),
        0,
        64,
    );
    let t = dep.now();
    for sw in 0..3 {
        dep.inject(t + SimDuration::micros(sw as u64 * 100), sw, 0, reply);
    }
    dep.run_for(SimDuration::millis(20));
    assert_eq!(dep.recording(1).borrow().len(), 3);
}

#[test]
fn unsolicited_traffic_dropped_everywhere() {
    let mut dep = deployment(3);
    dep.settle();
    let stray = DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(66, 6, 6, 6),
            1,
            Ipv4Addr::new(10, 0, 0, 1),
            22,
        ),
        0,
        64,
    );
    let t = dep.now();
    for sw in 0..3 {
        dep.inject(t + SimDuration::micros(sw as u64 * 50), sw, 0, stray);
    }
    dep.run_for(SimDuration::millis(20));
    assert!(dep.recording(1).borrow().is_empty());
    // ... but it was still counted by the EWO side (counting ≠ gating).
    let total: u64 = (0..512).map(|k| dep.peek(0, COUNT, k)).sum();
    assert_eq!(total, 3);
}

#[test]
fn traffic_classes_all_present_in_stats() {
    use swishmem_simnet::TrafficClass;
    let mut dep = deployment(3);
    dep.settle();
    let t = dep.now();
    let out = DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 9),
            999,
            Ipv4Addr::new(9, 9, 9, 9),
            53,
        ),
        0,
        64,
    );
    dep.inject(t, 0, 0, out);
    dep.run_for(SimDuration::millis(30));
    let st = dep.sim.stats();
    assert!(st.delivered(TrafficClass::Data).packets >= 1);
    assert!(
        st.delivered(TrafficClass::SroWrite).packets >= 1,
        "chain writes flowed"
    );
    assert!(
        st.delivered(TrafficClass::SroControl).packets >= 1,
        "acks/clears flowed"
    );
    assert!(
        st.delivered(TrafficClass::EwoSync).packets >= 1,
        "sync updates flowed"
    );
    assert!(
        st.delivered(TrafficClass::Management).packets >= 1,
        "heartbeats flowed"
    );
}

#[test]
fn host_recordings_carry_wire_exact_packets() {
    let mut dep = deployment(2);
    dep.settle();
    // TCP: the sequence number rides the wire, so the frame round-trips
    // byte-exactly (UDP frames have no seq field to preserve).
    let out = DataPacket::tcp(
        FlowKey::tcp(
            Ipv4Addr::new(10, 1, 2, 3),
            1111,
            Ipv4Addr::new(7, 7, 7, 7),
            80,
        ),
        swishmem_wire::l4::TcpFlags::data(),
        5,
        321,
    );
    let t = dep.now();
    dep.inject(t, 1, 0, out);
    dep.run_for(SimDuration::millis(20));
    let log = dep.recording(0).borrow();
    assert_eq!(log.len(), 1);
    let PacketBody::Data(d) = &log[0].1.body else {
        panic!("expected data")
    };
    assert_eq!(d, &out);
    // And the frame's serialized form round-trips.
    let bytes = log[0].1.to_bytes();
    assert_eq!(swishmem_wire::Packet::from_bytes(&bytes).unwrap(), log[0].1);
}

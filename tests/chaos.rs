//! Fault-injection sweeps: the protocols' correctness properties must
//! hold under loss, jitter-induced reordering, and corruption — the §5
//! failure model taken seriously.

#![allow(clippy::field_reassign_with_default)] // configs read clearer as overrides

use std::net::Ipv4Addr;
use swishmem::prelude::*;
use swishmem::{NfApp, NfDecision, RegisterSpec, SharedState, SwishConfig};

struct CountNf;
impl NfApp for CountNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.add(0, u32::from(pkt.flow.dst_port), 1);
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

struct WriteNf;
impl NfApp for WriteNf {
    fn process(&mut self, pkt: &DataPacket, _i: NodeId, st: &mut dyn SharedState) -> NfDecision {
        st.write(0, u32::from(pkt.flow.dst_port), u64::from(pkt.payload_len));
        NfDecision::Forward {
            dst: NodeId(HOST_BASE),
            pkt: *pkt,
        }
    }
}

fn count_pkt(port: u16) -> DataPacket {
    DataPacket::udp(
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 3),
            1000,
            Ipv4Addr::new(10, 0, 0, 4),
            port,
        ),
        0,
        64,
    )
}

#[test]
fn ewo_converges_under_loss_jitter_and_corruption() {
    for (loss, jitter_us, corrupt) in [
        (0.1, 0u64, 0.0),
        (0.3, 10, 0.0),
        (0.1, 5, 0.05),
        (0.2, 20, 0.1),
    ] {
        let link = LinkParams::lossy(loss)
            .with_jitter(SimDuration::micros(jitter_us))
            .with_latency(SimDuration::micros(2));
        let link = LinkParams {
            corrupt_prob: corrupt,
            ..link
        };
        let mut dep = DeploymentBuilder::new(4)
            .hosts(1)
            .seed(17)
            .link(link)
            .register(RegisterSpec::ewo_counter(0, "c", 64))
            .build(|_| Box::new(CountNf));
        dep.settle();
        let t0 = dep.now();
        let n = 40u64;
        for i in 0..n {
            dep.inject(
                t0 + SimDuration::micros(i * 30),
                (i % 4) as usize,
                0,
                count_pkt(7),
            );
        }
        // Generous convergence budget: many sync periods.
        dep.run_for(SimDuration::millis(500));
        for sw in 0..4 {
            assert_eq!(
                dep.peek(sw, 0, 7),
                n,
                "switch {sw} diverged under loss={loss} jitter={jitter_us}us corrupt={corrupt}"
            );
        }
    }
}

#[test]
fn sro_writes_complete_under_loss_via_retries() {
    let mut cfg = SwishConfig::default();
    cfg.retry_timeout = SimDuration::micros(500);
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(19)
        .link(LinkParams::lossy(0.15).with_latency(SimDuration::micros(2)))
        .swish_config(cfg)
        .register(RegisterSpec::sro(0, "t", 256))
        .build(|_| Box::new(WriteNf));
    dep.settle();
    let t0 = dep.now();
    let n = 50u16;
    for k in 0..n {
        let mut p = count_pkt(k);
        p.payload_len = 100 + k;
        dep.inject(t0 + SimDuration::micros(u64::from(k) * 200), 0, 0, p);
    }
    dep.run_for(SimDuration::millis(500));
    let mut completed = 0;
    for k in 0..n {
        // Under loss some chain hops retried; the final value must still
        // be the written one on every replica that has it.
        let v0 = dep.peek(0, 0, u32::from(k));
        let v2 = dep.peek(2, 0, u32::from(k));
        if v0 == u64::from(100 + k) && v2 == v0 {
            completed += 1;
        }
    }
    // With retries, the overwhelming majority must complete (writers cap
    // at max_retries; 15% loss per hop is survivable).
    assert!(
        completed >= n - 2,
        "only {completed}/{n} writes completed under loss"
    );
    let retries: u64 = (0..3).map(|i| dep.metrics(i).cp.retries).sum();
    assert!(retries > 0, "loss should have forced retries");
}

#[test]
fn corrupted_frames_are_dropped_not_processed() {
    let link = LinkParams {
        corrupt_prob: 0.5,
        ..LinkParams::datacenter()
    };
    let mut dep = DeploymentBuilder::new(2)
        .hosts(1)
        .seed(23)
        .link(link)
        .register(RegisterSpec::ewo_counter(0, "c", 16))
        .build(|_| Box::new(CountNf));
    dep.settle();
    let t0 = dep.now();
    for i in 0..30u64 {
        dep.inject(t0 + SimDuration::micros(i * 50), 0, 0, count_pkt(1));
    }
    dep.run_for(SimDuration::millis(300));
    // Injections bypass links, so switch 0 counted all 30; switch 1's
    // view converges to exactly 30 despite half its sync frames being
    // corrupted (corrupt frames dropped, periodic sync repairs).
    assert_eq!(dep.peek(0, 0, 1), 30);
    assert_eq!(dep.peek(1, 0, 1), 30);
    // Corruption is accounted under its own drop reason, not conflated
    // with random loss (the link here has corrupt_prob but zero loss).
    let stats = dep.sim.stats();
    assert!(
        stats.dropped(swishmem_simnet::DropReason::Corrupt).packets > 0,
        "seed 23: no corrupt drops despite corrupt_prob=0.5"
    );
    assert_eq!(
        stats.dropped(swishmem_simnet::DropReason::Loss).packets,
        0,
        "seed 23: loss counter moved on a loss-free link"
    );
}

#[test]
fn lost_clears_repaired_by_tail_pending_sweep() {
    // Permanently lossy links drop some of the tail's Clear multicasts.
    // Without repair, the pending bits those clears addressed would stay
    // set forever and SRO reads would detour to the tail indefinitely.
    // The tail's periodic pending sweep re-multicasts Clear for committed
    // slots until every replica has caught up.
    let seed = 53;
    let mut dep = DeploymentBuilder::new(3)
        .hosts(1)
        .seed(seed)
        .link(LinkParams::lossy(0.25).with_latency(SimDuration::micros(2)))
        .register(RegisterSpec::sro(0, "t", 32))
        .build(|_| Box::new(WriteNf));
    dep.settle();
    let t0 = dep.now();
    for k in 0..32u16 {
        let mut p = count_pkt(k);
        p.payload_len = 300 + k;
        dep.inject(t0 + SimDuration::micros(u64::from(k) * 300), 0, 0, p);
    }
    dep.run_for(SimDuration::millis(400));

    // Writers retried everything to completion despite the loss.
    for k in 0..32u32 {
        assert_eq!(
            dep.peek(2, 0, k),
            u64::from(300 + k as u16),
            "seed {seed}: key {k} never committed at the tail"
        );
    }
    // No chain member still holds a pending bit for a committed seq.
    let committed = dep.chain_seqs(2, 0);
    for i in 0..3 {
        for (slot, &p) in dep.pending_seqs(i, 0).iter().enumerate() {
            assert!(
                p == 0 || p > committed[slot],
                "seed {seed}: switch {i} slot {slot} pending {p} <= committed {}",
                committed[slot]
            );
        }
    }
    // And the sweep actually ran (it is the repair mechanism under test).
    let sweeps = dep.sum_metric(|m| m.dp.pending_sweep_clears);
    assert!(sweeps > 0, "seed {seed}: pending sweep never fired");
}

#[test]
fn determinism_holds_under_full_chaos() {
    fn run(seed: u64) -> (u64, u64, u64) {
        let link = LinkParams::lossy(0.2)
            .with_jitter(SimDuration::micros(15))
            .with_latency(SimDuration::micros(3));
        let mut dep = DeploymentBuilder::new(3)
            .hosts(1)
            .seed(seed)
            .link(link)
            .register(RegisterSpec::ewo_counter(0, "c", 16))
            .register(RegisterSpec::sro(1, "t", 16))
            .build(|_| Box::new(CountNf));
        dep.settle();
        let t0 = dep.now();
        dep.schedule_fail(t0 + SimDuration::millis(10), 1);
        dep.schedule_recover(t0 + SimDuration::millis(40), 1);
        for i in 0..100u64 {
            dep.inject(
                t0 + SimDuration::micros(i * 111),
                (i % 3) as usize,
                0,
                count_pkt(2),
            );
        }
        dep.run_for(SimDuration::millis(200));
        (
            dep.peek(0, 0, 2),
            dep.sim.stats().delivered_total().bytes,
            dep.sim.events_processed(),
        )
    }
    assert_eq!(run(77), run(77), "identical seeds must replay identically");
    assert_ne!(run(77).1, run(78).1, "different seeds should differ");
}

//! Workspace root crate: hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`) of the SwiShmem reproduction.
//! The library surface itself just re-exports the member crates for
//! convenience.

pub use swishmem;
pub use swishmem_nf as nf;
pub use swishmem_pisa as pisa;
pub use swishmem_simnet as simnet;
pub use swishmem_wire as wire;
